//! SSA construction: promotion of memory slots (`alloca`s) to SSA values
//! with φ-insertion — the classic `mem2reg` algorithm (iterated dominance
//! frontiers + dominator-tree renaming).
//!
//! The lifter uses this to turn its write-through register slots into the
//! SSA form mctoll produces; the optimizer re-exports it as the `mem2reg`
//! pass of Figure 17.

use crate::analysis::{Cfg, Dominators};
use crate::func::Function;
use crate::inst::{BlockId, InstId, InstKind, Operand, Ordering};
use crate::types::Ty;
use std::collections::{BTreeMap, BTreeSet};

/// Determines whether `id` (an `alloca`) can be promoted: every use must be
/// the direct pointer operand of a non-atomic load or store (which must not
/// store the pointer itself as a value), and all loads must agree on one
/// loaded type.
fn promotable(f: &Function, id: InstId) -> Option<Ty> {
    let mut loaded_ty: Option<Ty> = None;
    let this = Operand::Inst(id);
    for (_, iid) in f.iter_insts() {
        let inst = f.inst(iid);
        let mut uses_here = 0;
        inst.kind.for_each_operand(|op| {
            if *op == this {
                uses_here += 1;
            }
        });
        if uses_here == 0 {
            continue;
        }
        match &inst.kind {
            InstKind::Load {
                ptr,
                order: Ordering::NotAtomic,
            } if *ptr == this => match loaded_ty {
                None => loaded_ty = Some(inst.ty),
                Some(t) if t == inst.ty => {}
                _ => return None,
            },
            InstKind::Store {
                ptr,
                val,
                order: Ordering::NotAtomic,
            } if *ptr == this && *val != this => {
                // Stored type must agree with loads (if any seen yet this is
                // validated in a second pass below).
            }
            _ => return None,
        }
    }
    // Store-only slots (dead values) are promotable too: derive the type
    // from the first stored value.
    if loaded_ty.is_none() {
        for (_, iid) in f.iter_insts() {
            if let InstKind::Store { ptr, val, .. } = &f.inst(iid).kind {
                if *ptr == this {
                    loaded_ty = Some(local_operand_ty(f, val));
                    break;
                }
            }
        }
    }
    loaded_ty
}

/// Operand type resolvable without a module (globals/functions are `i8*`).
fn local_operand_ty(f: &Function, op: &Operand) -> Ty {
    match op {
        Operand::Inst(id) => f.inst(*id).ty,
        Operand::Param(i) => f.params[*i as usize],
        Operand::ConstInt { ty, .. } => *ty,
        Operand::ConstF32(_) => Ty::F32,
        Operand::ConstF64(_) => Ty::F64,
        Operand::Global(_) | Operand::Func(_) => Ty::Ptr(crate::types::Pointee::I8),
        Operand::Undef(ty) => *ty,
    }
}

/// Promotes eligible `alloca`s in `f` to SSA, inserting φ-nodes.
///
/// `eligible` filters which allocas to consider (use `|_| true` for all).
/// Returns the number of promoted slots.
pub fn promote_allocas(
    f: &mut Function,
    mut eligible: impl FnMut(&Function, InstId) -> bool,
) -> usize {
    let cfg = Cfg::compute(f);
    let doms = Dominators::compute(&cfg);
    let df = doms.frontiers(&cfg);

    // Collect candidates.
    let mut slots: Vec<(InstId, Ty)> = Vec::new();
    for (_, id) in f.iter_insts() {
        if matches!(f.inst(id).kind, InstKind::Alloca { .. }) && eligible(f, id) {
            if let Some(ty) = promotable(f, id) {
                slots.push((id, ty));
            }
        }
    }
    if slots.is_empty() {
        return 0;
    }
    let slot_index: BTreeMap<InstId, usize> = slots
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (*id, i))
        .collect();

    // Phase 1: place φs at iterated dominance frontiers of def (store) blocks.
    // phi_of[(block, slot)] = phi inst id.
    let mut phi_of: BTreeMap<(BlockId, usize), InstId> = BTreeMap::new();
    for (si, (slot, ty)) in slots.iter().enumerate() {
        let mut work: Vec<BlockId> = Vec::new();
        for b in f.block_ids() {
            let defines = f.block(b).insts.iter().any(|iid| {
                matches!(&f.inst(*iid).kind, InstKind::Store { ptr, .. } if *ptr == Operand::Inst(*slot))
            });
            if defines {
                work.push(b);
            }
        }
        let mut placed: BTreeSet<BlockId> = BTreeSet::new();
        while let Some(b) = work.pop() {
            if !cfg.reachable(b) {
                continue;
            }
            for &fb in &df[b.0 as usize] {
                if placed.insert(fb) {
                    let phi = f.insert(fb, 0, *ty, InstKind::Phi { incoming: vec![] });
                    phi_of.insert((fb, si), phi);
                    work.push(fb);
                }
            }
        }
    }

    // Phase 2: rename along the dominator tree.
    let nslots = slots.len();
    let mut dom_children: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for b in f.block_ids() {
        if let Some(d) = doms.idom[b.0 as usize] {
            dom_children[d.0 as usize].push(b);
        }
    }

    // Each stack frame: (block, incoming values per slot).
    let undef_vals: Vec<Operand> = slots.iter().map(|(_, ty)| Operand::Undef(*ty)).collect();
    let mut to_delete: BTreeSet<InstId> = BTreeSet::new();
    let mut stack: Vec<(BlockId, Vec<Operand>)> = vec![(BlockId(0), undef_vals)];

    // For filling phi incoming lists we need, per edge (pred→succ), the
    // value at pred exit. Record during the walk.
    let mut exit_vals: BTreeMap<BlockId, Vec<Operand>> = BTreeMap::new();

    while let Some((b, mut vals)) = stack.pop() {
        // φs at block start define new values.
        for si in 0..nslots {
            if let Some(phi) = phi_of.get(&(b, si)) {
                vals[si] = Operand::Inst(*phi);
            }
        }
        let inst_ids: Vec<InstId> = f.block(b).insts.clone();
        for iid in inst_ids {
            let kind = f.inst(iid).kind.clone();
            match kind {
                InstKind::Load {
                    ptr: Operand::Inst(p),
                    ..
                } if slot_index.contains_key(&p) => {
                    let si = slot_index[&p];
                    f.replace_all_uses(iid, vals[si]);
                    to_delete.insert(iid);
                }
                InstKind::Store {
                    ptr: Operand::Inst(p),
                    val,
                    ..
                } if slot_index.contains_key(&p) => {
                    let si = slot_index[&p];
                    vals[si] = val;
                    to_delete.insert(iid);
                }
                _ => {}
            }
        }
        exit_vals.insert(b, vals.clone());
        for &c in &dom_children[b.0 as usize] {
            stack.push((c, vals.clone()));
        }
    }

    // Phase 3: fill φ incoming lists from predecessor exit values.
    for ((b, si), phi) in &phi_of {
        let mut incoming = Vec::new();
        for &p in &cfg.preds[b.0 as usize] {
            if !cfg.reachable(p) {
                continue;
            }
            let v = exit_vals
                .get(&p)
                .map_or(Operand::Undef(slots[*si].1), |vs| vs[*si]);
            // A self-referencing phi through a loop: if the pred's exit val
            // is this very phi that's fine and correct.
            incoming.push((p, v));
        }
        if let InstKind::Phi { incoming: inc } = &mut f.inst_mut(*phi).kind {
            *inc = incoming;
        }
    }

    // Phase 4: delete promoted loads/stores and the allocas themselves.
    for (slot, _) in &slots {
        to_delete.insert(*slot);
    }
    for b in f.block_ids() {
        let keep: Vec<InstId> = f
            .block(b)
            .insts
            .iter()
            .copied()
            .filter(|i| !to_delete.contains(i))
            .collect();
        f.block_mut(b).insts = keep;
    }

    // Prune trivial φs (single unique incoming value, or only self + one).
    prune_trivial_phis(f);

    slots.len()
}

/// Removes φs whose incoming values are all identical (ignoring
/// self-references), replacing them with that value. Iterates to a fixpoint.
pub fn prune_trivial_phis(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut did = false;
        for b in f.block_ids() {
            let ids: Vec<InstId> = f.block(b).insts.clone();
            for id in ids {
                let InstKind::Phi { incoming } = &f.inst(id).kind else {
                    continue;
                };
                let mut unique: Option<Operand> = None;
                let mut trivial = true;
                for (_, v) in incoming {
                    if *v == Operand::Inst(id) {
                        continue; // self-reference through loop
                    }
                    match unique {
                        None => unique = Some(*v),
                        Some(u) if u == *v => {}
                        _ => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    let rep = unique.unwrap_or(Operand::Undef(f.inst(id).ty));
                    f.replace_all_uses(id, rep);
                    let blk = f.block_mut(b);
                    blk.insts.retain(|i| *i != id);
                    removed += 1;
                    did = true;
                }
            }
        }
        if !did {
            break;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Module;
    use crate::inst::{BinOp, IPred, Terminator};
    use crate::types::Pointee;
    use crate::verify::verify_module;

    /// Builds: slot = alloca; store 0; loop { v = load; store v+1 } while
    /// v+1 < n; return load slot.
    fn loop_through_slot() -> Function {
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let entry = f.entry();
        let body = f.add_block();
        let exit = f.add_block();
        let slot = f.push(entry, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        f.push(
            entry,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(0),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(entry, Terminator::Br { dest: body });
        let v = f.push(
            body,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::NotAtomic,
            },
        );
        let v1 = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(v),
                rhs: Operand::i64(1),
            },
        );
        f.push(
            body,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::Inst(v1),
                order: Ordering::NotAtomic,
            },
        );
        let c = f.push(
            body,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: Operand::Inst(v1),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            body,
            Terminator::CondBr {
                cond: Operand::Inst(c),
                if_true: body,
                if_false: exit,
            },
        );
        let fin = f.push(
            exit,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            exit,
            Terminator::Ret {
                val: Some(Operand::Inst(fin)),
            },
        );
        f
    }

    #[test]
    fn promotes_loop_slot_and_preserves_semantics() {
        let mut f = loop_through_slot();
        let promoted = promote_allocas(&mut f, |_, _| true);
        assert_eq!(promoted, 1);
        // No loads/stores/allocas remain.
        for (_, id) in f.iter_insts() {
            assert!(
                !matches!(
                    f.inst(id).kind,
                    InstKind::Alloca { .. } | InstKind::Load { .. } | InstKind::Store { .. }
                ),
                "leftover memory op: {:?}",
                f.inst(id).kind
            );
        }
        let mut m = Module::new();
        let id = m.add_func(f);
        verify_module(&m).unwrap();
        let mut machine = crate::interp::Machine::new(&m);
        let r = machine.run(id, &[crate::interp::Val::B64(10)]).unwrap();
        assert_eq!(r.ret, Some(crate::interp::Val::B64(10)));
    }

    #[test]
    fn escaping_alloca_not_promoted() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        // Address escapes through ptrtoint.
        let escaped = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: crate::inst::CastOp::PtrToInt,
                val: Operand::Inst(slot),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(escaped)),
            },
        );
        let mut g = f.clone();
        assert_eq!(promote_allocas(&mut g, |_, _| true), 0);
        assert_eq!(g, f, "function must be unchanged");
    }

    #[test]
    fn atomic_slot_not_promoted() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::SeqCst,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(promote_allocas(&mut f, |_, _| true), 0);
    }

    #[test]
    fn diamond_gets_phi() {
        // slot := alloca; if p { store 1 } else { store 2 }; ret load
        let mut f = Function::new("f", vec![Ty::I1], Ty::I64);
        let e = f.entry();
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: t,
                if_false: el,
            },
        );
        f.push(
            t,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(t, Terminator::Br { dest: j });
        f.push(
            el,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(2),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(el, Terminator::Br { dest: j });
        let l = f.push(
            j,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            j,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );

        assert_eq!(promote_allocas(&mut f, |_, _| true), 1);
        let has_phi = f
            .iter_insts()
            .any(|(_, id)| matches!(f.inst(id).kind, InstKind::Phi { .. }));
        assert!(has_phi, "join block needs a phi");

        let mut m = Module::new();
        let id = m.add_func(f);
        verify_module(&m).unwrap();
        let mut machine = crate::interp::Machine::new(&m);
        assert_eq!(
            machine.run(id, &[crate::interp::Val::B64(1)]).unwrap().ret,
            Some(crate::interp::Val::B64(1))
        );
        let mut machine = crate::interp::Machine::new(&m);
        assert_eq!(
            machine.run(id, &[crate::interp::Val::B64(0)]).unwrap().ret,
            Some(crate::interp::Val::B64(2))
        );
    }

    #[test]
    fn trivial_phi_pruned() {
        let mut f = Function::new("f", vec![Ty::I1], Ty::I64);
        let e = f.entry();
        let t = f.add_block();
        let el = f.add_block();
        let j = f.add_block();
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: t,
                if_false: el,
            },
        );
        f.set_term(t, Terminator::Br { dest: j });
        f.set_term(el, Terminator::Br { dest: j });
        let p = f.push(
            j,
            Ty::I64,
            InstKind::Phi {
                incoming: vec![(t, Operand::i64(5)), (el, Operand::i64(5))],
            },
        );
        f.set_term(
            j,
            Terminator::Ret {
                val: Some(Operand::Inst(p)),
            },
        );
        assert_eq!(prune_trivial_phis(&mut f), 1);
        match &f.block(j).term {
            Terminator::Ret { val: Some(v) } => assert_eq!(v.as_const_int(), Some(5)),
            t => panic!("unexpected {t:?}"),
        }
    }
}
