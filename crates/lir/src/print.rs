//! Textual printer for LIR modules (LLVM-flavoured syntax).

use crate::func::{callee_name, Function, Module};
use crate::inst::{InstKind, Operand, Ordering, Terminator};
use std::fmt::Write;

/// Renders one operand.
pub fn operand_to_string(m: &Module, _f: &Function, op: &Operand) -> String {
    match op {
        Operand::Inst(id) => format!("%{}", id.0),
        Operand::Param(i) => format!("%arg{i}"),
        Operand::ConstInt { ty, val } => {
            let bits = ty.int_bits().unwrap_or(64);
            if bits < 64 {
                let v = val & ((1u64 << bits) - 1);
                format!("{v}")
            } else {
                format!("{}", *val as i64)
            }
        }
        Operand::ConstF32(bits) => format!("{:?}", f32::from_bits(*bits)),
        Operand::ConstF64(bits) => format!("{:?}", f64::from_bits(*bits)),
        Operand::Global(id) => format!("@{}", m.global(*id).name),
        Operand::Func(id) => format!("@{}", m.func(*id).name),
        Operand::Undef(_) => "undef".to_string(),
    }
}

/// Renders one instruction (without result binding).
pub fn inst_to_string(m: &Module, f: &Function, kind: &InstKind) -> String {
    let op = |o: &Operand| operand_to_string(m, f, o);
    let oty = |o: &Operand| m.operand_ty(f, o);
    match kind {
        InstKind::Bin { op: b, lhs, rhs } => {
            format!("{} {} {}, {}", b.mnemonic(), oty(lhs), op(lhs), op(rhs))
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            format!(
                "icmp {} {} {}, {}",
                pred.mnemonic(),
                oty(lhs),
                op(lhs),
                op(rhs)
            )
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            format!(
                "fcmp {} {} {}, {}",
                pred.mnemonic(),
                oty(lhs),
                op(lhs),
                op(rhs)
            )
        }
        InstKind::Load { ptr, order } => {
            let a = match order {
                Ordering::NotAtomic => "",
                Ordering::SeqCst => " atomic seq_cst",
            };
            format!("load{a} {} {}", oty(ptr), op(ptr))
        }
        InstKind::Store { ptr, val, order } => {
            let a = match order {
                Ordering::NotAtomic => "",
                Ordering::SeqCst => " atomic seq_cst",
            };
            format!(
                "store{a} {} {}, {} {}",
                oty(val),
                op(val),
                oty(ptr),
                op(ptr)
            )
        }
        InstKind::Fence { kind } => match kind {
            crate::inst::FenceKind::Frm => "fence.rm".to_string(),
            crate::inst::FenceKind::Fww => "fence.ww".to_string(),
            crate::inst::FenceKind::Fsc => "fence seq_cst".to_string(),
        },
        InstKind::AtomicRmw { op: r, ptr, val } => {
            format!(
                "atomicrmw {} {} {}, {} seq_cst",
                r.mnemonic(),
                oty(ptr),
                op(ptr),
                op(val)
            )
        }
        InstKind::CmpXchg { ptr, expected, new } => {
            format!(
                "cmpxchg {} {}, {}, {} seq_cst",
                oty(ptr),
                op(ptr),
                op(expected),
                op(new)
            )
        }
        InstKind::Alloca { size } => format!("alloca [{size} x i8]"),
        InstKind::Gep {
            base,
            offset,
            elem_size,
        } => {
            format!(
                "getelementptr(x{elem_size}) {} {}, i64 {}",
                oty(base),
                op(base),
                op(offset)
            )
        }
        InstKind::Cast { op: c, val } => {
            format!("{} {} {} to <result>", c.mnemonic(), oty(val), op(val))
        }
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => {
            format!("select i1 {}, {}, {}", op(cond), op(if_true), op(if_false))
        }
        InstKind::Call { callee, args } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| format!("{} {}", oty(a), op(a)))
                .collect();
            format!("call {}({})", callee_name(m, callee), args.join(", "))
        }
        InstKind::Phi { incoming } => {
            let inc: Vec<String> = incoming
                .iter()
                .map(|(b, v)| format!("[ {}, {b} ]", op(v)))
                .collect();
            format!("phi {}", inc.join(", "))
        }
        InstKind::ExtractElement { vec, idx } => {
            format!("extractelement {} {}, i32 {idx}", oty(vec), op(vec))
        }
        InstKind::InsertElement { vec, elt, idx } => {
            format!(
                "insertelement {} {}, {} {}, i32 {idx}",
                oty(vec),
                op(vec),
                oty(elt),
                op(elt)
            )
        }
    }
}

/// Renders a function as text.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    let _ = writeln!(s, "define {} @{}({}) {{", f.ret, f.name, params.join(", "));
    for b in f.block_ids() {
        let _ = writeln!(s, "{b}:");
        let blk = f.block(b);
        for id in &blk.insts {
            let inst = f.inst(*id);
            if inst.ty == crate::types::Ty::Void {
                let _ = writeln!(s, "  {}", inst_to_string(m, f, &inst.kind));
            } else {
                let _ = writeln!(
                    s,
                    "  %{} = {} ; {}",
                    id.0,
                    inst_to_string(m, f, &inst.kind),
                    inst.ty
                );
            }
        }
        let t = match &blk.term {
            Terminator::Br { dest } => format!("br label {dest}"),
            Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } => format!(
                "br i1 {}, label {if_true}, label {if_false}",
                operand_to_string(m, f, cond)
            ),
            Terminator::Ret { val: Some(v) } => {
                format!("ret {} {}", m.operand_ty(f, v), operand_to_string(m, f, v))
            }
            Terminator::Ret { val: None } => "ret void".to_string(),
            Terminator::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(s, "  {t}");
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    for g in &m.globals {
        let _ = writeln!(
            s,
            "@{} = global [{} x i8] ; at {:#x}",
            g.name, g.size, g.addr
        );
    }
    for e in &m.externs {
        let params: Vec<String> = e.params.iter().map(|t| t.to_string()).collect();
        let var = if e.variadic { ", ..." } else { "" };
        let _ = writeln!(
            s,
            "declare {} @{}({}{})",
            e.ret,
            e.name,
            params.join(", "),
            var
        );
    }
    for f in &m.funcs {
        let _ = writeln!(s);
        s.push_str(&print_function(m, f));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, FenceKind, InstKind, Operand, Terminator};
    use crate::types::Ty;

    #[test]
    fn print_smoke() {
        let mut m = Module::new();
        let mut f = Function::new("add2", vec![Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        m.add_func(f);
        let text = print_module(&m);
        assert!(text.contains("define i64 @add2(i64 %arg0, i64 %arg1)"));
        assert!(text.contains("%0 = add i64 %arg0, %arg1"));
        assert!(text.contains("fence.ww"));
        assert!(text.contains("ret i64 %0"));
    }
}
