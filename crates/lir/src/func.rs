//! LIR functions, basic blocks, and modules.

use crate::inst::{
    BlockId, Callee, ExternId, FuncId, GlobalId, Inst, InstId, InstKind, Operand, Terminator,
};
use crate::types::Ty;

/// A basic block: an ordered list of instruction ids plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in execution order (ids into [`Function::insts`]).
    pub insts: Vec<InstId>,
    /// Terminator ([`Terminator::Unreachable`] while under construction).
    pub term: Terminator,
}

impl Block {
    fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

/// A function: parameters, an instruction arena, and a block list.
///
/// Instruction *identity* lives in the arena ([`Function::insts`]); program
/// order lives in the per-block `insts` vectors. Passes that delete code
/// remove ids from blocks; the arena slot stays behind as garbage until
/// [`Function::compact`] (ids are never reused in between, so passes can
/// keep side tables keyed by [`InstId`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Basic blocks; `BlockId(0)` is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: &str, params: Vec<Ty>, ret: Ty) -> Function {
        Function {
            name: name.to_string(),
            params,
            ret,
            insts: Vec::new(),
            blocks: vec![Block::new()],
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Adds a new empty block.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Appends an instruction to `block`, returning its id.
    pub fn push(&mut self, block: BlockId, ty: Ty, kind: InstKind) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst { ty, kind });
        self.block_mut(block).insts.push(id);
        id
    }

    /// Inserts an instruction at position `at` of `block`.
    pub fn insert(&mut self, block: BlockId, at: usize, ty: Ty, kind: InstKind) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst { ty, kind });
        self.block_mut(block).insts.insert(at, id);
        id
    }

    /// Sets the terminator of `block`.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.block_mut(block).term = term;
    }

    /// Immutable instruction access.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Mutable instruction access.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize]
    }

    /// Immutable block access.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterates `(block, inst)` pairs in layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).insts.iter().map(move |i| (b, *i)))
    }

    /// Number of live (reachable-from-blocks) instructions.
    pub fn live_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Replaces every use of `from` (an instruction result) with operand
    /// `to`, in all instructions and terminators.
    pub fn replace_all_uses(&mut self, from: InstId, to: Operand) {
        for inst in &mut self.insts {
            inst.kind.for_each_operand_mut(|op| {
                if *op == Operand::Inst(from) {
                    *op = to;
                }
            });
        }
        for block in &mut self.blocks {
            block.term.for_each_operand_mut(|op| {
                if *op == Operand::Inst(from) {
                    *op = to;
                }
            });
        }
    }

    /// Counts uses of each instruction result (in instructions and
    /// terminators), indexed by instruction id.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.insts.len()];
        let mut bump = |op: &Operand| {
            if let Operand::Inst(id) = op {
                counts[id.0 as usize] += 1;
            }
        };
        for b in &self.blocks {
            for id in &b.insts {
                self.inst(*id).kind.for_each_operand(&mut bump);
            }
            b.term.for_each_operand(&mut bump);
        }
        counts
    }

    /// Whether [`Function::compact`] would be a no-op: the arena holds no
    /// dead instructions and the block-walk order already assigns ids
    /// `0..n` in sequence. When this holds, `compact()` rebuilds the arena
    /// into byte-identical state, so callers may skip it.
    pub fn is_compacted(&self) -> bool {
        if self.live_inst_count() != self.insts.len() {
            return false;
        }
        let mut next = 0u32;
        for b in &self.blocks {
            for id in &b.insts {
                if id.0 != next {
                    return false;
                }
                next += 1;
            }
        }
        true
    }

    /// Rebuilds the arena keeping only instructions referenced by blocks,
    /// renumbering ids densely. Returns the number of dropped instructions.
    pub fn compact(&mut self) -> usize {
        let mut remap = vec![None::<InstId>; self.insts.len()];
        let mut new_insts = Vec::with_capacity(self.live_inst_count());
        for b in &self.blocks {
            for id in &b.insts {
                let new_id = InstId(new_insts.len() as u32);
                new_insts.push(self.insts[id.0 as usize].clone());
                remap[id.0 as usize] = Some(new_id);
            }
        }
        let dropped = self.insts.len() - new_insts.len();
        let fix = |op: &mut Operand| {
            if let Operand::Inst(id) = op {
                *op = Operand::Inst(remap[id.0 as usize].expect("use of dead instruction"));
            }
        };
        for inst in &mut new_insts {
            inst.kind.for_each_operand_mut(fix);
        }
        for b in &mut self.blocks {
            for id in &mut b.insts {
                *id = remap[id.0 as usize].unwrap();
            }
            b.term.for_each_operand_mut(fix);
        }
        self.insts = new_insts;
        dropped
    }
}

/// A module-level global data object.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalVar {
    /// Symbol name.
    pub name: String,
    /// Byte size.
    pub size: u64,
    /// Initial bytes (zero-filled to `size` if shorter).
    pub init: Vec<u8>,
    /// Load address carried over from the source binary, used by the
    /// interpreter and the Arm backend to lay out the data section.
    pub addr: u64,
}

/// An external function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExternDecl {
    /// Symbol name (e.g. `pthread_create`).
    pub name: String,
    /// Parameter types (best-effort; variadic externs accept more).
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// Whether extra arguments are allowed (`printf`).
    pub variadic: bool,
}

/// A compilation module: functions, globals, and extern declarations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions; indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Globals; indexed by [`GlobalId`].
    pub globals: Vec<GlobalVar>,
    /// Extern declarations; indexed by [`ExternId`].
    pub externs: Vec<ExternDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: GlobalVar) -> GlobalId {
        self.globals.push(g);
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Adds (or finds) an extern declaration by name.
    pub fn declare_extern(&mut self, decl: ExternDecl) -> ExternId {
        if let Some(i) = self.externs.iter().position(|e| e.name == decl.name) {
            return ExternId(i as u32);
        }
        self.externs.push(decl);
        ExternId(self.externs.len() as u32 - 1)
    }

    /// Function lookup by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Immutable function access.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable function access.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Immutable global access.
    pub fn global(&self, id: GlobalId) -> &GlobalVar {
        &self.globals[id.0 as usize]
    }

    /// Immutable extern access.
    pub fn ext(&self, id: ExternId) -> &ExternDecl {
        &self.externs[id.0 as usize]
    }

    /// The type of an operand, resolved against function `f`.
    pub fn operand_ty(&self, f: &Function, op: &Operand) -> Ty {
        match op {
            Operand::Inst(id) => f.inst(*id).ty,
            Operand::Param(i) => f.params[*i as usize],
            Operand::ConstInt { ty, .. } => *ty,
            Operand::ConstF32(_) => Ty::F32,
            Operand::ConstF64(_) => Ty::F64,
            Operand::Global(_) => Ty::Ptr(crate::types::Pointee::I8),
            Operand::Func(_) => Ty::Ptr(crate::types::Pointee::I8),
            Operand::Undef(ty) => *ty,
        }
    }

    /// Total live instruction count across all functions — the code-size
    /// metric of Figure 16 ("in terms of LLVM instructions").
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::live_inst_count).sum()
    }

    /// Counts instructions matching a predicate across all functions.
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.iter_insts().map(move |(_, id)| f.inst(id)))
            .filter(|i| pred(i))
            .count()
    }
}

/// Resolves a [`Callee`] to a printable name.
pub fn callee_name(m: &Module, callee: &Callee) -> String {
    match callee {
        Callee::Func(id) => format!("@{}", m.func(*id).name),
        Callee::Extern(id) => format!("@{}", m.ext(*id).name),
        Callee::Indirect(_) => "@<indirect>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Ordering};

    fn sample() -> Function {
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        f
    }

    #[test]
    fn build_and_count() {
        let f = sample();
        assert_eq!(f.live_inst_count(), 1);
        assert_eq!(f.use_counts(), vec![1]);
    }

    #[test]
    fn replace_uses() {
        let mut f = sample();
        f.replace_all_uses(InstId(0), Operand::i64(7));
        match &f.block(f.entry()).term {
            Terminator::Ret { val: Some(v) } => assert_eq!(v.as_const_int(), Some(7)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn compact_drops_dead() {
        let mut f = sample();
        // Make a dead arena entry by clearing the block and re-adding a ret.
        let dead = f.push(
            f.entry(),
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::i64(1),
                rhs: Operand::i64(2),
            },
        );
        let e = f.entry();
        f.block_mut(e).insts.retain(|i| *i != dead);
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::i64(0)),
            },
        );
        assert_eq!(f.compact(), 1);
        assert_eq!(f.insts.len(), 1);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        let id = m.add_func(sample());
        assert_eq!(m.func_by_name("f"), Some(id));
        assert_eq!(m.func_by_name("missing"), None);
        let e1 = m.declare_extern(ExternDecl {
            name: "malloc".into(),
            params: vec![Ty::I64],
            ret: Ty::Ptr(crate::types::Pointee::I8),
            variadic: false,
        });
        let e2 = m.declare_extern(ExternDecl {
            name: "malloc".into(),
            params: vec![],
            ret: Ty::Void,
            variadic: false,
        });
        assert_eq!(e1, e2);
    }

    #[test]
    fn operand_types() {
        let m = Module::new();
        let f = sample();
        assert_eq!(m.operand_ty(&f, &Operand::Param(0)), Ty::I64);
        assert_eq!(m.operand_ty(&f, &Operand::Inst(InstId(0))), Ty::I64);
        assert_eq!(m.operand_ty(&f, &Operand::f64(1.0)), Ty::F64);
    }

    #[test]
    fn store_in_block_has_effects() {
        let mut f = Function::new("g", vec![Ty::Ptr(crate::types::Pointee::I64)], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert!(f.inst(InstId(0)).kind.has_side_effects());
    }
}
