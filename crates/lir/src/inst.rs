//! LIR instructions, operands and terminators.

use crate::types::Ty;
use std::fmt;

/// Identifies an instruction within its function's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

/// Identifies a basic block within its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Identifies a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifies a global within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// Identifies an external function declaration within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExternId(pub u32);

/// An operand: an SSA value reference or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Result of an instruction.
    Inst(InstId),
    /// Function parameter by index.
    Param(u32),
    /// Integer constant (stored zero-extended in 64 bits).
    ConstInt {
        /// Type of the constant (`i1`–`i64`).
        ty: Ty,
        /// Value bits (only the low `ty` bits are meaningful).
        val: u64,
    },
    /// `float` constant (bit pattern).
    ConstF32(u32),
    /// `double` constant (bit pattern).
    ConstF64(u64),
    /// Address of a global.
    Global(GlobalId),
    /// Address of a function (for indirect calls / `pthread_create`).
    Func(FuncId),
    /// Undefined value of the given type.
    Undef(Ty),
}

impl Operand {
    /// `i64` integer constant.
    pub fn i64(v: i64) -> Operand {
        Operand::ConstInt {
            ty: Ty::I64,
            val: v as u64,
        }
    }

    /// `i32` integer constant.
    pub fn i32(v: i32) -> Operand {
        Operand::ConstInt {
            ty: Ty::I32,
            val: v as u32 as u64,
        }
    }

    /// `i1` boolean constant.
    pub fn bool(v: bool) -> Operand {
        Operand::ConstInt {
            ty: Ty::I1,
            val: u64::from(v),
        }
    }

    /// `double` constant.
    pub fn f64(v: f64) -> Operand {
        Operand::ConstF64(v.to_bits())
    }

    /// `float` constant.
    pub fn f32(v: f32) -> Operand {
        Operand::ConstF32(v.to_bits())
    }

    /// The constant integer value, if this is an integer constant.
    pub fn as_const_int(&self) -> Option<u64> {
        match self {
            Operand::ConstInt { val, .. } => Some(*val),
            _ => None,
        }
    }

    /// Whether this operand is any constant (including globals/functions,
    /// whose addresses are link-time constants).
    pub fn is_const(&self) -> bool {
        !matches!(self, Operand::Inst(_) | Operand::Param(_))
    }
}

/// Integer and floating-point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard LLVM operation names
pub enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
}

impl BinOp {
    /// Whether this is one of the floating-point operations.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Whether the operation is commutative.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMin
                | BinOp::FMax
        )
    }

    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard LLVM predicate names
pub enum IPred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl IPred {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IPred::Eq => "eq",
            IPred::Ne => "ne",
            IPred::Ult => "ult",
            IPred::Ule => "ule",
            IPred::Ugt => "ugt",
            IPred::Uge => "uge",
            IPred::Slt => "slt",
            IPred::Sle => "sle",
            IPred::Sgt => "sgt",
            IPred::Sge => "sge",
        }
    }

    /// The predicate with operands swapped (`slt` ↔ `sgt`, …).
    pub fn swap(self) -> IPred {
        match self {
            IPred::Eq => IPred::Eq,
            IPred::Ne => IPred::Ne,
            IPred::Ult => IPred::Ugt,
            IPred::Ule => IPred::Uge,
            IPred::Ugt => IPred::Ult,
            IPred::Uge => IPred::Ule,
            IPred::Slt => IPred::Sgt,
            IPred::Sle => IPred::Sge,
            IPred::Sgt => IPred::Slt,
            IPred::Sge => IPred::Sle,
        }
    }

    /// The negated predicate.
    pub fn negate(self) -> IPred {
        match self {
            IPred::Eq => IPred::Ne,
            IPred::Ne => IPred::Eq,
            IPred::Ult => IPred::Uge,
            IPred::Ule => IPred::Ugt,
            IPred::Ugt => IPred::Ule,
            IPred::Uge => IPred::Ult,
            IPred::Slt => IPred::Sge,
            IPred::Sle => IPred::Sgt,
            IPred::Sgt => IPred::Sle,
            IPred::Sge => IPred::Slt,
        }
    }
}

/// Floating-point comparison predicates (ordered and the `une` unordered
/// form x86's `ucomis` + `jne` requires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard LLVM predicate names
pub enum FPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
    Une,
    Uno,
    Ord,
}

impl FPred {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FPred::Oeq => "oeq",
            FPred::One => "one",
            FPred::Olt => "olt",
            FPred::Ole => "ole",
            FPred::Ogt => "ogt",
            FPred::Oge => "oge",
            FPred::Une => "une",
            FPred::Uno => "uno",
            FPred::Ord => "ord",
        }
    }
}

/// Memory-access ordering. LIMM (§6.3) has exactly two access modes:
/// non-atomic, and seq_cst (used by `RMWsc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Non-atomic (`na` in the paper).
    NotAtomic,
    /// Sequentially consistent.
    SeqCst,
}

/// LIMM fences (§6.3).
///
/// `Frm` and `Fww` are the paper's additions to the IR, mirroring Arm's
/// `DMBLD`/`DMBST`; `Fsc` is the existing full fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceKind {
    /// Read-to-memory fence: orders a load with successor accesses
    /// (maps to Arm `DMB LD`).
    Frm,
    /// Write-write fence: orders store pairs (maps to Arm `DMB ST`).
    Fww,
    /// Full fence (maps to Arm `DMB FF`, x86 `MFENCE`).
    Fsc,
}

impl FenceKind {
    /// Whether `self` is at least as strong as `other`.
    pub fn at_least(self, other: FenceKind) -> bool {
        self == FenceKind::Fsc || self == other
    }
}

/// Atomic read-modify-write operations (all seq_cst in LIMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard LLVM atomicrmw names
pub enum RmwOp {
    Xchg,
    Add,
    Sub,
    And,
    Or,
    Xor,
}

impl RmwOp {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RmwOp::Xchg => "xchg",
            RmwOp::Add => "add",
            RmwOp::Sub => "sub",
            RmwOp::And => "and",
            RmwOp::Or => "or",
            RmwOp::Xor => "xor",
        }
    }
}

/// Call target.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A function in this module.
    Func(FuncId),
    /// An external function, by declaration.
    Extern(ExternId),
    /// Indirect through a value.
    Indirect(Operand),
}

/// Cast operations, unified under one instruction kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard LLVM cast names
pub enum CastOp {
    Trunc,
    ZExt,
    SExt,
    FpToSi,
    SiToFp,
    FpExt,
    FpTrunc,
    BitCast,
    IntToPtr,
    PtrToInt,
}

impl CastOp {
    /// LLVM-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::FpToSi => "fptosi",
            CastOp::SiToFp => "sitofp",
            CastOp::FpExt => "fpext",
            CastOp::FpTrunc => "fptrunc",
            CastOp::BitCast => "bitcast",
            CastOp::IntToPtr => "inttoptr",
            CastOp::PtrToInt => "ptrtoint",
        }
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Binary arithmetic/logic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Integer compare producing `i1`.
    ICmp {
        /// Predicate.
        pred: IPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Floating compare producing `i1`.
    FCmp {
        /// Predicate.
        pred: FPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Load through a pointer. Result type is the instruction's type.
    Load {
        /// Address.
        ptr: Operand,
        /// Atomicity.
        order: Ordering,
    },
    /// Store through a pointer.
    Store {
        /// Address.
        ptr: Operand,
        /// Value to store.
        val: Operand,
        /// Atomicity.
        order: Ordering,
    },
    /// LIMM fence.
    Fence {
        /// Which fence.
        kind: FenceKind,
    },
    /// Atomic read-modify-write (seq_cst). Returns the old value.
    AtomicRmw {
        /// Operation applied.
        op: RmwOp,
        /// Address.
        ptr: Operand,
        /// Right-hand value.
        val: Operand,
    },
    /// Atomic compare-exchange (seq_cst). Returns the old value; success can
    /// be recovered with `icmp eq old, expected`.
    CmpXchg {
        /// Address.
        ptr: Operand,
        /// Expected value.
        expected: Operand,
        /// Replacement value.
        new: Operand,
    },
    /// Stack allocation of `size` bytes; result is `i8*` (or a refined
    /// pointer type after promotion).
    Alloca {
        /// Byte size.
        size: u64,
    },
    /// Pointer offset: `base + offset * elem_size` — the `getelementptr`
    /// analogue. `elem_size` is 1 for the i8 GEPs the refinement rules emit.
    Gep {
        /// Base pointer.
        base: Operand,
        /// Element index (i64).
        offset: Operand,
        /// Size of one element in bytes.
        elem_size: u64,
    },
    /// Conversion; destination type is the instruction's result type.
    Cast {
        /// Which conversion.
        op: CastOp,
        /// Source value.
        val: Operand,
    },
    /// `select cond, a, b`.
    Select {
        /// `i1` condition.
        cond: Operand,
        /// Value if true.
        if_true: Operand,
        /// Value if false.
        if_false: Operand,
    },
    /// Function call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// SSA φ-node.
    Phi {
        /// `(predecessor, value)` pairs.
        incoming: Vec<(BlockId, Operand)>,
    },
    /// Extract lane `idx` from a vector.
    ExtractElement {
        /// Source vector.
        vec: Operand,
        /// Lane index.
        idx: u32,
    },
    /// Insert `elt` into lane `idx` of a vector.
    InsertElement {
        /// Source vector.
        vec: Operand,
        /// Element value.
        elt: Operand,
        /// Lane index.
        idx: u32,
    },
}

impl InstKind {
    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Load { ptr, .. } => f(ptr),
            InstKind::Store { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            InstKind::Fence { .. } | InstKind::Alloca { .. } => {}
            InstKind::AtomicRmw { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            InstKind::CmpXchg { ptr, expected, new } => {
                f(ptr);
                f(expected);
                f(new);
            }
            InstKind::Gep { base, offset, .. } => {
                f(base);
                f(offset);
            }
            InstKind::Cast { val, .. } => f(val),
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                f(cond);
                f(if_true);
                f(if_false);
            }
            InstKind::Call { callee, args } => {
                if let Callee::Indirect(op) = callee {
                    f(op);
                }
                for a in args {
                    f(a);
                }
            }
            InstKind::Phi { incoming } => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            InstKind::ExtractElement { vec, .. } => f(vec),
            InstKind::InsertElement { vec, elt, .. } => {
                f(vec);
                f(elt);
            }
        }
    }

    /// Mutably visits every operand.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Load { ptr, .. } => f(ptr),
            InstKind::Store { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            InstKind::Fence { .. } | InstKind::Alloca { .. } => {}
            InstKind::AtomicRmw { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            InstKind::CmpXchg { ptr, expected, new } => {
                f(ptr);
                f(expected);
                f(new);
            }
            InstKind::Gep { base, offset, .. } => {
                f(base);
                f(offset);
            }
            InstKind::Cast { val, .. } => f(val),
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                f(cond);
                f(if_true);
                f(if_false);
            }
            InstKind::Call { callee, args } => {
                if let Callee::Indirect(op) = callee {
                    f(op);
                }
                for a in args {
                    f(a);
                }
            }
            InstKind::Phi { incoming } => {
                for (_, v) in incoming {
                    f(v);
                }
            }
            InstKind::ExtractElement { vec, .. } => f(vec),
            InstKind::InsertElement { vec, elt, .. } => {
                f(vec);
                f(elt);
            }
        }
    }

    /// Whether the instruction accesses memory.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            InstKind::Load { .. }
                | InstKind::Store { .. }
                | InstKind::AtomicRmw { .. }
                | InstKind::CmpXchg { .. }
                | InstKind::Call { .. }
        )
    }

    /// Whether the instruction has side effects beyond producing a value
    /// (cannot be removed by DCE even if unused).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. }
                | InstKind::Fence { .. }
                | InstKind::AtomicRmw { .. }
                | InstKind::CmpXchg { .. }
                | InstKind::Call { .. }
        )
    }

    /// Whether this is an integer↔pointer cast — the instructions the IR
    /// refinement stage (§5) removes; counted for Figure 13.
    pub fn is_int_ptr_cast(&self) -> bool {
        matches!(
            self,
            InstKind::Cast {
                op: CastOp::IntToPtr | CastOp::PtrToInt,
                ..
            }
        )
    }
}

/// A decoded instruction: result type plus operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Result type ([`Ty::Void`] for stores, fences, void calls).
    pub ty: Ty,
    /// Operation.
    pub kind: InstKind,
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br {
        /// Destination block.
        dest: BlockId,
    },
    /// Two-way conditional branch.
    CondBr {
        /// `i1` condition.
        cond: Operand,
        /// Taken when true.
        if_true: BlockId,
        /// Taken when false.
        if_false: BlockId,
    },
    /// Return.
    Ret {
        /// Returned value, absent for `void` functions.
        val: Option<Operand>,
    },
    /// Unreachable (lifted `ud2`).
    Unreachable,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { dest } => vec![*dest],
            Terminator::CondBr {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Ret { .. } | Terminator::Unreachable => vec![],
        }
    }

    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Ret { val: Some(v) } => f(v),
            _ => {}
        }
    }

    /// Mutably visits every operand.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Ret { val: Some(v) } => f(v),
            _ => {}
        }
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_constants() {
        assert_eq!(Operand::i64(-1).as_const_int(), Some(u64::MAX));
        assert_eq!(Operand::i32(-1).as_const_int(), Some(0xFFFF_FFFF));
        assert!(Operand::bool(true).is_const());
        assert!(!Operand::Inst(InstId(0)).is_const());
        assert!(Operand::Global(GlobalId(0)).is_const());
    }

    #[test]
    fn ipred_involutions() {
        for p in [
            IPred::Eq,
            IPred::Ne,
            IPred::Ult,
            IPred::Ule,
            IPred::Ugt,
            IPred::Uge,
            IPred::Slt,
            IPred::Sle,
            IPred::Sgt,
            IPred::Sge,
        ] {
            assert_eq!(p.swap().swap(), p);
            assert_eq!(p.negate().negate(), p);
        }
    }

    #[test]
    fn fence_strength() {
        assert!(FenceKind::Fsc.at_least(FenceKind::Frm));
        assert!(FenceKind::Fsc.at_least(FenceKind::Fww));
        assert!(FenceKind::Frm.at_least(FenceKind::Frm));
        assert!(!FenceKind::Frm.at_least(FenceKind::Fww));
        assert!(!FenceKind::Fww.at_least(FenceKind::Fsc));
    }

    #[test]
    fn operand_visitation() {
        let k = InstKind::Store {
            ptr: Operand::Param(0),
            val: Operand::i64(3),
            order: Ordering::NotAtomic,
        };
        let mut n = 0;
        k.for_each_operand(|_| n += 1);
        assert_eq!(n, 2);
        assert!(k.has_side_effects());
        assert!(k.touches_memory());
    }

    #[test]
    fn cast_classification() {
        let c = InstKind::Cast {
            op: CastOp::IntToPtr,
            val: Operand::Param(0),
        };
        assert!(c.is_int_ptr_cast());
        let b = InstKind::Cast {
            op: CastOp::BitCast,
            val: Operand::Param(0),
        };
        assert!(!b.is_int_ptr_cast());
    }
}
