//! Module verifier: structural and type well-formedness checks.
//!
//! Run after lifting and after every optimization pass in debug builds; a
//! verifier failure means a pass produced malformed IR.

use crate::func::{Function, Module};
use crate::inst::{BlockId, Callee, CastOp, InstKind, Operand, Terminator};
use crate::types::Ty;

/// A verifier diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns every diagnostic found (empty `Ok` when the module is
/// well-formed).
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for f in &m.funcs {
        verify_function(m, f, &mut errs);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn verify_function(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    fn err_in(errs: &mut Vec<VerifyError>, f: &Function, msg: String) {
        errs.push(VerifyError {
            func: f.name.clone(),
            message: msg,
        });
    }
    macro_rules! err {
        ($($arg:tt)*) => { err_in(errs, f, format!($($arg)*)) };
    }

    // No instruction id may appear in two blocks (or twice in one).
    let mut seen = vec![false; f.insts.len()];
    for b in f.block_ids() {
        for id in &f.block(b).insts {
            let slot = &mut seen[id.0 as usize];
            if *slot {
                err!("instruction %{} appears in layout twice", id.0);
            }
            *slot = true;
        }
    }

    for b in f.block_ids() {
        let blk = f.block(b);
        // Phis must lead the block and match predecessors.
        let mut in_phi_prefix = true;
        for (i, id) in blk.insts.iter().enumerate() {
            let inst = f.inst(*id);
            let is_phi = matches!(inst.kind, InstKind::Phi { .. });
            if is_phi && !in_phi_prefix {
                err!("phi %{} not at start of {b}", id.0);
            }
            if !is_phi {
                in_phi_prefix = false;
            }
            check_inst(m, f, b, i, *id, errs);
        }
        // Terminator targets must exist.
        for s in blk.term.successors() {
            if s.0 as usize >= f.blocks.len() {
                err!("{b} branches to nonexistent {s}");
            }
        }
        match &blk.term {
            Terminator::CondBr { cond, .. } => {
                if m.operand_ty(f, cond) != Ty::I1 {
                    err!("{b} condbr condition is not i1");
                }
            }
            Terminator::Ret { val } => match (val, f.ret) {
                (None, Ty::Void) => {}
                (Some(v), ret) => {
                    let ty = m.operand_ty(f, v);
                    if ret == Ty::Void {
                        err!("{b} returns a value from void function");
                    } else if ty != ret && !(ty.is_ptr() && ret.is_ptr()) {
                        err!("{b} returns {ty}, function declares {ret}");
                    }
                }
                (None, ret) => err!("{b} returns void, function declares {ret}"),
            },
            _ => {}
        }
    }
}

fn check_inst(
    m: &Module,
    f: &Function,
    b: BlockId,
    _pos: usize,
    id: crate::inst::InstId,
    errs: &mut Vec<VerifyError>,
) {
    let inst = f.inst(id);
    let mut err = |msg: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            message: format!("%{} in {b}: {msg}", id.0),
        })
    };
    let ty = |op: &Operand| m.operand_ty(f, op);

    // Operand references must be in range.
    inst.kind.for_each_operand(|op| match op {
        Operand::Inst(i) => {
            if i.0 as usize >= f.insts.len() {
                err(format!("references out-of-range instruction %{}", i.0));
            }
        }
        Operand::Param(p) => {
            if *p as usize >= f.params.len() {
                err(format!("references out-of-range parameter {p}"));
            }
        }
        Operand::Global(g) => {
            if g.0 as usize >= m.globals.len() {
                err("references out-of-range global".to_string());
            }
        }
        Operand::Func(fi) => {
            if fi.0 as usize >= m.funcs.len() {
                err("references out-of-range function".to_string());
            }
        }
        _ => {}
    });

    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            let (lt, rt) = (ty(lhs), ty(rhs));
            if lt != rt {
                err(format!("binop operand types differ: {lt} vs {rt}"));
            }
            if op.is_float() && !(lt.is_float() || lt.is_vector()) {
                err(format!("float op {} on {lt}", op.mnemonic()));
            }
            if !op.is_float() && !(lt.is_int() || lt.is_vector()) {
                err(format!("int op {} on {lt}", op.mnemonic()));
            }
            if inst.ty != lt {
                err(format!(
                    "binop result {} differs from operand {lt}",
                    inst.ty
                ));
            }
        }
        InstKind::ICmp { lhs, rhs, .. } => {
            let (lt, rt) = (ty(lhs), ty(rhs));
            if lt != rt && !(lt.is_ptr() && rt.is_ptr()) {
                err(format!("icmp operand types differ: {lt} vs {rt}"));
            }
            if inst.ty != Ty::I1 {
                err("icmp result must be i1".to_string());
            }
        }
        InstKind::FCmp { lhs, rhs, .. } => {
            if !ty(lhs).is_float() || ty(lhs) != ty(rhs) {
                err("fcmp operands must be matching floats".to_string());
            }
            if inst.ty != Ty::I1 {
                err("fcmp result must be i1".to_string());
            }
        }
        InstKind::Load { ptr, .. } => {
            if !ty(ptr).is_ptr() && ty(ptr) != Ty::I64 {
                err(format!("load address has type {}", ty(ptr)));
            }
            if inst.ty == Ty::Void {
                err("load cannot produce void".to_string());
            }
        }
        InstKind::Store { ptr, .. } => {
            if !ty(ptr).is_ptr() && ty(ptr) != Ty::I64 {
                err(format!("store address has type {}", ty(ptr)));
            }
            if inst.ty != Ty::Void {
                err("store produces no value".to_string());
            }
        }
        InstKind::Fence { .. } => {
            if inst.ty != Ty::Void {
                err("fence produces no value".to_string());
            }
        }
        InstKind::AtomicRmw { ptr, val, .. } => {
            if !ty(ptr).is_ptr() {
                err("atomicrmw address must be a pointer".to_string());
            }
            if inst.ty != ty(val) {
                err("atomicrmw result type must match operand".to_string());
            }
        }
        InstKind::CmpXchg { ptr, expected, new } => {
            if !ty(ptr).is_ptr() {
                err("cmpxchg address must be a pointer".to_string());
            }
            if ty(expected) != ty(new) || inst.ty != ty(expected) {
                err("cmpxchg value types must agree".to_string());
            }
        }
        InstKind::Alloca { size } => {
            if !inst.ty.is_ptr() {
                err("alloca must produce a pointer".to_string());
            }
            if *size == 0 {
                err("zero-sized alloca".to_string());
            }
        }
        InstKind::Gep { base, offset, .. } => {
            if !ty(base).is_ptr() {
                err(format!("gep base has type {}", ty(base)));
            }
            if ty(offset) != Ty::I64 {
                err(format!("gep offset must be i64, got {}", ty(offset)));
            }
            if !inst.ty.is_ptr() {
                err("gep must produce a pointer".to_string());
            }
        }
        InstKind::Cast { op, val } => {
            let vt = ty(val);
            let ok = match op {
                CastOp::Trunc => {
                    vt.is_int() && inst.ty.is_int() && vt.int_bits() > inst.ty.int_bits()
                }
                CastOp::ZExt | CastOp::SExt => {
                    vt.is_int() && inst.ty.is_int() && vt.int_bits() < inst.ty.int_bits()
                }
                CastOp::FpToSi => vt.is_float() && inst.ty.is_int(),
                CastOp::SiToFp => vt.is_int() && inst.ty.is_float(),
                CastOp::FpExt => vt == Ty::F32 && inst.ty == Ty::F64,
                CastOp::FpTrunc => vt == Ty::F64 && inst.ty == Ty::F32,
                CastOp::BitCast => {
                    (vt.is_ptr() && inst.ty.is_ptr())
                        || (vt != Ty::Void && vt.size() == inst.ty.size())
                }
                CastOp::IntToPtr => vt == Ty::I64 && inst.ty.is_ptr(),
                CastOp::PtrToInt => vt.is_ptr() && inst.ty == Ty::I64,
            };
            if !ok {
                err(format!(
                    "invalid {} from {vt} to {}",
                    op.mnemonic(),
                    inst.ty
                ));
            }
        }
        InstKind::Select {
            cond,
            if_true,
            if_false,
        } => {
            if ty(cond) != Ty::I1 {
                err("select condition must be i1".to_string());
            }
            if ty(if_true) != ty(if_false) {
                err("select arms differ in type".to_string());
            }
        }
        InstKind::Call { callee, args } => {
            if let Callee::Extern(e) = callee {
                let decl = m.ext(*e);
                if !decl.variadic && args.len() != decl.params.len() {
                    err(format!(
                        "call to @{} passes {} args, declared {}",
                        decl.name,
                        args.len(),
                        decl.params.len()
                    ));
                }
            }
            if let Callee::Func(fi) = callee {
                let callee_f = m.func(*fi);
                if args.len() != callee_f.params.len() {
                    err(format!(
                        "call to @{} passes {} args, declared {}",
                        callee_f.name,
                        args.len(),
                        callee_f.params.len()
                    ));
                }
            }
        }
        InstKind::Phi { incoming } => {
            if incoming.is_empty() {
                err("phi with no incoming values".to_string());
            }
            for (pred, _) in incoming {
                if pred.0 as usize >= f.blocks.len() {
                    err(format!("phi references nonexistent {pred}"));
                }
            }
        }
        InstKind::ExtractElement { vec, .. } => {
            if !ty(vec).is_vector() {
                err("extractelement source must be a vector".to_string());
            }
        }
        InstKind::InsertElement { vec, .. } => {
            if !ty(vec).is_vector() || !inst.ty.is_vector() {
                err("insertelement must map vector to vector".to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, InstKind, Operand, Terminator};
    use crate::types::{Pointee, Ty};

    #[test]
    fn accepts_well_formed() {
        let mut m = Module::new();
        let mut f = Function::new("ok", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        m.add_func(f);
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut m = Module::new();
        let mut f = Function::new("bad", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i32(1),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(a)),
            },
        );
        m.add_func(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("operand types differ")));
    }

    #[test]
    fn rejects_bad_return() {
        let mut m = Module::new();
        let mut f = Function::new("bad", vec![], Ty::I64);
        let e = f.entry();
        f.set_term(e, Terminator::Ret { val: None });
        m.add_func(f);
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_misplaced_phi() {
        let mut m = Module::new();
        let mut f = Function::new("bad", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(1),
            },
        );
        let p = f.push(
            e,
            Ty::I64,
            InstKind::Phi {
                incoming: vec![(e, Operand::Param(0))],
            },
        );
        let _ = a;
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(p)),
            },
        );
        m.add_func(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not at start")));
    }

    #[test]
    fn rejects_invalid_cast() {
        let mut m = Module::new();
        let mut f = Function::new("bad", vec![Ty::I32], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Ptr(Pointee::I8),
            InstKind::Cast {
                op: crate::inst::CastOp::IntToPtr,
                val: Operand::Param(0),
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        m.add_func(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("invalid inttoptr")));
    }
}
