//! CFG analyses: predecessors/successors, reverse post-order, dominators,
//! dominance frontiers, and natural-loop detection.
//!
//! These power `mem2reg` (SSA construction), `licm`, `adce` and `gvn` in the
//! `lasagne-opt` crate.

use crate::func::Function;
use crate::inst::BlockId;

/// Control-flow graph summary of a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry; unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                succs[b.0 as usize].push(s);
                preds[s.0 as usize].push(b);
            }
        }
        // Post-order DFS from entry.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 open, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some((b, i)) = stack.pop() {
            let ss = &succs[b.0 as usize];
            if i < ss.len() {
                stack.push((b, i + 1));
                let nxt = ss[i];
                if state[nxt.0 as usize] == 0 {
                    state[nxt.0 as usize] = 1;
                    stack.push((nxt, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block (`None` for the entry and unreachable
    /// blocks).
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators over `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.succs.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if cfg.rpo.is_empty() {
            return Dominators { idom };
        }
        idom[cfg.rpo[0].0 as usize] = Some(cfg.rpo[0]);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if !cfg.reachable(p) || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self_intersect(cfg, &idom, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally itself during computation; expose None.
        idom[cfg.rpo[0].0 as usize] = None;
        Dominators { idom }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
        if !cfg.reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Dominance frontier per block.
    pub fn frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = cfg.succs.len();
        let mut df = vec![Vec::new(); n];
        for b in 0..n {
            let b = BlockId(b as u32);
            if !cfg.reachable(b) || cfg.preds[b.0 as usize].len() < 2 {
                continue;
            }
            let idom_b = match self.idom[b.0 as usize] {
                Some(d) => d,
                None => continue,
            };
            for &p in &cfg.preds[b.0 as usize] {
                if !cfg.reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    let dfr = &mut df[runner.0 as usize];
                    if !dfr.contains(&b) {
                        dfr.push(b);
                    }
                    match self.idom[runner.0 as usize] {
                        Some(d) => runner = d,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

fn self_intersect(cfg: &Cfg, idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId) -> BlockId {
    while a != b {
        while cfg.rpo_index[a.0 as usize] > cfg.rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("intersect on unprocessed block");
        }
        while cfg.rpo_index[b.0 as usize] > cfg.rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("intersect on unprocessed block");
        }
    }
    a
}

/// A natural loop: header plus body blocks (including the header).
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header.
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: Vec<BlockId>,
}

/// Finds natural loops via back edges (`latch → header` where the header
/// dominates the latch).
pub fn find_loops(cfg: &Cfg, doms: &Dominators) -> Vec<Loop> {
    let mut loops: Vec<Loop> = Vec::new();
    for &b in &cfg.rpo {
        for &s in &cfg.succs[b.0 as usize] {
            if doms.dominates(cfg, s, b) {
                // Back edge b -> s; collect the loop body by walking preds.
                let header = s;
                let mut body = vec![header];
                let mut stack = vec![b];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.push(x);
                    for &p in &cfg.preds[x.0 as usize] {
                        if cfg.reachable(p) {
                            stack.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    for x in body {
                        if !existing.blocks.contains(&x) {
                            existing.blocks.push(x);
                        }
                    }
                } else {
                    loops.push(Loop {
                        header,
                        blocks: body,
                    });
                }
            }
        }
    }
    loops
}

/// Lazily built, incrementally invalidated per-function analysis cache.
///
/// One `Analyses` lives alongside each function for the duration of an opt
/// run (see `lasagne-opt`'s scheduler). Passes pull what they need through
/// the accessors — a cached result is returned if still valid, otherwise it
/// is recomputed from the function — and report what they broke through the
/// `note_*` methods:
///
/// * `note_insts_changed` — instructions were added/removed/rewritten, so
///   use counts (and anything derived from instruction identity) are stale.
///   The CFG survives: no pass except sccp edits terminator *targets*.
/// * `note_cfg_changed` — a terminator target changed (sccp's branch folds
///   and unreachable-block pruning), so the CFG and dominators are stale.
///
/// Use counts are handed out by value (`seed_use_counts`/`store_use_counts`)
/// so a worklist pass can decrement them in place while mutating the
/// function, then hand the maintained vector back for the next pass.
#[derive(Debug, Default)]
pub struct Analyses {
    use_counts: Option<Vec<u32>>,
    cfg: Option<Cfg>,
    doms: Option<Dominators>,
}

impl Analyses {
    /// Fresh cache with nothing computed.
    pub fn new() -> Analyses {
        Analyses::default()
    }

    /// Takes the cached use-count vector if it is still valid for `f`
    /// (arena length matches), otherwise computes a fresh one. The caller
    /// owns the vector, may maintain it incrementally across its own edits,
    /// and should return it via [`Analyses::store_use_counts`].
    pub fn seed_use_counts(&mut self, f: &Function) -> Vec<u32> {
        match self.use_counts.take() {
            Some(counts) if counts.len() == f.insts.len() => counts,
            _ => f.use_counts(),
        }
    }

    /// Returns a maintained use-count vector to the cache.
    pub fn store_use_counts(&mut self, counts: Vec<u32>) {
        self.use_counts = Some(counts);
    }

    /// The CFG of `f`, computed on first use and cached until
    /// [`Analyses::note_cfg_changed`].
    pub fn cfg(&mut self, f: &Function) -> &Cfg {
        if self.cfg.is_none() {
            self.cfg = Some(Cfg::compute(f));
        }
        self.cfg.as_ref().expect("cfg just ensured")
    }

    /// The CFG and dominator tree of `f`, both cached.
    pub fn cfg_and_doms(&mut self, f: &Function) -> (&Cfg, &Dominators) {
        if self.cfg.is_none() {
            self.cfg = Some(Cfg::compute(f));
        }
        let cfg = self.cfg.as_ref().expect("cfg just ensured");
        if self.doms.is_none() {
            self.doms = Some(Dominators::compute(cfg));
        }
        (cfg, self.doms.as_ref().expect("doms just ensured"))
    }

    /// Instructions changed: drop anything keyed on instruction identity.
    pub fn note_insts_changed(&mut self) {
        self.use_counts = None;
    }

    /// Control flow changed: drop the CFG, dominators, and use counts
    /// (terminator rewrites change operand uses too).
    pub fn note_cfg_changed(&mut self) {
        self.cfg = None;
        self.doms = None;
        self.use_counts = None;
    }

    /// Drops everything.
    pub fn invalidate_all(&mut self) {
        *self = Analyses::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Terminator};
    use crate::types::Ty;

    /// Builds a diamond: 0 -> {1,2} -> 3.
    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Ty::I1], Ty::Void);
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.set_term(
            f.entry(),
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: b1,
                if_false: b2,
            },
        );
        f.set_term(b1, Terminator::Br { dest: b3 });
        f.set_term(b2, Terminator::Br { dest: b3 });
        f.set_term(b3, Terminator::Ret { val: None });
        f
    }

    /// Builds a loop: 0 -> 1; 1 -> {1, 2}.
    fn looped() -> Function {
        let mut f = Function::new("l", vec![Ty::I1], Ty::Void);
        let body = f.add_block();
        let exit = f.add_block();
        f.set_term(f.entry(), Terminator::Br { dest: body });
        f.set_term(
            body,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: body,
                if_false: exit,
            },
        );
        f.set_term(exit, Terminator::Ret { val: None });
        f
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let doms = Dominators::compute(&cfg);
        assert_eq!(doms.idom[1], Some(BlockId(0)));
        assert_eq!(doms.idom[2], Some(BlockId(0)));
        assert_eq!(doms.idom[3], Some(BlockId(0)));
        assert!(doms.dominates(&cfg, BlockId(0), BlockId(3)));
        assert!(!doms.dominates(&cfg, BlockId(1), BlockId(3)));
        assert!(doms.dominates(&cfg, BlockId(3), BlockId(3)));
    }

    #[test]
    fn diamond_frontiers() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let doms = Dominators::compute(&cfg);
        let df = doms.frontiers(&cfg);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
    }

    #[test]
    fn loop_detection() {
        let f = looped();
        let cfg = Cfg::compute(&f);
        let doms = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &doms);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, BlockId(1));
        assert_eq!(loops[0].blocks, vec![BlockId(1)]);
    }

    /// Nested loops: 0 → outer(1) → inner(2) → {2, 3}; 3 → {1, 4}.
    #[test]
    fn nested_loops_detected() {
        let mut f = Function::new("n", vec![Ty::I1], Ty::Void);
        let outer = f.add_block(); // 1
        let inner = f.add_block(); // 2
        let latch = f.add_block(); // 3
        let exit = f.add_block(); // 4
        f.set_term(f.entry(), Terminator::Br { dest: outer });
        f.set_term(outer, Terminator::Br { dest: inner });
        f.set_term(
            inner,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: inner,
                if_false: latch,
            },
        );
        f.set_term(
            latch,
            Terminator::CondBr {
                cond: Operand::Param(0),
                if_true: outer,
                if_false: exit,
            },
        );
        f.set_term(exit, Terminator::Ret { val: None });
        let cfg = Cfg::compute(&f);
        let doms = Dominators::compute(&cfg);
        let loops = find_loops(&cfg, &doms);
        assert_eq!(loops.len(), 2, "{loops:?}");
        let inner_loop = loops
            .iter()
            .find(|l| l.header == inner)
            .expect("inner loop");
        assert_eq!(inner_loop.blocks, vec![inner]);
        let outer_loop = loops
            .iter()
            .find(|l| l.header == outer)
            .expect("outer loop");
        assert!(outer_loop.blocks.contains(&inner) && outer_loop.blocks.contains(&latch));
    }

    #[test]
    fn unreachable_block_excluded() {
        let mut f = diamond();
        let dead = f.add_block();
        f.set_term(dead, Terminator::Ret { val: None });
        let cfg = Cfg::compute(&f);
        assert!(!cfg.reachable(dead));
        assert_eq!(cfg.rpo.len(), 4);
        let doms = Dominators::compute(&cfg);
        assert!(!doms.dominates(&cfg, BlockId(0), dead));
    }
}
