//! LIR type system.
//!
//! A deliberately small, `Copy`-able slice of the LLVM type system: the
//! integer and floating-point scalars the lifter produces, the 128-bit
//! vector shapes used by SSE packed values, and *typed pointers* — pointee
//! types are what the paper's IR-refinement stage (§5) reconstructs, so they
//! are first-class here.

use std::fmt;

/// The pointee of a [`Ty::Ptr`].
///
/// One level of pointee typing is modelled (`Ptr` as a pointee stands for
/// pointer-to-pointer with an opaque second level), which is exactly the
/// granularity the paper's peephole rules and pointer parameter promotion
/// operate at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pointee {
    /// `i8*` — the "raw memory" pointer the lifter starts from.
    I8,
    /// `i16*`
    I16,
    /// `i32*`
    I32,
    /// `i64*`
    I64,
    /// `float*`
    F32,
    /// `double*`
    F64,
    /// `<16 x i8>*` — any 128-bit vector in memory.
    V128,
    /// Pointer to pointer (second level opaque).
    Ptr,
}

impl Pointee {
    /// Size in bytes of the pointed-to object element.
    pub fn size(self) -> u64 {
        match self {
            Pointee::I8 => 1,
            Pointee::I16 => 2,
            Pointee::I32 => 4,
            Pointee::I64 | Pointee::F64 | Pointee::Ptr => 8,
            Pointee::F32 => 4,
            Pointee::V128 => 16,
        }
    }

    /// The type of a value loaded through this pointer.
    pub fn loaded_ty(self) -> Ty {
        match self {
            Pointee::I8 => Ty::I8,
            Pointee::I16 => Ty::I16,
            Pointee::I32 => Ty::I32,
            Pointee::I64 => Ty::I64,
            Pointee::F32 => Ty::F32,
            Pointee::F64 => Ty::F64,
            Pointee::V128 => Ty::V2F64,
            Pointee::Ptr => Ty::Ptr(Pointee::I8),
        }
    }
}

/// An LIR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// No value (function returns only).
    Void,
    /// 1-bit boolean.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 single.
    F32,
    /// IEEE-754 double.
    F64,
    /// `<2 x double>`
    V2F64,
    /// `<4 x float>`
    V4F32,
    /// `<2 x i64>`
    V2I64,
    /// `<4 x i32>`
    V4I32,
    /// Typed pointer.
    Ptr(Pointee),
}

impl Ty {
    /// Size of the value in bytes (pointers are 8).
    ///
    /// # Panics
    ///
    /// Panics on [`Ty::Void`].
    pub fn size(self) -> u64 {
        match self {
            Ty::Void => panic!("void has no size"),
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 | Ty::F32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr(_) => 8,
            Ty::V2F64 | Ty::V4F32 | Ty::V2I64 | Ty::V4I32 => 16,
        }
    }

    /// Width in bits for integer types.
    pub fn int_bits(self) -> Option<u32> {
        match self {
            Ty::I1 => Some(1),
            Ty::I8 => Some(8),
            Ty::I16 => Some(16),
            Ty::I32 => Some(32),
            Ty::I64 => Some(64),
            _ => None,
        }
    }

    /// Whether this is an integer type (including `i1`).
    pub fn is_int(self) -> bool {
        self.int_bits().is_some()
    }

    /// Whether this is `float` or `double`.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// Whether this is a pointer.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Whether this is a 128-bit vector.
    pub fn is_vector(self) -> bool {
        matches!(self, Ty::V2F64 | Ty::V4F32 | Ty::V2I64 | Ty::V4I32)
    }

    /// The integer type of exactly `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics for unsupported widths.
    pub fn int(bits: u32) -> Ty {
        match bits {
            1 => Ty::I1,
            8 => Ty::I8,
            16 => Ty::I16,
            32 => Ty::I32,
            64 => Ty::I64,
            b => panic!("unsupported integer width i{b}"),
        }
    }

    /// For a pointer type, the pointee.
    pub fn pointee(self) -> Option<Pointee> {
        match self {
            Ty::Ptr(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::I1 => write!(f, "i1"),
            Ty::I8 => write!(f, "i8"),
            Ty::I16 => write!(f, "i16"),
            Ty::I32 => write!(f, "i32"),
            Ty::I64 => write!(f, "i64"),
            Ty::F32 => write!(f, "float"),
            Ty::F64 => write!(f, "double"),
            Ty::V2F64 => write!(f, "<2 x double>"),
            Ty::V4F32 => write!(f, "<4 x float>"),
            Ty::V2I64 => write!(f, "<2 x i64>"),
            Ty::V4I32 => write!(f, "<4 x i32>"),
            Ty::Ptr(p) => match p {
                Pointee::I8 => write!(f, "i8*"),
                Pointee::I16 => write!(f, "i16*"),
                Pointee::I32 => write!(f, "i32*"),
                Pointee::I64 => write!(f, "i64*"),
                Pointee::F32 => write!(f, "float*"),
                Pointee::F64 => write!(f, "double*"),
                Pointee::V128 => write!(f, "<v128>*"),
                Pointee::Ptr => write!(f, "i8**"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::Ptr(Pointee::F64).size(), 8);
        assert_eq!(Ty::V2F64.size(), 16);
        assert_eq!(Pointee::F64.size(), 8);
    }

    #[test]
    fn classification() {
        assert!(Ty::I1.is_int());
        assert!(!Ty::F32.is_int());
        assert!(Ty::F64.is_float());
        assert!(Ty::Ptr(Pointee::I8).is_ptr());
        assert!(Ty::V4F32.is_vector());
    }

    #[test]
    fn int_constructor_roundtrip() {
        for bits in [1, 8, 16, 32, 64] {
            assert_eq!(Ty::int(bits).int_bits(), Some(bits));
        }
    }

    #[test]
    fn loaded_types() {
        assert_eq!(Pointee::I32.loaded_ty(), Ty::I32);
        assert_eq!(Pointee::Ptr.loaded_ty(), Ty::Ptr(Pointee::I8));
    }

    #[test]
    fn display() {
        assert_eq!(Ty::Ptr(Pointee::I32).to_string(), "i32*");
        assert_eq!(Ty::V2F64.to_string(), "<2 x double>");
    }
}
