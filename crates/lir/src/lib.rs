//! LIR: the typed intermediate representation at the centre of the Lasagne
//! static binary translator.
//!
//! LIR plays the role LLVM IR plays in the paper ("Lasagne: A Static Binary
//! Translator for Weak Memory Model Architectures", PLDI 2022): the x86
//! lifter produces it, the refinement and optimization passes transform it,
//! the fence-placement stage inserts LIMM fences ([`inst::FenceKind`]) into
//! it, and the Arm backend consumes it. It is deliberately a *small* LLVM:
//! typed pointers (the currency of the paper's §5 refinement), non-atomic
//! and seq_cst memory accesses, the three LIMM fences (`Frm`, `Fww`, `Fsc`),
//! atomic read-modify-writes, and enough scalar/vector arithmetic to express
//! the lifted Phoenix benchmarks.
//!
//! The crate also ships a reference [`interp`]reter (with a pthread-style
//! fork–join runtime) used to validate translations end-to-end, and the CFG
//! [`analysis`] toolkit (dominators, frontiers, loops) the optimizer builds
//! on.
//!
//! # Example
//!
//! ```
//! use lasagne_lir::func::{Function, Module};
//! use lasagne_lir::inst::{BinOp, InstKind, Operand, Terminator};
//! use lasagne_lir::interp::{Machine, Val};
//! use lasagne_lir::types::Ty;
//!
//! let mut m = Module::new();
//! let mut f = Function::new("add", vec![Ty::I64, Ty::I64], Ty::I64);
//! let entry = f.entry();
//! let sum = f.push(entry, Ty::I64, InstKind::Bin {
//!     op: BinOp::Add,
//!     lhs: Operand::Param(0),
//!     rhs: Operand::Param(1),
//! });
//! f.set_term(entry, Terminator::Ret { val: Some(Operand::Inst(sum)) });
//! let id = m.add_func(f);
//!
//! lasagne_lir::verify::verify_module(&m).map_err(|e| format!("{e:?}"))?;
//! let mut machine = Machine::new(&m);
//! let result = machine.run(id, &[Val::B64(2), Val::B64(40)])?;
//! assert_eq!(result.ret, Some(Val::B64(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod func;
pub mod inst;
pub mod interp;
pub mod print;
pub mod ssa;
pub mod types;
pub mod verify;

pub use func::{Function, Module};
pub use inst::{BlockId, FuncId, Inst, InstId, InstKind, Operand, Terminator};
pub use types::{Pointee, Ty};
