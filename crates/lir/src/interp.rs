//! Reference interpreter for LIR modules.
//!
//! Used to validate lifted code end-to-end (run the x86-semantics IR and
//! compare against expected outputs) and to gather dynamic statistics
//! (instructions retired, fences executed). The runtime implements the small
//! set of C library and pthread externs the Phoenix benchmarks need; threads
//! follow sequential fork–join semantics with per-thread cycle accounting so
//! a critical-path time can be reported.

use crate::func::{Function, Module};
use crate::inst::{
    BinOp, Callee, CastOp, FPred, FenceKind, FuncId, IPred, InstId, InstKind, Operand, RmwOp,
    Terminator,
};
use crate::types::Ty;
use std::collections::BTreeMap;

/// Pseudo-address base where functions are "linked" so function pointers
/// (e.g. the `pthread_create` start routine) have addressable values.
pub const FUNC_ADDR_BASE: u64 = 0x10_0000;
/// Heap base for `malloc`.
pub const HEAP_BASE: u64 = 0x7000_0000;
/// Stack top for the main thread (stacks grow down).
pub const STACK_TOP: u64 = 0x6000_0000;
/// Bytes reserved per simulated thread stack.
pub const STACK_SIZE: u64 = 1 << 20;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Access to an address no segment covers.
    UnmappedMemory {
        /// Offending address.
        addr: u64,
    },
    /// Call to an unknown extern or bad indirect target.
    BadCall(String),
    /// Integer division by zero, or similar trap.
    Trap(String),
    /// The configured step limit was exceeded.
    StepLimit,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnmappedMemory { addr } => write!(f, "unmapped memory at {addr:#x}"),
            ExecError::BadCall(s) => write!(f, "bad call: {s}"),
            ExecError::Trap(s) => write!(f, "trap: {s}"),
            ExecError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A runtime value: 64-bit bits, or a 128-bit vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Scalar (integers, pointers, and floats as bit patterns).
    B64(u64),
    /// 128-bit vector bytes.
    B128([u8; 16]),
}

impl Val {
    /// Scalar bits.
    ///
    /// # Panics
    ///
    /// Panics on a vector value.
    pub fn bits(self) -> u64 {
        match self {
            Val::B64(b) => b,
            Val::B128(_) => panic!("scalar use of vector value"),
        }
    }

    /// As `f64`.
    pub fn f64(self) -> f64 {
        f64::from_bits(self.bits())
    }

    /// As `f32` (low 32 bits).
    pub fn f32(self) -> f32 {
        f32::from_bits(self.bits() as u32)
    }

    /// Vector bytes.
    ///
    /// # Panics
    ///
    /// Panics on a scalar value.
    pub fn v128(self) -> [u8; 16] {
        match self {
            Val::B128(b) => b,
            Val::B64(_) => panic!("vector use of scalar value"),
        }
    }
}

/// Sparse paged memory.
#[derive(Debug, Default)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8; 4096]>>,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; 4096] {
        self.pages
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0; 4096]))
    }

    /// Reads `len ≤ 16` bytes.
    pub fn read(&mut self, addr: u64, len: usize) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, o) in out.iter_mut().enumerate().take(len) {
            let a = addr + i as u64;
            *o = self.page_mut(a)[(a & 0xfff) as usize];
        }
        out
    }

    /// Writes `len ≤ 16` bytes.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            let a = addr + i as u64;
            self.page_mut(a)[(a & 0xfff) as usize] = *b;
        }
    }

    /// Reads a `u64`.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8)[..8].try_into().unwrap())
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads a NUL-terminated C string (up to 64 KiB).
    pub fn read_cstr(&mut self, addr: u64) -> String {
        let mut s = Vec::new();
        for i in 0..65536 {
            let b = self.read(addr + i, 1)[0];
            if b == 0 {
                break;
            }
            s.push(b);
        }
        String::from_utf8_lossy(&s).into_owned()
    }
}

/// Dynamic execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Fences executed, by kind: (Frm, Fww, Fsc).
    pub fences: (u64, u64, u64),
    /// Atomic RMWs executed.
    pub rmws: u64,
    /// Abstract cycle count (see `Machine::cost_of`).
    pub cycles: u64,
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Value returned by the entry function (if non-void).
    pub ret: Option<Val>,
    /// Whole-run statistics.
    pub stats: ExecStats,
    /// Per-spawned-thread cycle counts, in spawn order.
    pub thread_cycles: Vec<u64>,
    /// Captured `printf` output.
    pub output: String,
}

impl RunResult {
    /// Fork–join critical path: main-thread cycles plus the slowest child
    /// (children execute concurrently in the modelled machine).
    pub fn critical_path_cycles(&self) -> u64 {
        let children: u64 = self.thread_cycles.iter().sum();
        let max = self.thread_cycles.iter().copied().max().unwrap_or(0);
        self.stats.cycles - children + max
    }
}

/// The interpreter.
pub struct Machine<'m> {
    module: &'m Module,
    /// Simulated memory.
    pub mem: Memory,
    heap_next: u64,
    stack_next: u64,
    stats: ExecStats,
    thread_cycles: Vec<u64>,
    output: String,
    steps_left: u64,
    mutexes: BTreeMap<u64, bool>,
}

impl<'m> Machine<'m> {
    /// Creates a machine for `module`, mapping its globals into memory.
    pub fn new(module: &'m Module) -> Machine<'m> {
        let mut mem = Memory::new();
        for g in &module.globals {
            let mut bytes = g.init.clone();
            bytes.resize(g.size as usize, 0);
            mem.write(g.addr, &bytes);
        }
        Machine {
            module,
            mem,
            heap_next: HEAP_BASE,
            stack_next: STACK_TOP,
            stats: ExecStats::default(),
            thread_cycles: Vec::new(),
            output: String::new(),
            steps_left: 500_000_000,
            mutexes: BTreeMap::new(),
        }
    }

    /// Sets the execution step limit.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.steps_left = limit;
    }

    /// Abstract cost of one instruction, in cycles. Fences are the expensive
    /// operations on the modelled weak-memory core.
    fn cost_of(kind: &InstKind) -> u64 {
        match kind {
            InstKind::Load { .. } => 4,
            InstKind::Store { .. } => 4,
            InstKind::Fence {
                kind: FenceKind::Fsc,
            } => 40,
            InstKind::Fence { .. } => 16,
            InstKind::AtomicRmw { .. } | InstKind::CmpXchg { .. } => 48,
            InstKind::Bin {
                op: BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem,
                ..
            } => 20,
            InstKind::Bin {
                op: BinOp::FDiv, ..
            } => 15,
            InstKind::Call { .. } => 4,
            _ => 1,
        }
    }

    /// Runs function `id` with the given arguments to completion.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on memory faults, traps, bad calls, or if
    /// the step limit is exhausted.
    pub fn run(&mut self, id: FuncId, args: &[Val]) -> Result<RunResult, ExecError> {
        let ret = self.call(id, args.to_vec())?;
        Ok(RunResult {
            ret,
            stats: self.stats,
            thread_cycles: self.thread_cycles.clone(),
            output: std::mem::take(&mut self.output),
        })
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    fn call(&mut self, id: FuncId, args: Vec<Val>) -> Result<Option<Val>, ExecError> {
        let f = self.module.func(id);
        let mut frame = Frame {
            vals: vec![None; f.insts.len()],
            args,
            alloca_base: self.stack_next,
            alloca_next: self.stack_next,
        };
        // Reserve a generous frame region; restored on return.
        let saved_stack = self.stack_next;
        self.stack_next -= 1 << 16;

        let mut block = f.entry();
        let mut prev_block = f.entry();
        loop {
            // Phi reads must all happen against values from the predecessor,
            // so evaluate them as a parallel copy.
            let blk = f.block(block);
            let mut phi_writes: Vec<(InstId, Val)> = Vec::new();
            for idx in &blk.insts {
                let inst = f.inst(*idx);
                if let InstKind::Phi { incoming } = &inst.kind {
                    let (_, op) =
                        incoming
                            .iter()
                            .find(|(p, _)| *p == prev_block)
                            .ok_or_else(|| {
                                ExecError::Trap(format!(
                                    "phi missing incoming for {prev_block} in @{}",
                                    f.name
                                ))
                            })?;
                    let v = self.eval(f, &frame, op)?;
                    phi_writes.push((*idx, v));
                } else {
                    break;
                }
            }
            for (idx, v) in phi_writes {
                frame.vals[idx.0 as usize] = Some(v);
                self.tick(&InstKind::Phi { incoming: vec![] })?;
            }
            // Straight-line execution of the remainder.
            let n_phis = blk
                .insts
                .iter()
                .take_while(|i| matches!(f.inst(**i).kind, InstKind::Phi { .. }))
                .count();
            for idx in &blk.insts[n_phis..] {
                let inst = f.inst(*idx);
                self.tick(&inst.kind)?;
                let v = self.exec_inst(f, &mut frame, *idx)?;
                frame.vals[idx.0 as usize] = v;
            }
            match &blk.term {
                Terminator::Br { dest } => {
                    prev_block = block;
                    block = *dest;
                }
                Terminator::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let c = self.eval(f, &frame, cond)?.bits() & 1;
                    prev_block = block;
                    block = if c != 0 { *if_true } else { *if_false };
                }
                Terminator::Ret { val } => {
                    let out = match val {
                        Some(v) => Some(self.eval(f, &frame, v)?),
                        None => None,
                    };
                    self.stack_next = saved_stack;
                    return Ok(out);
                }
                Terminator::Unreachable => {
                    return Err(ExecError::Trap(format!(
                        "reached unreachable in @{}",
                        f.name
                    )))
                }
            }
        }
    }

    fn tick(&mut self, kind: &InstKind) -> Result<(), ExecError> {
        if self.steps_left == 0 {
            return Err(ExecError::StepLimit);
        }
        self.steps_left -= 1;
        self.stats.insts += 1;
        self.stats.cycles += Self::cost_of(kind);
        match kind {
            InstKind::Load { .. } => self.stats.loads += 1,
            InstKind::Store { .. } => self.stats.stores += 1,
            InstKind::Fence { kind } => match kind {
                FenceKind::Frm => self.stats.fences.0 += 1,
                FenceKind::Fww => self.stats.fences.1 += 1,
                FenceKind::Fsc => self.stats.fences.2 += 1,
            },
            InstKind::AtomicRmw { .. } | InstKind::CmpXchg { .. } => self.stats.rmws += 1,
            _ => {}
        }
        Ok(())
    }

    fn eval(&mut self, f: &Function, frame: &Frame, op: &Operand) -> Result<Val, ExecError> {
        Ok(match op {
            Operand::Inst(id) => frame.vals[id.0 as usize].ok_or_else(|| {
                ExecError::Trap(format!("use of unevaluated %{} in @{}", id.0, f.name))
            })?,
            Operand::Param(i) => *frame.args.get(*i as usize).ok_or_else(|| {
                ExecError::Trap(format!(
                    "@{} called with {} args but uses parameter {}",
                    f.name,
                    frame.args.len(),
                    i
                ))
            })?,
            Operand::ConstInt { val, .. } => Val::B64(*val),
            Operand::ConstF32(b) => Val::B64(u64::from(*b)),
            Operand::ConstF64(b) => Val::B64(*b),
            Operand::Global(g) => Val::B64(self.module.global(*g).addr),
            Operand::Func(fi) => Val::B64(FUNC_ADDR_BASE + 16 * u64::from(fi.0)),
            Operand::Undef(ty) => {
                if ty.is_vector() {
                    Val::B128([0; 16])
                } else {
                    Val::B64(0)
                }
            }
        })
    }

    fn load_typed(&mut self, addr: u64, ty: Ty) -> Val {
        match ty {
            Ty::V2F64 | Ty::V4F32 | Ty::V2I64 | Ty::V4I32 => Val::B128(self.mem.read(addr, 16)),
            t => {
                let len = t.size() as usize;
                let raw = self.mem.read(addr, len);
                let mut b = [0u8; 8];
                b[..len].copy_from_slice(&raw[..len]);
                Val::B64(u64::from_le_bytes(b))
            }
        }
    }

    fn store_typed(&mut self, addr: u64, ty: Ty, v: Val) {
        match v {
            Val::B128(bytes) => self.mem.write(addr, &bytes),
            Val::B64(bits) => {
                let len = ty.size() as usize;
                self.mem.write(addr, &bits.to_le_bytes()[..len]);
            }
        }
    }

    fn exec_inst(
        &mut self,
        f: &Function,
        frame: &mut Frame,
        id: InstId,
    ) -> Result<Option<Val>, ExecError> {
        let inst = f.inst(id).clone();
        let ty = inst.ty;
        Ok(match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                let l = self.eval(f, frame, lhs)?;
                let r = self.eval(f, frame, rhs)?;
                Some(eval_bin(*op, ty, l, r)?)
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let lty = self.module.operand_ty(f, lhs);
                let l = self.eval(f, frame, lhs)?.bits();
                let r = self.eval(f, frame, rhs)?.bits();
                Some(Val::B64(u64::from(eval_icmp(*pred, lty, l, r))))
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let lty = self.module.operand_ty(f, lhs);
                let (a, b) = if lty == Ty::F32 {
                    (
                        f64::from(self.eval(f, frame, lhs)?.f32()),
                        f64::from(self.eval(f, frame, rhs)?.f32()),
                    )
                } else {
                    (
                        self.eval(f, frame, lhs)?.f64(),
                        self.eval(f, frame, rhs)?.f64(),
                    )
                };
                Some(Val::B64(u64::from(eval_fcmp(*pred, a, b))))
            }
            InstKind::Load { ptr, .. } => {
                let addr = self.eval(f, frame, ptr)?.bits();
                Some(self.load_typed(addr, ty))
            }
            InstKind::Store { ptr, val, .. } => {
                let addr = self.eval(f, frame, ptr)?.bits();
                let vty = self.module.operand_ty(f, val);
                let v = self.eval(f, frame, val)?;
                self.store_typed(addr, vty, v);
                None
            }
            InstKind::Fence { .. } => None,
            InstKind::AtomicRmw { op, ptr, val } => {
                let addr = self.eval(f, frame, ptr)?.bits();
                let v = self.eval(f, frame, val)?.bits();
                let old = self.load_typed(addr, ty).bits();
                let new = match op {
                    RmwOp::Xchg => v,
                    RmwOp::Add => old.wrapping_add(v),
                    RmwOp::Sub => old.wrapping_sub(v),
                    RmwOp::And => old & v,
                    RmwOp::Or => old | v,
                    RmwOp::Xor => old ^ v,
                };
                self.store_typed(addr, ty, Val::B64(new));
                Some(Val::B64(mask_ty(old, ty)))
            }
            InstKind::CmpXchg { ptr, expected, new } => {
                let addr = self.eval(f, frame, ptr)?.bits();
                let exp = mask_ty(self.eval(f, frame, expected)?.bits(), ty);
                let newv = self.eval(f, frame, new)?.bits();
                let old = mask_ty(self.load_typed(addr, ty).bits(), ty);
                if old == exp {
                    self.store_typed(addr, ty, Val::B64(newv));
                }
                Some(Val::B64(old))
            }
            InstKind::Alloca { size } => {
                frame.alloca_next -= (*size + 15) & !15;
                Some(Val::B64(frame.alloca_next))
            }
            InstKind::Gep {
                base,
                offset,
                elem_size,
            } => {
                let b = self.eval(f, frame, base)?.bits();
                let o = self.eval(f, frame, offset)?.bits();
                Some(Val::B64(b.wrapping_add(o.wrapping_mul(*elem_size))))
            }
            InstKind::Cast { op, val } => {
                let vty = self.module.operand_ty(f, val);
                let v = self.eval(f, frame, val)?;
                Some(eval_cast(*op, vty, ty, v))
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                let c = self.eval(f, frame, cond)?.bits() & 1;
                Some(if c != 0 {
                    self.eval(f, frame, if_true)?
                } else {
                    self.eval(f, frame, if_false)?
                })
            }
            InstKind::Call { callee, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(f, frame, a)?);
                }
                match callee {
                    Callee::Func(fi) => self.call(*fi, argv)?,
                    Callee::Extern(e) => {
                        let name = self.module.ext(*e).name.clone();
                        self.call_extern(&name, &argv)?
                    }
                    Callee::Indirect(target) => {
                        let addr = self.eval(f, frame, target)?.bits();
                        let fi = self.resolve_func(addr)?;
                        self.call(fi, argv)?
                    }
                }
            }
            InstKind::Phi { .. } => {
                return Err(ExecError::Trap("phi executed out of prefix".to_string()))
            }
            InstKind::ExtractElement { vec, idx } => {
                let v = self.eval(f, frame, vec)?.v128();
                let lane = ty.size() as usize;
                let off = *idx as usize * lane;
                let mut b = [0u8; 8];
                b[..lane].copy_from_slice(&v[off..off + lane]);
                Some(Val::B64(u64::from_le_bytes(b)))
            }
            InstKind::InsertElement { vec, elt, idx } => {
                let mut v = match self.eval(f, frame, vec)? {
                    Val::B128(b) => b,
                    Val::B64(_) => [0u8; 16],
                };
                let ety = self.module.operand_ty(f, elt);
                let lane = ety.size() as usize;
                let e = self.eval(f, frame, elt)?.bits();
                let off = *idx as usize * lane;
                v[off..off + lane].copy_from_slice(&e.to_le_bytes()[..lane]);
                Some(Val::B128(v))
            }
        })
    }

    fn resolve_func(&self, addr: u64) -> Result<FuncId, ExecError> {
        if addr >= FUNC_ADDR_BASE {
            let idx = (addr - FUNC_ADDR_BASE) / 16;
            if (idx as usize) < self.module.funcs.len() && (addr - FUNC_ADDR_BASE) % 16 == 0 {
                return Ok(FuncId(idx as u32));
            }
        }
        Err(ExecError::BadCall(format!("no function at {addr:#x}")))
    }

    fn call_extern(&mut self, name: &str, args: &[Val]) -> Result<Option<Val>, ExecError> {
        match name {
            "malloc" | "valloc" => {
                let size = args[0].bits();
                let addr = self.heap_next;
                self.heap_next += (size + 63) & !63;
                Ok(Some(Val::B64(addr)))
            }
            "calloc" => {
                let size = args[0].bits() * args[1].bits();
                let addr = self.heap_next;
                self.heap_next += (size + 63) & !63;
                Ok(Some(Val::B64(addr)))
            }
            "free" => Ok(None),
            "memset" => {
                let (dst, byte, n) = (args[0].bits(), args[1].bits() as u8, args[2].bits());
                let buf = vec![byte; n as usize];
                self.mem.write(dst, &buf);
                self.stats.cycles += n / 8;
                Ok(Some(Val::B64(dst)))
            }
            "memcpy" => {
                let (dst, src, n) = (args[0].bits(), args[1].bits(), args[2].bits());
                let mut buf = vec![0u8; n as usize];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = self.mem.read(src + i as u64, 1)[0];
                }
                self.mem.write(dst, &buf);
                self.stats.cycles += n / 4;
                Ok(Some(Val::B64(dst)))
            }
            "strlen" => {
                let s = self.mem.read_cstr(args[0].bits());
                Ok(Some(Val::B64(s.len() as u64)))
            }
            "printf" => {
                let fmt = self.mem.read_cstr(args[0].bits());
                self.output.push_str(&format_c(&fmt, &args[1..]));
                Ok(Some(Val::B64(0)))
            }
            "puts" => {
                let s = self.mem.read_cstr(args[0].bits());
                self.output.push_str(&s);
                self.output.push('\n');
                Ok(Some(Val::B64(0)))
            }
            "exit" | "abort" => Err(ExecError::Trap(format!("{name}() called"))),
            "sqrt" => Ok(Some(Val::B64(args[0].f64().sqrt().to_bits()))),
            "pthread_create" => {
                // int pthread_create(pthread_t *t, attr, void *(*fn)(void*), void *arg)
                let tid_ptr = args[0].bits();
                let fn_addr = args[2].bits();
                let arg = args[3];
                let fi = self.resolve_func(fn_addr)?;
                let tid = 1 + self.thread_cycles.len() as u64;
                self.mem.write_u64(tid_ptr, tid);
                // Run the thread body now (sequential fork–join semantics),
                // attributing its cycles to the child bucket.
                let before = self.stats.cycles;
                let child_stack = self.stack_next;
                self.stack_next = STACK_TOP - tid * STACK_SIZE;
                let _ret = self.call(fi, vec![arg])?;
                self.stack_next = child_stack;
                self.thread_cycles.push(self.stats.cycles - before);
                Ok(Some(Val::B64(0)))
            }
            "pthread_join" => Ok(Some(Val::B64(0))),
            "pthread_exit" => Ok(None),
            "pthread_mutex_init" | "pthread_mutex_destroy" => Ok(Some(Val::B64(0))),
            "pthread_mutex_lock" => {
                let m = args[0].bits();
                let locked = self.mutexes.entry(m).or_insert(false);
                if *locked {
                    return Err(ExecError::Trap(format!(
                        "deadlock: mutex {m:#x} locked twice under sequential fork-join"
                    )));
                }
                *locked = true;
                Ok(Some(Val::B64(0)))
            }
            "pthread_mutex_unlock" => {
                self.mutexes.insert(args[0].bits(), false);
                Ok(Some(Val::B64(0)))
            }
            "sysconf" => Ok(Some(Val::B64(4))), // _SC_NPROCESSORS_ONLN → 4 cores
            other => Err(ExecError::BadCall(format!("unknown extern @{other}"))),
        }
    }
}

struct Frame {
    vals: Vec<Option<Val>>,
    args: Vec<Val>,
    #[allow(dead_code)]
    alloca_base: u64,
    alloca_next: u64,
}

fn mask_ty(v: u64, ty: Ty) -> u64 {
    match ty.int_bits() {
        Some(64) | None => v,
        Some(b) => v & ((1u64 << b) - 1),
    }
}

fn sext(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

fn eval_bin(op: BinOp, ty: Ty, l: Val, r: Val) -> Result<Val, ExecError> {
    if ty.is_vector() {
        return eval_bin_vector(op, ty, l, r);
    }
    if op.is_float() {
        let v = if ty == Ty::F32 {
            let (a, b) = (l.f32(), r.f32());
            let x = match op {
                BinOp::FAdd => a + b,
                BinOp::FSub => a - b,
                BinOp::FMul => a * b,
                BinOp::FDiv => a / b,
                BinOp::FMin => a.min(b),
                BinOp::FMax => a.max(b),
                _ => unreachable!(),
            };
            u64::from(x.to_bits())
        } else {
            let (a, b) = (l.f64(), r.f64());
            let x = match op {
                BinOp::FAdd => a + b,
                BinOp::FSub => a - b,
                BinOp::FMul => a * b,
                BinOp::FDiv => a / b,
                BinOp::FMin => a.min(b),
                BinOp::FMax => a.max(b),
                _ => unreachable!(),
            };
            x.to_bits()
        };
        return Ok(Val::B64(v));
    }
    let bits = ty.int_bits().unwrap_or(64);
    let (a, b) = (mask_ty(l.bits(), ty), mask_ty(r.bits(), ty));
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => {
            if b == 0 {
                return Err(ExecError::Trap("division by zero".to_string()));
            }
            a / b
        }
        BinOp::SDiv => {
            if b == 0 {
                return Err(ExecError::Trap("division by zero".to_string()));
            }
            (sext(a, bits).wrapping_div(sext(b, bits))) as u64
        }
        BinOp::URem => {
            if b == 0 {
                return Err(ExecError::Trap("division by zero".to_string()));
            }
            a % b
        }
        BinOp::SRem => {
            if b == 0 {
                return Err(ExecError::Trap("division by zero".to_string()));
            }
            (sext(a, bits).wrapping_rem(sext(b, bits))) as u64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 % bits),
        BinOp::LShr => a.wrapping_shr(b as u32 % bits),
        BinOp::AShr => (sext(a, bits) >> (b as u32 % bits)) as u64,
        _ => unreachable!(),
    };
    Ok(Val::B64(mask_ty(v, ty)))
}

fn eval_bin_vector(op: BinOp, ty: Ty, l: Val, r: Val) -> Result<Val, ExecError> {
    let (a, b) = (l.v128(), r.v128());
    let mut out = [0u8; 16];
    match ty {
        Ty::V2F64 => {
            for i in 0..2 {
                let x = f64::from_le_bytes(a[i * 8..i * 8 + 8].try_into().unwrap());
                let y = f64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
                let z = match op {
                    BinOp::FAdd => x + y,
                    BinOp::FSub => x - y,
                    BinOp::FMul => x * y,
                    BinOp::FDiv => x / y,
                    BinOp::FMin => x.min(y),
                    BinOp::FMax => x.max(y),
                    BinOp::Xor => f64::from_bits(x.to_bits() ^ y.to_bits()),
                    _ => return Err(ExecError::Trap(format!("vector op {op:?}"))),
                };
                out[i * 8..i * 8 + 8].copy_from_slice(&z.to_le_bytes());
            }
        }
        Ty::V4F32 => {
            for i in 0..4 {
                let x = f32::from_le_bytes(a[i * 4..i * 4 + 4].try_into().unwrap());
                let y = f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
                let z = match op {
                    BinOp::FAdd => x + y,
                    BinOp::FSub => x - y,
                    BinOp::FMul => x * y,
                    BinOp::FDiv => x / y,
                    BinOp::FMin => x.min(y),
                    BinOp::FMax => x.max(y),
                    BinOp::Xor => f32::from_bits(x.to_bits() ^ y.to_bits()),
                    _ => return Err(ExecError::Trap(format!("vector op {op:?}"))),
                };
                out[i * 4..i * 4 + 4].copy_from_slice(&z.to_le_bytes());
            }
        }
        Ty::V2I64 | Ty::V4I32 => {
            for i in 0..16 {
                out[i] = match op {
                    BinOp::And => a[i] & b[i],
                    BinOp::Or => a[i] | b[i],
                    BinOp::Xor => a[i] ^ b[i],
                    _ => return Err(ExecError::Trap(format!("vector int op {op:?}"))),
                };
            }
        }
        _ => unreachable!(),
    }
    Ok(Val::B128(out))
}

fn eval_icmp(pred: IPred, ty: Ty, l: u64, r: u64) -> bool {
    let bits = ty.int_bits().unwrap_or(64);
    let (a, b) = (mask_ty(l, ty), mask_ty(r, ty));
    let (sa, sb) = (sext(a, bits), sext(b, bits));
    match pred {
        IPred::Eq => a == b,
        IPred::Ne => a != b,
        IPred::Ult => a < b,
        IPred::Ule => a <= b,
        IPred::Ugt => a > b,
        IPred::Uge => a >= b,
        IPred::Slt => sa < sb,
        IPred::Sle => sa <= sb,
        IPred::Sgt => sa > sb,
        IPred::Sge => sa >= sb,
    }
}

fn eval_fcmp(pred: FPred, a: f64, b: f64) -> bool {
    let unordered = a.is_nan() || b.is_nan();
    match pred {
        FPred::Oeq => !unordered && a == b,
        FPred::One => !unordered && a != b,
        FPred::Olt => !unordered && a < b,
        FPred::Ole => !unordered && a <= b,
        FPred::Ogt => !unordered && a > b,
        FPred::Oge => !unordered && a >= b,
        FPred::Une => unordered || a != b,
        FPred::Uno => unordered,
        FPred::Ord => !unordered,
    }
}

fn eval_cast(op: CastOp, from: Ty, to: Ty, v: Val) -> Val {
    match op {
        CastOp::Trunc => Val::B64(mask_ty(v.bits(), to)),
        CastOp::ZExt => Val::B64(mask_ty(v.bits(), from)),
        CastOp::SExt => {
            let bits = from.int_bits().unwrap_or(64);
            Val::B64(mask_ty(sext(mask_ty(v.bits(), from), bits) as u64, to))
        }
        CastOp::FpToSi => {
            let x = if from == Ty::F32 {
                f64::from(v.f32())
            } else {
                v.f64()
            };
            Val::B64(mask_ty((x as i64) as u64, to))
        }
        CastOp::SiToFp => {
            let bits = from.int_bits().unwrap_or(64);
            let x = sext(mask_ty(v.bits(), from), bits) as f64;
            if to == Ty::F32 {
                Val::B64(u64::from((x as f32).to_bits()))
            } else {
                Val::B64(x.to_bits())
            }
        }
        CastOp::FpExt => Val::B64(f64::from(v.f32()).to_bits()),
        CastOp::FpTrunc => Val::B64(u64::from((v.f64() as f32).to_bits())),
        CastOp::BitCast | CastOp::IntToPtr | CastOp::PtrToInt => {
            // Pure reinterpretation; handle 64↔128 widening for SSE casts.
            match (v, to.is_vector()) {
                (Val::B64(b), true) => {
                    let mut out = [0u8; 16];
                    out[..8].copy_from_slice(&b.to_le_bytes());
                    Val::B128(out)
                }
                (Val::B128(b), false) => Val::B64(u64::from_le_bytes(b[..8].try_into().unwrap())),
                (v, _) => v,
            }
        }
    }
}

/// Tiny C `printf` formatter supporting `%d %ld %lu %u %f %g %s %c %x %%`.
fn format_c(fmt: &str, args: &[Val]) -> String {
    let mut out = String::new();
    let mut it = fmt.chars().peekable();
    let mut ai = 0usize;
    let next = |ai: &mut usize| {
        let v = args.get(*ai).copied().unwrap_or(Val::B64(0));
        *ai += 1;
        v
    };
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Skip width/precision/length specifiers.
        let mut spec = String::new();
        while let Some(&n) = it.peek() {
            if n.is_ascii_digit() || n == '.' || n == 'l' || n == 'z' || n == '-' {
                spec.push(n);
                it.next();
            } else {
                break;
            }
        }
        match it.next() {
            Some('d') | Some('i') => out.push_str(&format!("{}", next(&mut ai).bits() as i64)),
            Some('u') => out.push_str(&format!("{}", next(&mut ai).bits())),
            Some('x') => out.push_str(&format!("{:x}", next(&mut ai).bits())),
            Some('f') | Some('g') | Some('e') => {
                out.push_str(&format!("{:.6}", next(&mut ai).f64()))
            }
            Some('c') => out.push((next(&mut ai).bits() as u8) as char),
            Some('s') => out.push_str("<str>"),
            Some('%') => out.push('%'),
            Some(other) => out.push(other),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{InstKind, Operand, Ordering, Terminator};
    use crate::types::Pointee;

    fn run_func(f: Function, args: &[Val]) -> RunResult {
        let mut m = Module::new();
        let id = m.add_func(f);
        let mut machine = Machine::new(&m);
        machine.run(id, args).unwrap()
    }

    #[test]
    fn arithmetic() {
        let mut f = Function::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let e = f.entry();
        let a = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::Param(1),
            },
        );
        let b = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(a),
                rhs: Operand::i64(5),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(b)),
            },
        );
        let r = run_func(f, &[Val::B64(6), Val::B64(7)]);
        assert_eq!(r.ret, Some(Val::B64(47)));
        assert_eq!(r.stats.insts, 2);
    }

    #[test]
    fn memory_roundtrip() {
        let mut f = Function::new("f", vec![], Ty::I32);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I32), InstKind::Alloca { size: 4 });
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i32(-3),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I32,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        let r = run_func(f, &[]);
        assert_eq!(r.ret, Some(Val::B64(0xFFFF_FFFD)));
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 1);
    }

    #[test]
    fn loop_with_phi() {
        // sum 0..n via phi
        let mut f = Function::new("sum", vec![Ty::I64], Ty::I64);
        let entry = f.entry();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.set_term(entry, Terminator::Br { dest: header });
        let phi_i = f.push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
        let phi_s = f.push(header, Ty::I64, InstKind::Phi { incoming: vec![] });
        let cond = f.push(
            header,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Ult,
                lhs: Operand::Inst(phi_i),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            header,
            Terminator::CondBr {
                cond: Operand::Inst(cond),
                if_true: body,
                if_false: exit,
            },
        );
        let s2 = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(phi_s),
                rhs: Operand::Inst(phi_i),
            },
        );
        let i2 = f.push(
            body,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(phi_i),
                rhs: Operand::i64(1),
            },
        );
        f.set_term(body, Terminator::Br { dest: header });
        f.inst_mut(phi_i).kind = InstKind::Phi {
            incoming: vec![(entry, Operand::i64(0)), (body, Operand::Inst(i2))],
        };
        f.inst_mut(phi_s).kind = InstKind::Phi {
            incoming: vec![(entry, Operand::i64(0)), (body, Operand::Inst(s2))],
        };
        f.set_term(
            exit,
            Terminator::Ret {
                val: Some(Operand::Inst(phi_s)),
            },
        );

        let r = run_func(f, &[Val::B64(10)]);
        assert_eq!(r.ret, Some(Val::B64(45)));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut f = Function::new("f", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let d = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::SDiv,
                lhs: Operand::i64(1),
                rhs: Operand::Param(0),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(d)),
            },
        );
        let mut m = Module::new();
        let id = m.add_func(f);
        let mut machine = Machine::new(&m);
        let err = machine.run(id, &[Val::B64(0)]).unwrap_err();
        assert!(matches!(err, ExecError::Trap(_)));
    }

    #[test]
    fn fences_are_counted_and_costed() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Frm,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fsc,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        let r = run_func(f, &[]);
        assert_eq!(r.stats.fences, (1, 1, 1));
        assert!(r.stats.cycles >= 40 + 16 + 16);
    }

    #[test]
    fn step_limit_enforced() {
        let mut f = Function::new("spin", vec![], Ty::Void);
        let e = f.entry();
        let l = f.add_block();
        f.set_term(e, Terminator::Br { dest: l });
        f.push(
            l,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::i64(0),
                rhs: Operand::i64(0),
            },
        );
        f.set_term(l, Terminator::Br { dest: l });
        let mut m = Module::new();
        let id = m.add_func(f);
        let mut machine = Machine::new(&m);
        machine.set_step_limit(1000);
        assert_eq!(machine.run(id, &[]).unwrap_err(), ExecError::StepLimit);
    }

    #[test]
    fn atomics() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let slot = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(10),
                order: Ordering::NotAtomic,
            },
        );
        let old = f.push(
            e,
            Ty::I64,
            InstKind::AtomicRmw {
                op: RmwOp::Add,
                ptr: Operand::Inst(slot),
                val: Operand::i64(5),
            },
        );
        let old2 = f.push(
            e,
            Ty::I64,
            InstKind::CmpXchg {
                ptr: Operand::Inst(slot),
                expected: Operand::i64(15),
                new: Operand::i64(100),
            },
        );
        let s = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(old),
                rhs: Operand::Inst(old2),
            },
        );
        let cur = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(slot),
                order: Ordering::SeqCst,
            },
        );
        let t = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(s),
                rhs: Operand::Inst(cur),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(t)),
            },
        );
        let r = run_func(f, &[]);
        // old=10, old2=15, cur=100 → 125
        assert_eq!(r.ret, Some(Val::B64(125)));
        assert_eq!(r.stats.rmws, 2);
    }

    #[test]
    fn extern_malloc_and_threads() {
        // worker(arg): *arg += 1
        let mut m = Module::new();
        let mut w = Function::new("worker", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = w.entry();
        let l = w.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        let a = w.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(l),
                rhs: Operand::i64(1),
            },
        );
        w.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Inst(a),
                order: Ordering::NotAtomic,
            },
        );
        w.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::i64(0)),
            },
        );
        let worker = m.add_func(w);

        let pc = m.declare_extern(crate::func::ExternDecl {
            name: "pthread_create".into(),
            params: vec![Ty::I64, Ty::I64, Ty::I64, Ty::I64],
            ret: Ty::I32,
            variadic: false,
        });
        let malloc = m.declare_extern(crate::func::ExternDecl {
            name: "malloc".into(),
            params: vec![Ty::I64],
            ret: Ty::Ptr(Pointee::I8),
            variadic: false,
        });

        let mut main = Function::new("main", vec![], Ty::I64);
        let e = main.entry();
        let buf = main.push(
            e,
            Ty::Ptr(Pointee::I8),
            InstKind::Call {
                callee: Callee::Extern(malloc),
                args: vec![Operand::i64(16)],
            },
        );
        main.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(buf),
                val: Operand::i64(41),
                order: Ordering::NotAtomic,
            },
        );
        let tslot = main.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        let tptr = main.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(tslot),
            },
        );
        let bufi = main.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(buf),
            },
        );
        let fnptr = main.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Func(worker),
            },
        );
        main.push(
            e,
            Ty::I32,
            InstKind::Call {
                callee: Callee::Extern(pc),
                args: vec![
                    Operand::Inst(tptr),
                    Operand::i64(0),
                    Operand::Inst(fnptr),
                    Operand::Inst(bufi),
                ],
            },
        );
        let out = main.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(buf),
                order: Ordering::NotAtomic,
            },
        );
        main.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(out)),
            },
        );
        let main_id = m.add_func(main);

        let mut machine = Machine::new(&m);
        let r = machine.run(main_id, &[]).unwrap();
        assert_eq!(r.ret, Some(Val::B64(42)));
        assert_eq!(r.thread_cycles.len(), 1);
        assert!(r.critical_path_cycles() <= r.stats.cycles);
    }

    #[test]
    fn printf_capture() {
        let mut m = Module::new();
        let g = m.add_global(crate::func::GlobalVar {
            name: "fmt".into(),
            size: 8,
            init: b"n=%d\n\0".to_vec(),
            addr: 0x60_0000,
        });
        let pf = m.declare_extern(crate::func::ExternDecl {
            name: "printf".into(),
            params: vec![Ty::Ptr(Pointee::I8)],
            ret: Ty::I32,
            variadic: true,
        });
        let mut f = Function::new("main", vec![], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::I32,
            InstKind::Call {
                callee: Callee::Extern(pf),
                args: vec![Operand::Global(g), Operand::i64(7)],
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        let id = m.add_func(f);
        let mut machine = Machine::new(&m);
        let r = machine.run(id, &[]).unwrap();
        assert_eq!(r.output, "n=7\n");
    }
}
