//! Litmus programs, events, and exhaustive execution enumeration (§6.1).
//!
//! A [`Program`] is a set of initialising writes plus straight-line threads
//! of loads, stores, RMWs and fences. [`enumerate_executions`] produces
//! every candidate execution — all reads-from choices and all coherence
//! orders — which a model then filters for consistency.

use crate::rel::Rel;
use std::collections::BTreeMap;

/// A shared memory location.
pub type Loc = u8;
/// A thread-local register name.
pub type Reg = u8;

/// Fences across all three ISAs/models (each model accepts its own subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FenceTy {
    /// x86 `MFENCE`.
    Mfence,
    /// LIMM `Frm`.
    Frm,
    /// LIMM `Fww`.
    Fww,
    /// LIMM `Fsc`.
    Fsc,
    /// Arm `DMB FF` (full).
    DmbFf,
    /// Arm `DMB LD`.
    DmbLd,
    /// Arm `DMB ST`.
    DmbSt,
}

/// One operation in a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load `x` into register `r`.
    Ld {
        /// Destination register.
        r: Reg,
        /// Location.
        x: Loc,
    },
    /// Store constant `v` to `x`.
    St {
        /// Location.
        x: Loc,
        /// Stored value.
        v: u64,
    },
    /// Atomic compare-exchange on `x`: if the value read equals `expect`,
    /// write `new` (success); otherwise only the read happens. The value
    /// read lands in register `r`.
    Rmw {
        /// Destination register for the read value.
        r: Reg,
        /// Location.
        x: Loc,
        /// Expected value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
    /// A fence.
    Fence(FenceTy),
    /// Arm load-acquire (`ldar`, Appendix A): orders this read before every
    /// po-later access.
    LdA {
        /// Destination register.
        r: Reg,
        /// Location.
        x: Loc,
    },
    /// Arm store-release (`stlr`, Appendix A): orders every po-earlier
    /// access before this write.
    StR {
        /// Location.
        x: Loc,
        /// Stored value.
        v: u64,
    },
    /// An RMW implemented with acquire/release exclusives
    /// (`ldaxr`/`stlxr`) instead of surrounding full barriers — the
    /// alternative lowering the Appendix A ablation studies.
    RmwAr {
        /// Destination register for the read value.
        r: Reg,
        /// Location.
        x: Loc,
        /// Expected value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
}

/// A litmus program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Number of shared locations (initialised to zero).
    pub locs: u8,
    /// Threads of straight-line operations.
    pub threads: Vec<Vec<Op>>,
}

/// An event label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lab {
    /// Read of `x` returning `v`; `sc` marks an RMW-origin (seq_cst) read,
    /// `acq` a load-acquire (Appendix A).
    R {
        /// Location.
        x: Loc,
        /// Value read.
        v: u64,
        /// From an RMW (seq_cst access).
        sc: bool,
        /// Acquire semantics (`ldar`/`ldaxr`).
        acq: bool,
    },
    /// Write of `v` to `x`; `sc` marks an RMW-origin write, `rel` a
    /// store-release (Appendix A).
    W {
        /// Location.
        x: Loc,
        /// Value written.
        v: u64,
        /// From an RMW.
        sc: bool,
        /// Release semantics (`stlr`/`stlxr`).
        rel: bool,
    },
    /// Fence.
    F(FenceTy),
}

impl Lab {
    /// Location accessed, if a memory event.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            Lab::R { x, .. } | Lab::W { x, .. } => Some(*x),
            Lab::F(_) => None,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, Lab::R { .. })
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Lab::W { .. })
    }
}

/// An event: `⟨id, tid, lab⟩`. Thread id 0 is the initialisation pseudo-
/// thread; program threads are numbered from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Index into the execution's event vector.
    pub id: usize,
    /// Thread id (0 = initialisation).
    pub tid: usize,
    /// Label.
    pub lab: Lab,
}

/// A candidate execution: events plus the `po`, `rf`, `co`, `rmw` relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// Events (initialisation writes first).
    pub events: Vec<Event>,
    /// Program order (strict, total per thread; init writes precede all).
    pub po: Rel,
    /// Reads-from.
    pub rf: Rel,
    /// Coherence order (strict total order per location).
    pub co: Rel,
    /// RMW pairs.
    pub rmw: Rel,
    /// Final register values, keyed by `(thread, register)`.
    pub regs: BTreeMap<(usize, Reg), u64>,
}

impl Execution {
    /// `fr ≜ rf⁻¹ ; co`
    pub fn fr(&self) -> Rel {
        self.rf.inverse().compose(&self.co)
    }

    /// Restriction of a relation to same-location event pairs.
    pub fn same_loc(&self, r: &Rel) -> Rel {
        let mut out = Rel::new(self.events.len());
        for (a, b) in r.pairs() {
            if let (Some(x), Some(y)) = (self.events[a].lab.loc(), self.events[b].lab.loc()) {
                if x == y {
                    out.add(a, b);
                }
            }
        }
        out
    }

    /// External part of a relation (pairs not related by po either way).
    pub fn external(&self, r: &Rel) -> Rel {
        let mut out = Rel::new(self.events.len());
        for (a, b) in r.pairs() {
            if !self.po.has(a, b) && !self.po.has(b, a) {
                out.add(a, b);
            }
        }
        out
    }

    /// The behavior (paper §6.1): final value of each location, i.e. the
    /// value of the co-maximal write per location.
    pub fn behavior(&self) -> BTreeMap<Loc, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if let Lab::W { x, v, .. } = e.lab {
                let is_max = !self.co.pairs().iter().any(|(a, _)| *a == e.id);
                if is_max {
                    out.insert(x, v);
                }
            }
        }
        out
    }
}

/// The observable outcome of an execution: final registers + final memory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Outcome {
    /// Final register values per `(thread, register)`.
    pub regs: Vec<((usize, Reg), u64)>,
    /// Final memory values per location.
    pub mem: Vec<(Loc, u64)>,
}

impl Outcome {
    /// Builds the outcome of an execution.
    pub fn of(x: &Execution) -> Outcome {
        Outcome {
            regs: x.regs.iter().map(|(k, v)| (*k, *v)).collect(),
            mem: x.behavior().into_iter().collect(),
        }
    }
}

/// Enumerates every candidate execution of `prog`: all combinations of RMW
/// success/failure, reads-from choices, and per-location coherence orders.
/// Apply a model's consistency check to filter.
pub fn enumerate_executions(prog: &Program) -> Vec<Execution> {
    let mut out = Vec::new();
    for success_bits in 0..(1u32 << count_rmws(prog)) {
        let skel = build_skeleton(prog, success_bits);
        enumerate_skeleton(&skel, &[], &mut out);
    }
    out
}

/// One independent slice of a program's candidate-execution space: an RMW
/// success/failure assignment plus (when the program has reads) a pinned
/// reads-from choice for the *first* read. Every candidate execution
/// belongs to exactly one partition, and enumerating the partitions in
/// [`execution_partitions`] order concatenates to exactly the
/// [`enumerate_executions`] sequence — which is what lets a worker pool
/// split one program's enumeration without changing a single byte of
/// downstream output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPartition {
    /// RMW success/failure assignment (bit per RMW, in program order).
    success_bits: u32,
    /// Pinned rf choice (event id of the write) for the first read;
    /// `None` when the program has no reads under this RMW assignment.
    first_rf: Option<usize>,
}

/// Splits `prog`'s candidate-execution space into independently
/// enumerable partitions, in serial enumeration order: RMW assignments
/// ascending, then the first read's candidate writes in `writes_of`
/// (event id) order.
///
/// # Panics
///
/// Panics if the program has more than 8 RMWs (the enumeration bound).
pub fn execution_partitions(prog: &Program) -> Vec<ExecPartition> {
    let mut parts = Vec::new();
    for success_bits in 0..(1u32 << count_rmws(prog)) {
        let skel = build_skeleton(prog, success_bits);
        match skel.reads.first() {
            None => parts.push(ExecPartition {
                success_bits,
                first_rf: None,
            }),
            Some(&r) => {
                let Lab::R { x, .. } = skel.events[r].lab else {
                    unreachable!()
                };
                for w in writes_of(&skel.events, x) {
                    parts.push(ExecPartition {
                        success_bits,
                        first_rf: Some(w),
                    });
                }
            }
        }
    }
    parts
}

/// Enumerates the candidate executions of one partition, in the same
/// relative order [`enumerate_executions`] emits them. A partition can be
/// empty — its pinned rf choice may violate every RMW constraint.
pub fn enumerate_partition(prog: &Program, part: ExecPartition) -> Vec<Execution> {
    let skel = build_skeleton(prog, part.success_bits);
    let mut out = Vec::new();
    match part.first_rf {
        None => enumerate_skeleton(&skel, &[], &mut out),
        Some(w) => enumerate_skeleton(&skel, &[w], &mut out),
    }
    out
}

/// [`enumerate_executions`] with the partitions fanned out over the
/// process-wide work-stealing pool ([`enumerate_executions_on`] with
/// [`Pool::shared`]) — same executions, same order, for every `jobs`
/// value: the partition list follows serial enumeration order and the
/// per-partition results are concatenated by partition index.
///
/// [`Pool::shared`]: lasagne::pipeline::pool::Pool::shared
pub fn enumerate_executions_par(prog: &Program, jobs: usize) -> Vec<Execution> {
    enumerate_executions_on(lasagne::pipeline::pool::Pool::shared(), prog, jobs)
}

/// [`enumerate_executions_par`] on an explicit work-stealing pool. The
/// litmus sweeps call this from inside pipeline work items; submitting to
/// the same pool (rather than spawning scoped threads) keeps one set of
/// worker threads busy across the nesting — a worker that hits this fan
/// out pushes the partitions onto its own deque and idle siblings steal
/// them.
pub fn enumerate_executions_on(
    pool: &lasagne::pipeline::pool::Pool,
    prog: &Program,
    jobs: usize,
) -> Vec<Execution> {
    let parts = execution_partitions(prog);
    pool.par_map(jobs, parts, |_, p| enumerate_partition(prog, p))
        .into_iter()
        .flatten()
        .collect()
}

fn count_rmws(prog: &Program) -> usize {
    let n_rmws: usize = prog
        .threads
        .iter()
        .flatten()
        .filter(|op| matches!(op, Op::Rmw { .. } | Op::RmwAr { .. }))
        .count();
    assert!(n_rmws <= 8, "too many RMWs to enumerate");
    n_rmws
}

/// Same-location writes a read of `x` may take its value from, in event
/// id order — the enumeration order of rf choices.
fn writes_of(events: &[Event], x: Loc) -> Vec<usize> {
    (0..events.len())
        .filter(|i| matches!(events[*i].lab, Lab::W { x: wx, .. } if wx == x))
        .collect()
}

/// The per-RMW-assignment enumeration scaffold: events and the fixed
/// relations (`po`, `rmw`), plus the read list and RMW constraints the
/// rf/coherence product is built over.
struct Skeleton {
    events: Vec<Event>,
    po: Rel,
    rmw: Rel,
    read_regs: Vec<(usize, usize, Reg)>,
    rmw_constraints: Vec<(usize, u64, bool)>,
    reads: Vec<usize>,
}

fn build_skeleton(prog: &Program, success_bits: u32) -> Skeleton {
    // Generate events.
    let mut events: Vec<Event> = Vec::new();
    let mut po_pairs: Vec<(usize, usize)> = Vec::new();
    let mut rmw_pairs: Vec<(usize, usize)> = Vec::new();
    // (event index of read, register, thread) for register outcomes.
    let mut read_regs: Vec<(usize, usize, Reg)> = Vec::new();
    // Which rmw reads must succeed (read value == expect) / must fail.
    let mut rmw_constraints: Vec<(usize, u64, bool)> = Vec::new();

    // Init writes.
    for x in 0..prog.locs {
        let id = events.len();
        events.push(Event {
            id,
            tid: 0,
            lab: Lab::W {
                x,
                v: 0,
                sc: false,
                rel: false,
            },
        });
    }
    let mut rmw_idx = 0usize;
    for (t, ops) in prog.threads.iter().enumerate() {
        let tid = t + 1;
        let mut prev: Vec<usize> = Vec::new();
        for op in ops {
            let push = |events: &mut Vec<Event>, lab: Lab| {
                let id = events.len();
                events.push(Event { id, tid, lab });
                id
            };
            match op {
                Op::Ld { r, x } => {
                    let id = push(
                        &mut events,
                        Lab::R {
                            x: *x,
                            v: 0,
                            sc: false,
                            acq: false,
                        },
                    );
                    read_regs.push((id, tid, *r));
                    prev.push(id);
                }
                Op::LdA { r, x } => {
                    let id = push(
                        &mut events,
                        Lab::R {
                            x: *x,
                            v: 0,
                            sc: false,
                            acq: true,
                        },
                    );
                    read_regs.push((id, tid, *r));
                    prev.push(id);
                }
                Op::St { x, v } => {
                    let id = push(
                        &mut events,
                        Lab::W {
                            x: *x,
                            v: *v,
                            sc: false,
                            rel: false,
                        },
                    );
                    prev.push(id);
                }
                Op::StR { x, v } => {
                    let id = push(
                        &mut events,
                        Lab::W {
                            x: *x,
                            v: *v,
                            sc: false,
                            rel: true,
                        },
                    );
                    prev.push(id);
                }
                Op::Rmw { r, x, expect, new } => {
                    let succeed = success_bits & (1 << rmw_idx) != 0;
                    rmw_idx += 1;
                    let rid = push(
                        &mut events,
                        Lab::R {
                            x: *x,
                            v: 0,
                            sc: true,
                            acq: false,
                        },
                    );
                    read_regs.push((rid, tid, *r));
                    rmw_constraints.push((rid, *expect, succeed));
                    prev.push(rid);
                    if succeed {
                        let wid = push(
                            &mut events,
                            Lab::W {
                                x: *x,
                                v: *new,
                                sc: true,
                                rel: false,
                            },
                        );
                        rmw_pairs.push((rid, wid));
                        prev.push(wid);
                    }
                }
                Op::RmwAr { r, x, expect, new } => {
                    let succeed = success_bits & (1 << rmw_idx) != 0;
                    rmw_idx += 1;
                    let rid = push(
                        &mut events,
                        Lab::R {
                            x: *x,
                            v: 0,
                            sc: false,
                            acq: true,
                        },
                    );
                    read_regs.push((rid, tid, *r));
                    rmw_constraints.push((rid, *expect, succeed));
                    prev.push(rid);
                    if succeed {
                        let wid = push(
                            &mut events,
                            Lab::W {
                                x: *x,
                                v: *new,
                                sc: false,
                                rel: true,
                            },
                        );
                        rmw_pairs.push((rid, wid));
                        prev.push(wid);
                    }
                }
                Op::Fence(ft) => {
                    let id = push(&mut events, Lab::F(*ft));
                    prev.push(id);
                }
            }
        }
        for i in 0..prev.len() {
            for j in i + 1..prev.len() {
                po_pairs.push((prev[i], prev[j]));
            }
        }
    }
    // Init writes po-precede everything (modelled as po from init to all).
    let n = events.len();
    let mut po = Rel::new(n);
    for x in 0..prog.locs as usize {
        for e in prog.locs as usize..n {
            po.add(x, e);
        }
    }
    for (a, b) in po_pairs {
        po.add(a, b);
    }
    let mut rmw = Rel::new(n);
    for (a, b) in &rmw_pairs {
        rmw.add(*a, *b);
    }

    let reads: Vec<usize> = (0..n).filter(|i| events[*i].lab.is_read()).collect();
    Skeleton {
        events,
        po,
        rmw,
        read_regs,
        rmw_constraints,
        reads,
    }
}

/// Enumerates the rf × coherence product over `skel`, appending every
/// candidate execution to `out`. `rf_prefix` pins the rf choices of the
/// first `rf_prefix.len()` reads — the partitioning hook: an empty prefix
/// enumerates the whole space, a one-element prefix enumerates the slice
/// belonging to that first-read choice.
fn enumerate_skeleton(skel: &Skeleton, rf_prefix: &[usize], out: &mut Vec<Execution>) {
    let Skeleton {
        events,
        po,
        rmw,
        read_regs,
        rmw_constraints,
        reads,
    } = skel;

    // Recursive product over read choices.
    fn rec(
        events: &[Event],
        reads: &[usize],
        choice: &mut Vec<usize>,
        emit: &mut dyn FnMut(&[Event], &Vec<usize>),
    ) {
        if choice.len() == reads.len() {
            emit(events, choice);
            return;
        }
        let r = reads[choice.len()];
        let Lab::R { x, .. } = events[r].lab else {
            unreachable!()
        };
        for w in writes_of(events, x) {
            choice.push(w);
            rec(events, reads, choice, emit);
            choice.pop();
        }
    }

    let mut choice = rf_prefix.to_vec();
    let mut emit = |evs: &[Event], choice: &Vec<usize>| {
        // Assign read values from rf sources; check RMW constraints.
        let mut events = evs.to_vec();
        for (ri, &w) in choice.iter().enumerate() {
            let r = reads[ri];
            let Lab::W { v, .. } = events[w].lab else {
                unreachable!()
            };
            if let Lab::R { v: ref mut rv, .. } = events[r].lab {
                *rv = v;
            }
        }
        for (rid, expect, succeed) in rmw_constraints {
            let Lab::R { v, .. } = events[*rid].lab else {
                unreachable!()
            };
            if (v == *expect) != *succeed {
                return; // inconsistent success choice
            }
        }
        let mut rf = Rel::new(events.len());
        for (ri, &w) in choice.iter().enumerate() {
            rf.add(w, reads[ri]);
        }
        // Enumerate coherence orders: permutations per location, with init
        // writes first.
        let mut per_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
        for e in &events {
            if let Lab::W { x, .. } = e.lab {
                if e.tid != 0 {
                    per_loc.entry(x).or_default().push(e.id);
                }
            }
        }
        let locs: Vec<Loc> = per_loc.keys().copied().collect();
        let mut orders: Vec<Vec<Vec<usize>>> = Vec::new();
        for l in &locs {
            orders.push(permutations(&per_loc[l]));
        }
        // Cartesian product over per-location permutations.
        let mut idx = vec![0usize; locs.len()];
        loop {
            let mut co = Rel::new(events.len());
            // Init writes co-precede all writes at their location.
            for (li, l) in locs.iter().enumerate() {
                let perm = &orders[li][idx[li]];
                let init = *l as usize;
                for (i, &w) in perm.iter().enumerate() {
                    co.add(init, w);
                    for &w2 in &perm[i + 1..] {
                        co.add(w, w2);
                    }
                }
            }
            // Registers: final value = last po read into that register.
            let mut regs: BTreeMap<(usize, Reg), u64> = BTreeMap::new();
            for (rid, tid, reg) in read_regs {
                let Lab::R { v, .. } = events[*rid].lab else {
                    unreachable!()
                };
                regs.insert((*tid, *reg), v);
            }
            // (read_regs is in po order per thread, so later reads overwrite.)
            let exec = Execution {
                events: events.clone(),
                po: po.clone(),
                rf: rf.clone(),
                co,
                rmw: rmw.clone(),
                regs,
            };
            out.push(exec);

            // Advance product counter.
            let mut k = 0;
            loop {
                if k == locs.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < orders[k].len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    };
    rec(events, reads, &mut choice, &mut emit);
}

fn permutations(xs: &[usize]) -> Vec<Vec<usize>> {
    if xs.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in xs.iter().enumerate() {
        let mut rest: Vec<usize> = xs.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SB: two threads, each storing then loading the other location.
    fn sb() -> Program {
        Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }, Op::Ld { r: 0, x: 1 }],
                vec![Op::St { x: 1, v: 1 }, Op::Ld { r: 0, x: 0 }],
            ],
        }
    }

    #[test]
    fn enumeration_counts() {
        let execs = enumerate_executions(&sb());
        // 2 reads × 2 writes each = 4 rf choices; one write per loc → 1 co.
        assert_eq!(execs.len(), 4);
    }

    #[test]
    fn fr_definition() {
        let execs = enumerate_executions(&sb());
        // In the execution where T1 reads init(0) of loc1, fr relates that
        // read to T2's store to loc1.
        let found = execs.iter().any(|x| {
            let fr = x.fr();
            !fr.is_empty()
        });
        assert!(found);
    }

    #[test]
    fn rmw_success_and_failure() {
        let prog = Program {
            locs: 1,
            threads: vec![vec![Op::Rmw {
                r: 0,
                x: 0,
                expect: 0,
                new: 5,
            }]],
        };
        let execs = enumerate_executions(&prog);
        // Success: reads init 0, writes 5. The failed variant would need to
        // read a non-0 value but only 0 exists, so it is filtered out.
        assert_eq!(execs.len(), 1);
        let o = Outcome::of(&execs[0]);
        assert_eq!(o.mem, vec![(0, 5)]);
        assert_eq!(o.regs, vec![((1, 0), 0)]);
    }

    #[test]
    fn rmw_can_fail_when_value_differs() {
        let prog = Program {
            locs: 1,
            threads: vec![
                vec![Op::St { x: 0, v: 9 }],
                vec![Op::Rmw {
                    r: 0,
                    x: 0,
                    expect: 0,
                    new: 5,
                }],
            ],
        };
        let execs = enumerate_executions(&prog);
        // Either the RMW reads 0 (succeeds) or reads 9 (fails).
        let outcomes: std::collections::BTreeSet<Outcome> = execs.iter().map(Outcome::of).collect();
        assert!(outcomes.iter().any(|o| o.regs == vec![((2, 0), 9)]));
        assert!(outcomes.iter().any(|o| o.regs == vec![((2, 0), 0)]));
    }

    #[test]
    fn sb_outcome_set_is_exactly_the_tso_plus_weak_one() {
        // Candidate executions of SB: both reads from init or the other
        // thread's store → 4 outcomes before model filtering.
        let execs = enumerate_executions(&sb());
        let outs: std::collections::BTreeSet<Outcome> = execs.iter().map(Outcome::of).collect();
        assert_eq!(outs.len(), 4);
        // Every combination of (0|1, 0|1) for the two registers appears.
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                assert!(
                    outs.iter()
                        .any(|o| o.regs == vec![((1, 0), a), ((2, 0), b)]),
                    "missing outcome a={a}, b={b}"
                );
            }
        }
    }

    #[test]
    fn partitioned_enumeration_is_order_identical_to_serial() {
        let progs = [
            sb(),
            // RMW + plain writes: exercises success-bit partitions,
            // including partitions emptied by the RMW constraints.
            Program {
                locs: 2,
                threads: vec![
                    vec![
                        Op::Rmw {
                            r: 0,
                            x: 0,
                            expect: 0,
                            new: 5,
                        },
                        Op::Ld { r: 1, x: 1 },
                    ],
                    vec![Op::St { x: 1, v: 3 }, Op::St { x: 0, v: 9 }],
                ],
            },
            // No reads at all: one partition per RMW assignment.
            Program {
                locs: 1,
                threads: vec![vec![Op::St { x: 0, v: 1 }], vec![Op::St { x: 0, v: 2 }]],
            },
        ];
        for prog in &progs {
            let serial = enumerate_executions(prog);
            let parts = execution_partitions(prog);
            let concat: Vec<Execution> = parts
                .iter()
                .flat_map(|p| enumerate_partition(prog, *p))
                .collect();
            assert_eq!(serial, concat, "partition order diverged from serial");
            for jobs in [1, 2, 8] {
                assert_eq!(
                    serial,
                    enumerate_executions_par(prog, jobs),
                    "jobs={jobs} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn coherence_orders_enumerated() {
        let prog = Program {
            locs: 1,
            threads: vec![vec![Op::St { x: 0, v: 1 }], vec![Op::St { x: 0, v: 2 }]],
        };
        let execs = enumerate_executions(&prog);
        // No reads: 2 coherence orders.
        assert_eq!(execs.len(), 2);
        let finals: std::collections::BTreeSet<u64> =
            execs.iter().map(|x| x.behavior()[&0]).collect();
        assert_eq!(finals.len(), 2);
    }
}
