//! The paper's litmus programs (Figures 1, 2, 9 and 10) plus a few
//! classics, as x86-level [`Program`]s.

use crate::exec::{FenceTy, Op, Program};

/// SB — store buffering (Figure 1 left).
pub fn sb() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }, Op::Ld { r: 0, x: 1 }],
            vec![Op::St { x: 1, v: 1 }, Op::Ld { r: 0, x: 0 }],
        ],
    }
}

/// MP — message passing (Figure 1 right).
pub fn mp() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 1 }],
            vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
        ],
    }
}

/// SB with `mfence` between store and load on both threads.
pub fn sb_fenced() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![
                Op::St { x: 0, v: 1 },
                Op::Fence(FenceTy::Mfence),
                Op::Ld { r: 0, x: 1 },
            ],
            vec![
                Op::St { x: 1, v: 1 },
                Op::Fence(FenceTy::Mfence),
                Op::Ld { r: 0, x: 0 },
            ],
        ],
    }
}

/// LB — load buffering.
pub fn lb() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::Ld { r: 0, x: 0 }, Op::St { x: 1, v: 1 }],
            vec![Op::Ld { r: 0, x: 1 }, Op::St { x: 0, v: 1 }],
        ],
    }
}

/// Figure 10 (left): stores then RMWs on the opposite locations.
pub fn fig10_store_rmw() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![
                Op::St { x: 0, v: 1 },
                Op::Rmw {
                    r: 0,
                    x: 1,
                    expect: 0,
                    new: 2,
                },
            ],
            vec![
                Op::St { x: 1, v: 1 },
                Op::Rmw {
                    r: 0,
                    x: 0,
                    expect: 0,
                    new: 2,
                },
            ],
        ],
    }
}

/// Figure 10 (right): RMWs then loads of the opposite locations.
pub fn fig10_rmw_load() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![
                Op::Rmw {
                    r: 1,
                    x: 0,
                    expect: 0,
                    new: 2,
                },
                Op::Ld { r: 0, x: 1 },
            ],
            vec![
                Op::Rmw {
                    r: 1,
                    x: 1,
                    expect: 0,
                    new: 2,
                },
                Op::Ld { r: 0, x: 0 },
            ],
        ],
    }
}

/// 2+2W: write pairs to two locations in opposite orders.
pub fn two_plus_two_w() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 2 }],
            vec![Op::St { x: 1, v: 1 }, Op::St { x: 0, v: 2 }],
        ],
    }
}

/// CoRR: coherence of read-read pairs on one location.
pub fn corr() -> Program {
    Program {
        locs: 1,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }],
            vec![Op::Ld { r: 0, x: 0 }, Op::Ld { r: 1, x: 0 }],
        ],
    }
}

/// Atomic increment race: two fetch-and-modify style RMWs.
pub fn rmw_race() -> Program {
    Program {
        locs: 1,
        threads: vec![
            vec![Op::Rmw {
                r: 0,
                x: 0,
                expect: 0,
                new: 1,
            }],
            vec![Op::Rmw {
                r: 0,
                x: 0,
                expect: 0,
                new: 2,
            }],
        ],
    }
}

/// S: store/store vs read–write pair.
pub fn s_test() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 2 }, Op::St { x: 1, v: 1 }],
            vec![Op::Ld { r: 0, x: 1 }, Op::St { x: 0, v: 1 }],
        ],
    }
}

/// R: two writers, one also reads.
pub fn r_test() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 1 }],
            vec![Op::St { x: 1, v: 2 }, Op::Ld { r: 0, x: 0 }],
        ],
    }
}

/// WRC: write → read → causal chain across three threads.
pub fn wrc() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }],
            vec![Op::Ld { r: 0, x: 0 }, Op::St { x: 1, v: 1 }],
            vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
        ],
    }
}

/// IRIW: two writers, two readers observing in opposite orders.
pub fn iriw() -> Program {
    Program {
        locs: 2,
        threads: vec![
            vec![Op::St { x: 0, v: 1 }],
            vec![Op::St { x: 1, v: 1 }],
            vec![Op::Ld { r: 0, x: 0 }, Op::Ld { r: 1, x: 1 }],
            vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
        ],
    }
}

/// The full suite used by the mapping checker.
pub fn paper_suite() -> Vec<(&'static str, Program)> {
    vec![
        ("SB", sb()),
        ("MP", mp()),
        ("SB+mfence", sb_fenced()),
        ("LB", lb()),
        ("Fig10-store-rmw", fig10_store_rmw()),
        ("Fig10-rmw-load", fig10_rmw_load()),
        ("2+2W", two_plus_two_w()),
        ("CoRR", corr()),
        ("RMW-race", rmw_race()),
        ("S", s_test()),
        ("R", r_test()),
        ("WRC", wrc()),
        ("IRIW", iriw()),
    ]
}

/// One row of [`sweep_suite`]: a named litmus program with its per-model
/// outcome counts and the forward/reverse mapping-chain verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Litmus test name (as in [`paper_suite`]).
    pub name: &'static str,
    /// The x86-level program.
    pub program: Program,
    /// Number of consistent outcomes under the x86 model.
    pub x86_outcomes: usize,
    /// Number of consistent outcomes under the Arm model.
    pub arm_outcomes: usize,
    /// Number of consistent outcomes under the LIMM model.
    pub limm_outcomes: usize,
    /// Verdict of the forward x86 → IR → Arm chain ([`check_chain`]).
    ///
    /// [`check_chain`]: crate::mapping::check_chain
    pub chain: Result<(), String>,
    /// Verdict of the reverse Arm → IR → x86 chain
    /// ([`check_reverse_chain`]).
    ///
    /// [`check_reverse_chain`]: crate::mapping::check_reverse_chain
    pub reverse: Result<(), String>,
}

/// Runs the exhaustive mapping sweep over the whole [`paper_suite`] on up
/// to `jobs` worker threads (via [`lasagne::pipeline::par_map`]). Each
/// program's outcome enumeration is independent of every other's, so the
/// result is order-identical to the serial sweep for any `jobs`.
pub fn sweep_suite(jobs: usize) -> Vec<SuiteRow> {
    sweep_suite_on(lasagne::pipeline::pool::Pool::shared(), jobs)
}

/// [`sweep_suite`] on an explicit work-stealing pool: the per-program
/// fan-out submits to `pool` instead of the process-wide shared one, so a
/// caller that already owns worker threads (the pipeline, `report`'s
/// whole sweep) reuses them.
pub fn sweep_suite_on(pool: &lasagne::pipeline::pool::Pool, jobs: usize) -> Vec<SuiteRow> {
    pool.par_map(jobs, paper_suite(), |_, (name, program)| {
        sweep_row_on(pool, name, program, 1)
    })
}

/// Builds one [`SuiteRow`], spending up to `jobs` worker threads *inside*
/// the program: outcome enumeration is partitioned by candidate-execution
/// prefix ([`crate::exec::execution_partitions`]) and the mapping chains
/// run through [`crate::mapping::check_chain_within`]. Outcome sets are
/// canonical, so the row is identical to the serial one for any `jobs`.
pub fn sweep_row(name: &'static str, program: Program, jobs: usize) -> SuiteRow {
    sweep_row_on(lasagne::pipeline::pool::Pool::shared(), name, program, jobs)
}

/// [`sweep_row`] on an explicit work-stealing pool.
pub fn sweep_row_on(
    pool: &lasagne::pipeline::pool::Pool,
    name: &'static str,
    program: Program,
    jobs: usize,
) -> SuiteRow {
    let x86_outcomes =
        crate::models::outcomes_on(pool, crate::models::Model::X86, &program, jobs).len();
    let arm_outcomes =
        crate::models::outcomes_on(pool, crate::models::Model::Arm, &program, jobs).len();
    let limm_outcomes =
        crate::models::outcomes_on(pool, crate::models::Model::Limm, &program, jobs).len();
    let chain = crate::mapping::check_chain_on(pool, &program, jobs);
    let reverse = crate::mapping::check_reverse_chain_on(pool, &program, jobs);
    SuiteRow {
        name,
        program,
        x86_outcomes,
        arm_outcomes,
        limm_outcomes,
        chain,
        reverse,
    }
}

/// Runs the mapping sweep with the parallelism turned *inward*: programs
/// are visited serially, in suite order, and each program's own
/// candidate-execution space fans out across up to `jobs` workers
/// ([`sweep_row`]). This is the schedule the `litmus` CLI uses at
/// `--jobs > 1` — it keeps the worker pool busy even on a suite whose
/// wall time is dominated by one large program (e.g. IRIW), where
/// per-program parallelism ([`sweep_suite`]) would leave all but one
/// worker idle on the tail. Row-identical to `sweep_suite` for any
/// `jobs`.
pub fn sweep_suite_within(jobs: usize) -> Vec<SuiteRow> {
    sweep_suite_within_on(lasagne::pipeline::pool::Pool::shared(), jobs)
}

/// [`sweep_suite_within`] on an explicit work-stealing pool.
pub fn sweep_suite_within_on(pool: &lasagne::pipeline::pool::Pool, jobs: usize) -> Vec<SuiteRow> {
    paper_suite()
        .into_iter()
        .map(|(name, program)| sweep_row_on(pool, name, program, jobs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{outcomes, Model};

    #[test]
    fn parallel_sweep_is_order_identical_to_serial() {
        let serial = sweep_suite(1);
        assert_eq!(serial.len(), paper_suite().len());
        for jobs in [2, 4, 8] {
            assert_eq!(serial, sweep_suite(jobs), "sweep diverged at jobs={jobs}");
        }
        for row in &serial {
            assert!(row.chain.is_ok(), "{}: {:?}", row.name, row.chain);
        }
    }

    #[test]
    fn within_program_sweep_is_row_identical_to_serial() {
        let serial = sweep_suite(1);
        for jobs in [1, 2, 4, 8] {
            assert_eq!(
                serial,
                sweep_suite_within(jobs),
                "within-program sweep diverged at jobs={jobs}"
            );
        }
    }

    #[test]
    fn suite_programs_have_executions_under_every_model() {
        for (name, p) in paper_suite() {
            for model in [Model::X86, Model::Arm, Model::Limm] {
                let os = outcomes(model, &p);
                assert!(
                    !os.is_empty(),
                    "{name} has no consistent executions under {model:?}"
                );
            }
        }
    }

    #[test]
    fn lb_forbidden_on_x86() {
        // x86 never reorders a load with a later store: r0=r0=1 impossible.
        let os = outcomes(Model::X86, &lb());
        let weak = os.iter().any(|o| o.regs.iter().all(|(_, v)| *v == 1));
        assert!(!weak);
    }

    #[test]
    fn wrc_forbidden_on_x86_allowed_on_arm_without_deps() {
        // WRC with r0=1 (saw the write), then writes flag; reader sees flag
        // but stale X. On x86 this is forbidden (read-read + write ordering
        // is cumulative under TSO); multicopy-atomic Armv8 *also* forbids it
        // when the reads are ordered, but our litmus reads are unordered so
        // Arm allows it.
        let weak = |o: &crate::exec::Outcome| {
            // Outcome threads are 1-based (0 is the init pseudo-thread):
            // 2 = the middle forwarder, 3 = the final reader.
            let t2r0 = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 0)
                .unwrap()
                .1;
            let t3r0 = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 3 && *r == 0)
                .unwrap()
                .1;
            let t3r1 = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 3 && *r == 1)
                .unwrap()
                .1;
            t2r0 == 1 && t3r0 == 1 && t3r1 == 0
        };
        assert!(
            !outcomes(Model::X86, &wrc()).iter().any(weak),
            "x86 forbids WRC"
        );
        assert!(
            outcomes(Model::Arm, &wrc()).iter().any(weak),
            "unordered Arm allows WRC"
        );
        // The mapped program restores the guarantee.
        let mapped = crate::mapping::x86_to_arm(&wrc());
        assert!(
            !outcomes(Model::Arm, &mapped).iter().any(weak),
            "translated WRC is tight"
        );
    }

    #[test]
    fn iriw_forbidden_on_x86() {
        // Readers disagreeing on the write order is forbidden under TSO.
        let weak = |o: &crate::exec::Outcome| {
            let g = |t: usize, r: u8| {
                o.regs
                    .iter()
                    .find(|((tt, rr), _)| *tt == t && *rr == r)
                    .unwrap()
                    .1
            };
            // Outcome threads are 1-based: readers are threads 3 and 4.
            g(3, 0) == 1 && g(3, 1) == 0 && g(4, 0) == 1 && g(4, 1) == 0
        };
        assert!(!outcomes(Model::X86, &iriw()).iter().any(weak));
        // And the translation keeps it forbidden on (multicopy-atomic) Arm.
        let mapped = crate::mapping::x86_to_arm(&iriw());
        assert!(!outcomes(Model::Arm, &mapped).iter().any(weak));
    }

    #[test]
    fn corr_reads_never_go_backwards() {
        for model in [Model::X86, Model::Arm, Model::Limm] {
            let os = outcomes(model, &corr());
            // Second read cannot see an older value than the first.
            let backwards = os.iter().any(|o| {
                let a = o
                    .regs
                    .iter()
                    .find(|((t, r), _)| *t == 2 && *r == 0)
                    .unwrap()
                    .1;
                let b = o
                    .regs
                    .iter()
                    .find(|((t, r), _)| *t == 2 && *r == 1)
                    .unwrap()
                    .1;
                a == 1 && b == 0
            });
            assert!(!backwards, "{model:?} allows CoRR violation");
        }
    }
}
