//! The verified mapping schemes of Figure 8, as program-to-program
//! transformations, plus the empirical correctness checker for
//! Theorem 7.1: every consistent target outcome must be a consistent
//! source outcome.

use crate::exec::{FenceTy, Op, Outcome, Program};
use crate::models::Model;
use std::collections::BTreeSet;

/// Figure 8a: x86 → IR.
///
/// * `ld  ⇒ ld_na ; Frm`
/// * `st  ⇒ Fww ; st_na`
/// * `RMW ⇒ RMWsc` (unchanged op, seq_cst semantics)
/// * `MFENCE ⇒ Fsc`
pub fn x86_to_limm(p: &Program) -> Program {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Ld { .. } => {
                        out.push(*op);
                        out.push(Op::Fence(FenceTy::Frm));
                    }
                    Op::St { .. } => {
                        out.push(Op::Fence(FenceTy::Fww));
                        out.push(*op);
                    }
                    Op::Rmw { .. } => out.push(*op),
                    Op::Fence(FenceTy::Mfence) => out.push(Op::Fence(FenceTy::Fsc)),
                    Op::Fence(other) => out.push(Op::Fence(*other)),
                    // Arm-only accesses never appear in x86 sources.
                    Op::LdA { .. } | Op::StR { .. } | Op::RmwAr { .. } => out.push(*op),
                }
            }
            out
        })
        .collect();
    Program {
        locs: p.locs,
        threads,
    }
}

/// Figure 8b: IR → Arm.
///
/// * `ld_na ⇒ ld`, `st_na ⇒ st`
/// * `RMWsc ⇒ DMBFF ; RMW ; DMBFF`
/// * `Frm ⇒ DMBLD`, `Fww ⇒ DMBST`, `Fsc ⇒ DMBFF`
pub fn limm_to_arm(p: &Program) -> Program {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Ld { .. } | Op::St { .. } => out.push(*op),
                    Op::Rmw { .. } => {
                        out.push(Op::Fence(FenceTy::DmbFf));
                        out.push(*op);
                        out.push(Op::Fence(FenceTy::DmbFf));
                    }
                    Op::Fence(FenceTy::Frm) => out.push(Op::Fence(FenceTy::DmbLd)),
                    Op::Fence(FenceTy::Fww) => out.push(Op::Fence(FenceTy::DmbSt)),
                    Op::Fence(FenceTy::Fsc) => out.push(Op::Fence(FenceTy::DmbFf)),
                    Op::Fence(other) => out.push(Op::Fence(*other)),
                    Op::LdA { .. } | Op::StR { .. } | Op::RmwAr { .. } => out.push(*op),
                }
            }
            out
        })
        .collect();
    Program {
        locs: p.locs,
        threads,
    }
}

/// Figure 8c: the composed x86 → Arm mapping.
pub fn x86_to_arm(p: &Program) -> Program {
    limm_to_arm(&x86_to_limm(p))
}

/// Appendix A ablation: lower `RMWsc` to an acquire/release exclusive pair
/// (`ldaxr`/`stlxr`) instead of surrounding `DMBFF`s. Release/acquire are
/// only *half* fences, so this mapping is **incorrect** for x86 sources —
/// the Figure 10 programs witness it (see the tests) — which is why
/// Lasagne's Figure 8b uses full barriers.
pub fn limm_to_arm_acqrel(p: &Program) -> Program {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Rmw { r, x, expect, new } => {
                        out.push(Op::RmwAr {
                            r: *r,
                            x: *x,
                            expect: *expect,
                            new: *new,
                        });
                    }
                    Op::Fence(FenceTy::Frm) => out.push(Op::Fence(FenceTy::DmbLd)),
                    Op::Fence(FenceTy::Fww) => out.push(Op::Fence(FenceTy::DmbSt)),
                    Op::Fence(FenceTy::Fsc) => out.push(Op::Fence(FenceTy::DmbFf)),
                    other => out.push(*other),
                }
            }
            out
        })
        .collect();
    Program {
        locs: p.locs,
        threads,
    }
}

/// Appendix B, step 1: Arm → IR.
///
/// * `ld ⇒ ld_na`, `st ⇒ st_na`, `ldar ⇒ ld_na;Fsc`-style strengthening is
///   *not* needed — the IR target only has to preserve Arm behaviours, and
///   weakening accesses can only add behaviours, so ordered Arm accesses
///   must carry their orderings across: `DMBLD ⇒ Frm`, `DMBST ⇒ Fww`,
///   `DMBFF ⇒ Fsc`, `ldar/stlr ⇒` leading/trailing `Fsc` (conservative),
///   `RMW ⇒ RMWsc`.
pub fn arm_to_limm(p: &Program) -> Program {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Ld { .. } | Op::St { .. } | Op::Rmw { .. } => out.push(*op),
                    Op::LdA { r, x } => {
                        // Acquire: the read is ordered before all later
                        // accesses — an Frm after the plain load suffices.
                        out.push(Op::Ld { r: *r, x: *x });
                        out.push(Op::Fence(FenceTy::Frm));
                    }
                    Op::StR { x, v } => {
                        // Release orders *all* earlier accesses before the
                        // write; only Fsc is strong enough in LIMM.
                        out.push(Op::Fence(FenceTy::Fsc));
                        out.push(Op::St { x: *x, v: *v });
                    }
                    Op::RmwAr { r, x, expect, new } => {
                        out.push(Op::Rmw {
                            r: *r,
                            x: *x,
                            expect: *expect,
                            new: *new,
                        });
                    }
                    Op::Fence(FenceTy::DmbFf) => out.push(Op::Fence(FenceTy::Fsc)),
                    Op::Fence(FenceTy::DmbLd) => out.push(Op::Fence(FenceTy::Frm)),
                    Op::Fence(FenceTy::DmbSt) => out.push(Op::Fence(FenceTy::Fww)),
                    Op::Fence(other) => out.push(Op::Fence(*other)),
                }
            }
            out
        })
        .collect();
    Program {
        locs: p.locs,
        threads,
    }
}

/// Appendix B, step 2: IR → x86.
///
/// x86-TSO already orders ld-ld, ld-st and st-st pairs, so `Frm` and `Fww`
/// map to *nothing*; only `Fsc` (which also orders st-ld) needs an
/// `MFENCE`. This is the precision claim in the weak→strong direction: no
/// stronger fence is necessary.
pub fn limm_to_x86(p: &Program) -> Program {
    let threads = p
        .threads
        .iter()
        .map(|ops| {
            let mut out = Vec::new();
            for op in ops {
                match op {
                    Op::Ld { .. } | Op::St { .. } | Op::Rmw { .. } => out.push(*op),
                    Op::Fence(FenceTy::Fsc) => out.push(Op::Fence(FenceTy::Mfence)),
                    Op::Fence(FenceTy::Frm | FenceTy::Fww) => {} // free on TSO
                    Op::Fence(other) => out.push(Op::Fence(*other)),
                    Op::LdA { .. } | Op::StR { .. } | Op::RmwAr { .. } => out.push(*op),
                }
            }
            out
        })
        .collect();
    Program {
        locs: p.locs,
        threads,
    }
}

/// Checks the Appendix B chain Arm → IR → x86 on one program.
pub fn check_reverse_chain(p: &Program) -> Result<(), String> {
    check_reverse_chain_within(p, 1)
}

/// [`check_reverse_chain`] with each enumeration partitioned across up to
/// `jobs` worker threads ([`check_mapping_within`]). Same verdict for any
/// `jobs`.
pub fn check_reverse_chain_within(p: &Program, jobs: usize) -> Result<(), String> {
    check_reverse_chain_on(lasagne::pipeline::pool::Pool::shared(), p, jobs)
}

/// [`check_reverse_chain_within`] on an explicit work-stealing pool.
pub fn check_reverse_chain_on(
    pool: &lasagne::pipeline::pool::Pool,
    p: &Program,
    jobs: usize,
) -> Result<(), String> {
    let ir = arm_to_limm(p);
    let x86 = limm_to_x86(&ir);
    check_mapping_on(pool, jobs, Model::Arm, p, Model::Limm, &ir)
        .map_err(|e| format!("Arm→IR introduces {} outcome(s): {e:?}", e.len()))?;
    check_mapping_on(pool, jobs, Model::Limm, &ir, Model::X86, &x86)
        .map_err(|e| format!("IR→x86 introduces {} outcome(s): {e:?}", e.len()))?;
    check_mapping_on(pool, jobs, Model::Arm, p, Model::X86, &x86)
        .map_err(|e| format!("Arm→x86 introduces {} outcome(s): {e:?}", e.len()))?;
    Ok(())
}

/// The empirical statement of Theorem 7.1 for a mapping `Ps → Pt`:
/// `outcomes(Mt, Pt) ⊆ outcomes(Ms, Ps)`.
///
/// Returns `Ok(())` or the set of target outcomes with no source
/// counterpart.
pub fn check_mapping(
    src_model: Model,
    src: &Program,
    tgt_model: Model,
    tgt: &Program,
) -> Result<(), BTreeSet<Outcome>> {
    check_mapping_within(1, src_model, src, tgt_model, tgt)
}

/// [`check_mapping`] with both outcome enumerations partitioned across up
/// to `jobs` worker threads ([`crate::models::outcomes_par`]). Outcomes
/// are canonical `BTreeSet`s, so the verdict is identical for any `jobs`.
pub fn check_mapping_within(
    jobs: usize,
    src_model: Model,
    src: &Program,
    tgt_model: Model,
    tgt: &Program,
) -> Result<(), BTreeSet<Outcome>> {
    check_mapping_on(
        lasagne::pipeline::pool::Pool::shared(),
        jobs,
        src_model,
        src,
        tgt_model,
        tgt,
    )
}

/// [`check_mapping_within`] on an explicit work-stealing pool.
pub fn check_mapping_on(
    pool: &lasagne::pipeline::pool::Pool,
    jobs: usize,
    src_model: Model,
    src: &Program,
    tgt_model: Model,
    tgt: &Program,
) -> Result<(), BTreeSet<Outcome>> {
    let src_out = crate::models::outcomes_on(pool, src_model, src, jobs);
    let tgt_out = crate::models::outcomes_on(pool, tgt_model, tgt, jobs);
    let extra: BTreeSet<Outcome> = tgt_out.difference(&src_out).cloned().collect();
    if extra.is_empty() {
        Ok(())
    } else {
        Err(extra)
    }
}

/// Checks the full x86 → IR → Arm chain on one program: each stage must not
/// introduce new behaviors (Theorems 7.3, 7.4 and their composition).
pub fn check_chain(p: &Program) -> Result<(), String> {
    check_chain_within(p, 1)
}

/// [`check_chain`] with each enumeration partitioned across up to `jobs`
/// worker threads ([`check_mapping_within`]). Same verdict for any `jobs`.
pub fn check_chain_within(p: &Program, jobs: usize) -> Result<(), String> {
    check_chain_on(lasagne::pipeline::pool::Pool::shared(), p, jobs)
}

/// [`check_chain_within`] on an explicit work-stealing pool.
pub fn check_chain_on(
    pool: &lasagne::pipeline::pool::Pool,
    p: &Program,
    jobs: usize,
) -> Result<(), String> {
    let ir = x86_to_limm(p);
    let arm = limm_to_arm(&ir);
    check_mapping_on(pool, jobs, Model::X86, p, Model::Limm, &ir)
        .map_err(|extra| format!("x86→IR introduces {} outcome(s): {extra:?}", extra.len()))?;
    check_mapping_on(pool, jobs, Model::Limm, &ir, Model::Arm, &arm)
        .map_err(|extra| format!("IR→Arm introduces {} outcome(s): {extra:?}", extra.len()))?;
    check_mapping_on(pool, jobs, Model::X86, p, Model::Arm, &arm)
        .map_err(|extra| format!("x86→Arm introduces {} outcome(s): {extra:?}", extra.len()))?;
    Ok(())
}

/// [`check_chain`] over many programs on up to `jobs` worker threads (via
/// [`lasagne::pipeline::par_map`]). Verdicts come back in input order —
/// the parallel sweep is indistinguishable from mapping `check_chain`
/// serially.
pub fn check_chain_all(jobs: usize, programs: Vec<Program>) -> Vec<Result<(), String>> {
    lasagne::pipeline::par_map(jobs, programs, |_, p| check_chain(&p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus;
    use crate::models::outcomes;

    #[test]
    fn mapping_shapes_match_figure8() {
        let p = Program {
            locs: 1,
            threads: vec![vec![
                Op::Ld { r: 0, x: 0 },
                Op::St { x: 0, v: 1 },
                Op::Fence(FenceTy::Mfence),
                Op::Rmw {
                    r: 1,
                    x: 0,
                    expect: 1,
                    new: 2,
                },
            ]],
        };
        let ir = x86_to_limm(&p);
        assert_eq!(
            ir.threads[0],
            vec![
                Op::Ld { r: 0, x: 0 },
                Op::Fence(FenceTy::Frm),
                Op::Fence(FenceTy::Fww),
                Op::St { x: 0, v: 1 },
                Op::Fence(FenceTy::Fsc),
                Op::Rmw {
                    r: 1,
                    x: 0,
                    expect: 1,
                    new: 2
                },
            ]
        );
        let arm = limm_to_arm(&ir);
        assert_eq!(
            arm.threads[0],
            vec![
                Op::Ld { r: 0, x: 0 },
                Op::Fence(FenceTy::DmbLd),
                Op::Fence(FenceTy::DmbSt),
                Op::St { x: 0, v: 1 },
                Op::Fence(FenceTy::DmbFf),
                Op::Fence(FenceTy::DmbFf),
                Op::Rmw {
                    r: 1,
                    x: 0,
                    expect: 1,
                    new: 2
                },
                Op::Fence(FenceTy::DmbFf),
            ]
        );
    }

    /// Theorem 7.3/7.4 checked on the paper's own litmus programs.
    #[test]
    fn chain_correct_on_paper_litmus() {
        for (name, p) in litmus::paper_suite() {
            check_chain(&p).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    /// Precision: mapping MP *without* the paper's fences (i.e. the naive
    /// identity mapping) is incorrect — Arm shows an outcome x86 forbids.
    #[test]
    fn identity_mapping_is_incorrect() {
        let mp = litmus::mp();
        let err = check_mapping(Model::X86, &mp, Model::Arm, &mp);
        assert!(err.is_err(), "unfenced Arm MP must exhibit extra outcomes");
    }

    /// Appendix B: the reverse chain (Arm → IR → x86) is correct on the
    /// paper suite; the weak→strong direction needs no fences for
    /// DMBLD/DMBST (TSO's implicit ordering covers them).
    #[test]
    fn reverse_chain_correct_on_paper_litmus() {
        for (name, p) in litmus::paper_suite() {
            // Interpret each program as Arm source (its fences already use
            // x86 mnemonics; swap mfence → dmb ff).
            let arm_src = Program {
                locs: p.locs,
                threads: p
                    .threads
                    .iter()
                    .map(|ops| {
                        ops.iter()
                            .map(|op| match op {
                                Op::Fence(FenceTy::Mfence) => Op::Fence(FenceTy::DmbFf),
                                o => *o,
                            })
                            .collect()
                    })
                    .collect(),
            };
            check_reverse_chain(&arm_src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    /// Appendix B precision: Frm/Fww map to nothing on x86, and that is
    /// sufficient — the fenced-MP Arm program keeps its guarantee on x86
    /// even with the fences erased.
    #[test]
    fn tso_implicit_ordering_subsumes_half_fences() {
        let arm = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 0, v: 1 },
                    Op::Fence(FenceTy::DmbSt),
                    Op::St { x: 1, v: 1 },
                ],
                vec![
                    Op::Ld { r: 0, x: 1 },
                    Op::Fence(FenceTy::DmbLd),
                    Op::Ld { r: 1, x: 0 },
                ],
            ],
        };
        let x86 = limm_to_x86(&arm_to_limm(&arm));
        // No fences remain…
        let fence_count: usize = x86
            .threads
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Fence(_)))
            .count();
        assert_eq!(fence_count, 0);
        // …and the weak outcome stays forbidden on x86.
        let weak = |o: &Outcome| {
            let a = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 0)
                .unwrap()
                .1;
            let b = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 1)
                .unwrap()
                .1;
            a == 1 && b == 0
        };
        assert!(!outcomes(Model::X86, &x86).iter().any(weak));
    }

    /// Appendix A: acquire/release accesses order correctly in the Arm
    /// model — MP with stlr/ldar forbids the weak outcome.
    #[test]
    fn acquire_release_mp() {
        let arm = Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }, Op::StR { x: 1, v: 1 }],
                vec![Op::LdA { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
            ],
        };
        let weak = |o: &Outcome| {
            let a = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 0)
                .unwrap()
                .1;
            let b = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 1)
                .unwrap()
                .1;
            a == 1 && b == 0
        };
        assert!(
            !outcomes(Model::Arm, &arm).iter().any(weak),
            "release/acquire MP must be tight"
        );
        // And the reverse chain carries the guarantee to x86.
        check_reverse_chain(&arm).unwrap();
    }

    /// Appendix A ablation: lowering RMWsc to acquire/release exclusives
    /// instead of DMBFF pairs is *incorrect* — the Figure 10 program
    /// witnesses an x86-forbidden outcome. This is why Figure 8b uses full
    /// barriers.
    #[test]
    fn acqrel_rmw_lowering_is_insufficient() {
        let p = litmus::fig10_rmw_load();
        let ir = x86_to_limm(&p);
        let correct = limm_to_arm(&ir);
        let acqrel = limm_to_arm_acqrel(&ir);
        assert!(check_mapping(Model::X86, &p, Model::Arm, &correct).is_ok());
        assert!(
            check_mapping(Model::X86, &p, Model::Arm, &acqrel).is_err(),
            "ldaxr/stlxr RMWs must leak an x86-forbidden outcome on Figure 10"
        );
    }

    /// Precision: weakening the RMW mapping (dropping the DMBFFs) breaks
    /// the Figure 10 example.
    #[test]
    fn rmw_mapping_needs_full_fences() {
        let p = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::Rmw {
                        r: 1,
                        x: 0,
                        expect: 0,
                        new: 2,
                    },
                    Op::Ld { r: 0, x: 1 },
                ],
                vec![
                    Op::Rmw {
                        r: 1,
                        x: 1,
                        expect: 0,
                        new: 2,
                    },
                    Op::Ld { r: 0, x: 0 },
                ],
            ],
        };
        // Weak mapping: RMW without surrounding DMBFF.
        let ir = x86_to_limm(&p);
        let weak_arm = Program {
            locs: ir.locs,
            threads: ir
                .threads
                .iter()
                .map(|ops| {
                    ops.iter()
                        .map(|op| match op {
                            Op::Fence(FenceTy::Frm) => Op::Fence(FenceTy::DmbLd),
                            Op::Fence(FenceTy::Fww) => Op::Fence(FenceTy::DmbSt),
                            Op::Fence(FenceTy::Fsc) => Op::Fence(FenceTy::DmbFf),
                            o => *o,
                        })
                        .collect()
                })
                .collect(),
        };
        let correct = limm_to_arm(&ir);
        assert!(check_mapping(Model::X86, &p, Model::Arm, &correct).is_ok());
        assert!(
            check_mapping(Model::X86, &p, Model::Arm, &weak_arm).is_err(),
            "dropping the DMBFF pair around RMWs must be observable"
        );
    }
}
