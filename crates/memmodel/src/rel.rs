//! Binary relations over event sets, as bit matrices.
//!
//! The axiomatic models (§6.1) are phrased as closure/irreflexivity
//! conditions over relations between events; this module provides the
//! relation calculus: union, intersection, composition, transitive closure,
//! inverse, restriction, and acyclicity tests. Event counts in litmus
//! executions are tiny (≤ 32), so a dense `u64`-row bit matrix suffices.

/// A binary relation over `n ≤ 64` elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rel {
    n: usize,
    rows: Vec<u64>,
}

impl Rel {
    /// The empty relation over `n` elements.
    pub fn new(n: usize) -> Rel {
        assert!(n <= 64, "relation too large");
        Rel {
            n,
            rows: vec![0; n],
        }
    }

    /// Identity relation restricted to the elements where `pred` holds.
    pub fn identity_where(n: usize, pred: impl Fn(usize) -> bool) -> Rel {
        let mut r = Rel::new(n);
        for i in 0..n {
            if pred(i) {
                r.add(i, i);
            }
        }
        r
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|r| *r == 0)
    }

    /// Adds the pair `(a, b)`.
    pub fn add(&mut self, a: usize, b: usize) {
        self.rows[a] |= 1u64 << b;
    }

    /// Membership test.
    pub fn has(&self, a: usize, b: usize) -> bool {
        self.rows[a] & (1u64 << b) != 0
    }

    /// All pairs in the relation.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            let mut bits = self.rows[a];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((a, b));
                bits &= bits - 1;
            }
        }
        out
    }

    /// Union.
    pub fn union(&self, other: &Rel) -> Rel {
        let mut r = self.clone();
        for (a, row) in other.rows.iter().enumerate() {
            r.rows[a] |= row;
        }
        r
    }

    /// Intersection.
    pub fn intersect(&self, other: &Rel) -> Rel {
        let mut r = self.clone();
        for (a, row) in other.rows.iter().enumerate() {
            r.rows[a] &= row;
        }
        r
    }

    /// Set difference (`self \ other`).
    pub fn minus(&self, other: &Rel) -> Rel {
        let mut r = self.clone();
        for (a, row) in other.rows.iter().enumerate() {
            r.rows[a] &= !row;
        }
        r
    }

    /// Relational composition `self ; other`.
    pub fn compose(&self, other: &Rel) -> Rel {
        let mut r = Rel::new(self.n);
        for a in 0..self.n {
            let mut mids = self.rows[a];
            while mids != 0 {
                let m = mids.trailing_zeros() as usize;
                r.rows[a] |= other.rows[m];
                mids &= mids - 1;
            }
        }
        r
    }

    /// Inverse relation.
    pub fn inverse(&self) -> Rel {
        let mut r = Rel::new(self.n);
        for (a, b) in self.pairs() {
            r.add(b, a);
        }
        r
    }

    /// Transitive closure (`self⁺`).
    pub fn closure(&self) -> Rel {
        let mut r = self.clone();
        // Floyd–Warshall on bits.
        for k in 0..self.n {
            for a in 0..self.n {
                if r.rows[a] & (1u64 << k) != 0 {
                    r.rows[a] |= r.rows[k];
                }
            }
        }
        r
    }

    /// Whether the relation (not its closure) relates any element to itself.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|a| !self.has(a, a))
    }

    /// Whether the relation is acyclic (its transitive closure is
    /// irreflexive).
    pub fn is_acyclic(&self) -> bool {
        self.closure().is_irreflexive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_closure() {
        let mut r = Rel::new(4);
        r.add(0, 1);
        r.add(1, 2);
        r.add(2, 3);
        let rr = r.compose(&r);
        assert!(rr.has(0, 2) && rr.has(1, 3) && !rr.has(0, 1));
        let c = r.closure();
        assert!(c.has(0, 3));
        assert!(c.is_irreflexive());
        assert!(r.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let mut r = Rel::new(3);
        r.add(0, 1);
        r.add(1, 2);
        r.add(2, 0);
        assert!(!r.is_acyclic());
        assert!(r.is_irreflexive(), "no self-loop even though cyclic");
    }

    #[test]
    fn set_operations() {
        let mut a = Rel::new(3);
        a.add(0, 1);
        a.add(1, 2);
        let mut b = Rel::new(3);
        b.add(1, 2);
        b.add(2, 0);
        assert_eq!(a.union(&b).pairs().len(), 3);
        assert_eq!(a.intersect(&b).pairs(), vec![(1, 2)]);
        assert_eq!(a.minus(&b).pairs(), vec![(0, 1)]);
        assert_eq!(a.inverse().pairs(), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn identity_restriction() {
        let id = Rel::identity_where(4, |i| i % 2 == 0);
        assert!(id.has(0, 0) && id.has(2, 2));
        assert!(!id.has(1, 1));
    }
}
