//! The three axiomatic consistency models: x86-TSO, Armv8, and LIMM
//! (paper §6.2–§6.3, Figures 6 and 7).

use crate::exec::{Execution, FenceTy, Lab};
use crate::rel::Rel;

/// Which memory model filters executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// x86 (TSO): Figure 6, axiom (GHB).
    X86,
    /// Armv8 (multicopy-atomic, Pulte et al.): Figure 6, axiom (external).
    Arm,
    /// LIMM: Figure 7, axiom (GOrd).
    Limm,
}

fn reads(x: &Execution) -> Rel {
    Rel::identity_where(x.events.len(), |i| x.events[i].lab.is_read())
}

fn writes(x: &Execution) -> Rel {
    Rel::identity_where(x.events.len(), |i| x.events[i].lab.is_write())
}

fn fences_matching(x: &Execution, pred: impl Fn(FenceTy) -> bool) -> Rel {
    Rel::identity_where(
        x.events.len(),
        |i| matches!(x.events[i].lab, Lab::F(ft) if pred(ft)),
    )
}

/// `sc-per-loc`: `(po|loc ∪ rf ∪ co ∪ fr)` acyclic (§6.2).
pub fn sc_per_loc(x: &Execution) -> bool {
    let po_loc = x.same_loc(&x.po);
    po_loc.union(&x.rf).union(&x.co).union(&x.fr()).is_acyclic()
}

/// `atomicity`: `rmw ∩ (fre ; coe) = ∅` (§6.2).
pub fn atomicity(x: &Execution) -> bool {
    let fre = x.external(&x.fr());
    let coe = x.external(&x.co);
    x.rmw.intersect(&fre.compose(&coe)).is_empty()
}

/// x86 axiom (GHB), Figure 6.
pub fn x86_consistent(x: &Execution) -> bool {
    if !sc_per_loc(x) || !atomicity(x) {
        return false;
    }
    let n = x.events.len();
    let r = reads(x);
    let w = writes(x);
    // ppo = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
    let mut ppo = Rel::new(n);
    for (a, b) in x.po.pairs() {
        let ra = r.has(a, a);
        let wa = w.has(a, a);
        let rb = r.has(b, b);
        let wb = w.has(b, b);
        if (wa && wb) || (ra && wb) || (ra && rb) {
            ppo.add(a, b);
        }
    }
    // implied = po;[At ∪ F] ∪ [At ∪ F];po   where At = dom(rmw) ∪ codom(rmw)
    let at_or_fence = Rel::identity_where(n, |i| {
        matches!(x.events[i].lab, Lab::F(_))
            || x.rmw.pairs().iter().any(|(a, b)| *a == i || *b == i)
    });
    let implied =
        x.po.compose(&at_or_fence)
            .union(&at_or_fence.compose(&x.po));
    let rfe = x.external(&x.rf);
    let hb = ppo.union(&implied).union(&rfe).union(&x.fr()).union(&x.co);
    hb.is_acyclic()
}

/// Arm axiom (external), Figure 6 (no dependencies in litmus programs, so
/// `dob` is empty; stores take constant values in our litmus language).
pub fn arm_consistent(x: &Execution) -> bool {
    if !sc_per_loc(x) || !atomicity(x) {
        return false;
    }
    let _n = x.events.len();
    let r = reads(x);
    let w = writes(x);
    // obs = rfe ∪ coe ∪ fre
    let obs = x
        .external(&x.rf)
        .union(&x.external(&x.co))
        .union(&x.external(&x.fr()));
    // aob = rmw
    let aob = x.rmw.clone();
    // bob = po;[F_full];po ∪ [R];po;[F_ld];po ∪ [W];po;[F_st];po;[W]
    let f_full = fences_matching(x, |f| f == FenceTy::DmbFf);
    let f_ld = fences_matching(x, |f| f == FenceTy::DmbLd);
    let f_st = fences_matching(x, |f| f == FenceTy::DmbSt);
    let bob_full = x.po.compose(&f_full).compose(&x.po);
    let bob_ld = r.compose(&x.po).compose(&f_ld).compose(&x.po);
    let bob_st = w.compose(&x.po).compose(&f_st).compose(&x.po).compose(&w);
    // Appendix A: acquire loads order before all po-later accesses;
    // release stores order after all po-earlier accesses; and a release
    // followed by an acquire is ordered.
    let acq = Rel::identity_where(_n, |i| matches!(x.events[i].lab, Lab::R { acq: true, .. }));
    let rel = Rel::identity_where(_n, |i| matches!(x.events[i].lab, Lab::W { rel: true, .. }));
    let bob_acq = acq.compose(&x.po);
    let bob_rel = x.po.compose(&rel);
    let bob_ra = rel.compose(&x.po).compose(&acq);
    let bob = bob_full
        .union(&bob_ld)
        .union(&bob_st)
        .union(&bob_acq)
        .union(&bob_rel)
        .union(&bob_ra);
    let ob = obs.union(&aob).union(&bob);
    ob.is_acyclic()
}

/// LIMM axiom (GOrd), Figure 7.
pub fn limm_consistent(x: &Execution) -> bool {
    if !sc_per_loc(x) || !atomicity(x) {
        return false;
    }
    let n = x.events.len();
    let r = reads(x);
    let w = writes(x);
    let f_rm = fences_matching(x, |f| f == FenceTy::Frm);
    let f_ww = fences_matching(x, |f| f == FenceTy::Fww);
    let f_sc = fences_matching(x, |f| f == FenceTy::Fsc);
    // Memory accesses (R ∪ W).
    let mem = r.union(&w);
    // (ord1) [R];po;[Frm];po;[R∪W]
    let ord1 = r.compose(&x.po).compose(&f_rm).compose(&x.po).compose(&mem);
    // (ord2) [W];po;[Fww];po;[W]
    let ord2 = w.compose(&x.po).compose(&f_ww).compose(&x.po).compose(&w);
    // (ord3) [Fsc ∪ Rsc ∪ codom(rmw)];po
    let rsc = Rel::identity_where(n, |i| matches!(x.events[i].lab, Lab::R { sc: true, .. }));
    let codom_rmw = Rel::identity_where(n, |i| x.rmw.pairs().iter().any(|(_, b)| *b == i));
    let dom_rmw = Rel::identity_where(n, |i| x.rmw.pairs().iter().any(|(a, _)| *a == i));
    let wsc = Rel::identity_where(n, |i| matches!(x.events[i].lab, Lab::W { sc: true, .. }));
    let ord3 = f_sc.union(&rsc).union(&codom_rmw).compose(&x.po);
    // (ord4) po;[Fsc ∪ Wsc ∪ dom(rmw)]
    let ord4 = x.po.compose(&f_sc.union(&wsc).union(&dom_rmw));
    let ord = ord1.union(&ord2).union(&ord3).union(&ord4);
    let ghb = ord
        .union(&x.external(&x.rf))
        .union(&x.external(&x.co))
        .union(&x.external(&x.fr()));
    ghb.is_acyclic()
}

/// Checks consistency of an execution in a model.
pub fn consistent(model: Model, x: &Execution) -> bool {
    match model {
        Model::X86 => x86_consistent(x),
        Model::Arm => arm_consistent(x),
        Model::Limm => limm_consistent(x),
    }
}

/// All observable outcomes of `prog` under `model`.
pub fn outcomes(
    model: Model,
    prog: &crate::exec::Program,
) -> std::collections::BTreeSet<crate::exec::Outcome> {
    crate::exec::enumerate_executions(prog)
        .iter()
        .filter(|x| consistent(model, x))
        .map(crate::exec::Outcome::of)
        .collect()
}

/// [`outcomes`] with the candidate-execution space of *one* program
/// partitioned across up to `jobs` worker threads (see
/// [`crate::exec::execution_partitions`]). Consistency filtering and
/// outcome projection happen inside each worker; the per-partition sets
/// are unioned at the end. `BTreeSet` union is commutative, so the result
/// equals the serial [`outcomes`] for any `jobs`.
pub fn outcomes_par(
    model: Model,
    prog: &crate::exec::Program,
    jobs: usize,
) -> std::collections::BTreeSet<crate::exec::Outcome> {
    outcomes_on(lasagne::pipeline::pool::Pool::shared(), model, prog, jobs)
}

/// [`outcomes_par`] on an explicit work-stealing pool (see
/// [`crate::exec::enumerate_executions_on`] for why nested enumerations
/// share the pipeline's pool instead of spawning their own threads).
pub fn outcomes_on(
    pool: &lasagne::pipeline::pool::Pool,
    model: Model,
    prog: &crate::exec::Program,
    jobs: usize,
) -> std::collections::BTreeSet<crate::exec::Outcome> {
    let parts = crate::exec::execution_partitions(prog);
    let per_part = pool.par_map(jobs, parts, |_, part| {
        crate::exec::enumerate_partition(prog, part)
            .iter()
            .filter(|x| consistent(model, x))
            .map(crate::exec::Outcome::of)
            .collect::<std::collections::BTreeSet<_>>()
    });
    let mut all = std::collections::BTreeSet::new();
    for s in per_part {
        all.extend(s);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Op, Outcome, Program};

    fn reg_outcome(o: &Outcome, tid: usize, r: u8) -> u64 {
        o.regs
            .iter()
            .find(|((t, rr), _)| *t == tid && *rr == r)
            .map(|(_, v)| *v)
            .unwrap()
    }

    /// SB (Figure 1): a=b=0 allowed on x86, Arm, and LIMM.
    #[test]
    fn sb_allows_non_sc_everywhere() {
        let sb = |f: Option<FenceTy>| {
            let mut t0 = vec![Op::St { x: 0, v: 1 }];
            let mut t1 = vec![Op::St { x: 1, v: 1 }];
            if let Some(ft) = f {
                t0.push(Op::Fence(ft));
                t1.push(Op::Fence(ft));
            }
            t0.push(Op::Ld { r: 0, x: 1 });
            t1.push(Op::Ld { r: 0, x: 0 });
            Program {
                locs: 2,
                threads: vec![t0, t1],
            }
        };
        for model in [Model::X86, Model::Arm, Model::Limm] {
            let os = outcomes(model, &sb(None));
            let weak = os
                .iter()
                .any(|o| reg_outcome(o, 1, 0) == 0 && reg_outcome(o, 2, 0) == 0);
            assert!(weak, "{model:?} must allow SB a=b=0");
        }
        // With full fences, the weak outcome disappears in every model.
        for (model, fence) in [
            (Model::X86, FenceTy::Mfence),
            (Model::Arm, FenceTy::DmbFf),
            (Model::Limm, FenceTy::Fsc),
        ] {
            let os = outcomes(model, &sb(Some(fence)));
            let weak = os
                .iter()
                .any(|o| reg_outcome(o, 1, 0) == 0 && reg_outcome(o, 2, 0) == 0);
            assert!(!weak, "{model:?} fenced SB must forbid a=b=0");
        }
    }

    /// MP (Figure 1): a=1,b=0 disallowed on x86, allowed on Arm.
    #[test]
    fn mp_distinguishes_x86_from_arm() {
        let mp = Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 1 }],
                vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
            ],
        };
        let weak = |o: &Outcome| reg_outcome(o, 2, 0) == 1 && reg_outcome(o, 2, 1) == 0;
        assert!(
            !outcomes(Model::X86, &mp).iter().any(weak),
            "x86 forbids MP a=1,b=0"
        );
        assert!(
            outcomes(Model::Arm, &mp).iter().any(weak),
            "Arm allows MP a=1,b=0"
        );
        // Plain LIMM non-atomics are weaker than x86: allowed.
        assert!(
            outcomes(Model::Limm, &mp).iter().any(weak),
            "LIMM allows unfenced MP"
        );
    }

    /// MP with the paper's Figure 9 fence placement is forbidden in LIMM
    /// and in Arm.
    #[test]
    fn figure9_fenced_mp_is_tight() {
        let limm = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 0, v: 1 },
                    Op::Fence(FenceTy::Fww),
                    Op::St { x: 1, v: 1 },
                ],
                vec![
                    Op::Ld { r: 0, x: 1 },
                    Op::Fence(FenceTy::Frm),
                    Op::Ld { r: 1, x: 0 },
                ],
            ],
        };
        let weak = |o: &Outcome| reg_outcome(o, 2, 0) == 1 && reg_outcome(o, 2, 1) == 0;
        assert!(
            !outcomes(Model::Limm, &limm).iter().any(weak),
            "Figure 9b forbids a=1,b=0"
        );

        let arm = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 1, v: 1 },
                    Op::Fence(FenceTy::DmbSt),
                    Op::St { x: 0, v: 1 },
                ],
                vec![
                    Op::Ld { r: 0, x: 1 },
                    Op::Fence(FenceTy::DmbLd),
                    Op::Ld { r: 1, x: 0 },
                ],
            ],
        };
        // NB: Figure 9c stores Y first then X under DMBST ordering; the weak
        // outcome reads r0=1 (from X=... wait — mirror the LIMM shape):
        let arm2 = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 0, v: 1 },
                    Op::Fence(FenceTy::DmbSt),
                    Op::St { x: 1, v: 1 },
                ],
                vec![
                    Op::Ld { r: 0, x: 1 },
                    Op::Fence(FenceTy::DmbLd),
                    Op::Ld { r: 1, x: 0 },
                ],
            ],
        };
        assert!(
            !outcomes(Model::Arm, &arm2).iter().any(weak),
            "Figure 9c forbids a=1,b=0"
        );
        let _ = arm;
    }

    /// Dropping either Figure 9 fence re-admits the weak MP outcome in LIMM
    /// — the mapping is *precise* (Theorem 7.3's necessity argument).
    #[test]
    fn figure9_fences_are_necessary() {
        let weak = |o: &Outcome| reg_outcome(o, 2, 0) == 1 && reg_outcome(o, 2, 1) == 0;
        // No Fww on the writer.
        let no_fww = Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 1 }],
                vec![
                    Op::Ld { r: 0, x: 1 },
                    Op::Fence(FenceTy::Frm),
                    Op::Ld { r: 1, x: 0 },
                ],
            ],
        };
        assert!(
            outcomes(Model::Limm, &no_fww).iter().any(weak),
            "without Fww the outcome returns"
        );
        // No Frm on the reader.
        let no_frm = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 0, v: 1 },
                    Op::Fence(FenceTy::Fww),
                    Op::St { x: 1, v: 1 },
                ],
                vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
            ],
        };
        assert!(
            outcomes(Model::Limm, &no_frm).iter().any(weak),
            "without Frm the outcome returns"
        );
    }

    /// Coherence: same-location writes + reads are SC-per-loc in all models.
    #[test]
    fn coherence_holds_in_all_models() {
        // T1: X=1; a=X — a must be 1 (reads own write; no other writer).
        let prog = Program {
            locs: 1,
            threads: vec![vec![Op::St { x: 0, v: 1 }, Op::Ld { r: 0, x: 0 }]],
        };
        for model in [Model::X86, Model::Arm, Model::Limm] {
            let os = outcomes(model, &prog);
            assert!(
                os.iter().all(|o| reg_outcome(o, 1, 0) == 1),
                "{model:?} violates coherence"
            );
        }
    }

    /// Atomicity: two competing successful RMWs cannot both read 0.
    #[test]
    fn atomicity_forbids_double_winner() {
        let prog = Program {
            locs: 1,
            threads: vec![
                vec![Op::Rmw {
                    r: 0,
                    x: 0,
                    expect: 0,
                    new: 1,
                }],
                vec![Op::Rmw {
                    r: 0,
                    x: 0,
                    expect: 0,
                    new: 2,
                }],
            ],
        };
        for model in [Model::X86, Model::Arm, Model::Limm] {
            let os = outcomes(model, &prog);
            let both_zero = os
                .iter()
                .any(|o| reg_outcome(o, 1, 0) == 0 && reg_outcome(o, 2, 0) == 0);
            assert!(!both_zero, "{model:?} violates atomicity");
            // And someone must be able to win.
            assert!(!os.is_empty());
        }
    }

    /// Figure 10 (left): RMWs act as full fences in LIMM/Arm — the
    /// SB-with-RMW variant forbids X=Y=2 (both RMWs succeeding after both
    /// relaxed stores would need a GHB cycle).
    #[test]
    fn figure10_rmw_full_fence() {
        // T1: Xna=1; RMW(Y,0,2)   T2: Yna=1; RMW(X,0,2)
        let prog = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::St { x: 0, v: 1 },
                    Op::Rmw {
                        r: 0,
                        x: 1,
                        expect: 0,
                        new: 2,
                    },
                ],
                vec![
                    Op::St { x: 1, v: 1 },
                    Op::Rmw {
                        r: 0,
                        x: 0,
                        expect: 0,
                        new: 2,
                    },
                ],
            ],
        };
        for model in [Model::Limm, Model::X86] {
            let os = outcomes(model, &prog);
            let bad = os.iter().any(|o| {
                o.mem.iter().any(|(l, v)| *l == 0 && *v == 2)
                    && o.mem.iter().any(|(l, v)| *l == 1 && *v == 2)
            });
            assert!(!bad, "{model:?} must disallow X=Y=2 in Figure 10");
        }
    }

    /// Figure 10 (right): a=b=0 disallowed when RMWs precede the reads.
    #[test]
    fn figure10_rmw_orders_reads() {
        let prog = Program {
            locs: 2,
            threads: vec![
                vec![
                    Op::Rmw {
                        r: 1,
                        x: 0,
                        expect: 0,
                        new: 2,
                    },
                    Op::Ld { r: 0, x: 1 },
                ],
                vec![
                    Op::Rmw {
                        r: 1,
                        x: 1,
                        expect: 0,
                        new: 2,
                    },
                    Op::Ld { r: 0, x: 0 },
                ],
            ],
        };
        for model in [Model::Limm, Model::X86] {
            let os = outcomes(model, &prog);
            let bad = os.iter().any(|o| {
                let a = o
                    .regs
                    .iter()
                    .find(|((t, r), _)| *t == 1 && *r == 0)
                    .unwrap()
                    .1;
                let b = o
                    .regs
                    .iter()
                    .find(|((t, r), _)| *t == 2 && *r == 0)
                    .unwrap()
                    .1;
                a == 0 && b == 0
            });
            assert!(!bad, "{model:?} must disallow a=b=0 in Figure 10");
        }
    }

    /// x86 is strictly stronger than LIMM on non-atomics: every x86-
    /// consistent execution of an unfenced program is LIMM-consistent.
    #[test]
    fn limm_weaker_than_x86_on_nonatomics() {
        let mp = Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }, Op::St { x: 1, v: 1 }],
                vec![Op::Ld { r: 0, x: 1 }, Op::Ld { r: 1, x: 0 }],
            ],
        };
        let x86: std::collections::BTreeSet<_> = outcomes(Model::X86, &mp);
        let limm: std::collections::BTreeSet<_> = outcomes(Model::Limm, &mp);
        assert!(x86.is_subset(&limm));
        assert!(x86.len() < limm.len(), "MP separates the models");
    }
}
