//! Executable axiomatic memory models for Lasagne (paper §6–§7).
//!
//! This crate is the reproduction's substitute for the paper's ~12k lines
//! of Agda: instead of mechanised proofs, the mapping theorems (7.3, 7.4)
//! and the transformation-soundness results (Figure 11, Theorem 7.5) are
//! *model-checked* by exhaustive enumeration of candidate executions over
//! litmus programs — the paper's own examples (SB, MP, Figures 9 and 10)
//! plus randomly generated programs (see `tests/`).
//!
//! Contents:
//!
//! * [`rel`] — the relation calculus of §6.1 (composition, closures,
//!   acyclicity) over dense bit matrices;
//! * [`exec`] — litmus programs, events, and exhaustive enumeration of
//!   `⟨E, po, rf, co, rmw⟩` candidate executions;
//! * [`models`] — the x86-TSO, Armv8 and LIMM consistency predicates
//!   (Figures 6 and 7);
//! * [`mapping`] — the Figure 8 mapping schemes and the Theorem 7.1
//!   inclusion checker;
//! * [`litmus`] — the paper's litmus programs;
//! * [`transform`] — Figure 11 swap/elimination validation (Theorem 7.5).
//!
//! # Example
//!
//! ```
//! use lasagne_memmodel::litmus;
//! use lasagne_memmodel::mapping::check_chain;
//!
//! // Theorems 7.3 + 7.4 on the message-passing litmus test: translating
//! // MP from x86 through LIMM to Arm introduces no new behaviours.
//! check_chain(&litmus::mp()).unwrap();
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod litmus;
pub mod mapping;
pub mod models;
pub mod rel;
pub mod transform;

pub use exec::{Event, Execution, FenceTy, Lab, Op, Outcome, Program};
pub use litmus::{
    sweep_row, sweep_row_on, sweep_suite, sweep_suite_on, sweep_suite_within,
    sweep_suite_within_on, SuiteRow,
};
pub use mapping::check_chain_all;
pub use models::{consistent, outcomes, outcomes_on, outcomes_par, Model};
