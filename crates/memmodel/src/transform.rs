//! Model-level validation of the Figure 11 transformations: applying a
//! "safe" reordering or elimination to a LIMM program must not introduce
//! new outcomes (Theorem 7.5), and the table's ✗ entries must be refusable
//! by some witness program.

use crate::exec::{FenceTy, Op, Program};
use crate::models::{outcomes, Model};

/// The Figure 11 label of an [`Op`] (RMWs are classified as successful,
/// `Rsc·Wsc`, the conservative case).
pub fn op_label(op: &Op) -> lasagne_fences::Label {
    use lasagne_fences::Label;
    match op {
        Op::Ld { .. } => Label::Rna,
        Op::St { .. } => Label::Wna,
        Op::Rmw { .. } => Label::Rmw,
        Op::Fence(FenceTy::Frm) => Label::Frm,
        Op::Fence(FenceTy::Fww) => Label::Fww,
        Op::Fence(FenceTy::Fsc | FenceTy::Mfence | FenceTy::DmbFf) => Label::Fsc,
        Op::Fence(FenceTy::DmbLd) => Label::Frm,
        Op::Fence(FenceTy::DmbSt) => Label::Fww,
        // Appendix A accesses: conservatively pinned like RMWs.
        Op::LdA { .. } | Op::StR { .. } | Op::RmwAr { .. } => Label::Rmw,
    }
}

/// Whether two adjacent ops satisfy Figure 11a's side conditions for
/// reordering: label-level permission, plus different locations for memory
/// access pairs (constant-operand litmus ops are always independent).
pub fn ops_reorderable(a: &Op, b: &Op) -> bool {
    let loc = |op: &Op| match op {
        Op::Ld { x, .. }
        | Op::LdA { x, .. }
        | Op::St { x, .. }
        | Op::StR { x, .. }
        | Op::Rmw { x, .. }
        | Op::RmwAr { x, .. } => Some(*x),
        Op::Fence(_) => None,
    };
    if let (Some(x), Some(y)) = (loc(a), loc(b)) {
        if x == y {
            return false;
        }
    }
    // Loads targeting the same register are order-sensitive.
    let reg = |op: &Op| match op {
        Op::Ld { r, .. } | Op::LdA { r, .. } | Op::Rmw { r, .. } | Op::RmwAr { r, .. } => Some(*r),
        _ => None,
    };
    if let (Some(r1), Some(r2)) = (reg(a), reg(b)) {
        if r1 == r2 {
            return false;
        }
    }
    lasagne_fences::can_reorder(op_label(a), op_label(b))
}

/// All programs obtained from `p` by swapping one adjacent pair in one
/// thread, tagged with whether Figure 11a marks the swap safe.
pub fn adjacent_swaps(p: &Program) -> Vec<(Program, bool)> {
    let mut out = Vec::new();
    for (t, ops) in p.threads.iter().enumerate() {
        for i in 0..ops.len().saturating_sub(1) {
            let mut q = p.clone();
            q.threads[t].swap(i, i + 1);
            out.push((q, ops_reorderable(&ops[i], &ops[i + 1])));
        }
    }
    out
}

/// Checks Theorem 7.5 on one program: every Figure 11a-safe adjacent swap
/// keeps `outcomes(LIMM, swapped) ⊆ outcomes(LIMM, original)`.
pub fn check_safe_swaps(p: &Program) -> Result<(), String> {
    let base = outcomes(Model::Limm, p);
    for (q, safe) in adjacent_swaps(p) {
        if !safe {
            continue;
        }
        let after = outcomes(Model::Limm, &q);
        if !after.is_subset(&base) {
            return Err(format!(
                "safe swap introduced outcomes: {:?} vs {:?}\nprogram: {q:?}",
                after.difference(&base).collect::<Vec<_>>(),
                base
            ));
        }
    }
    Ok(())
}

/// §7.2 "Speculative Load Introduction": inserting a load whose value is
/// never used must not change observable behaviour. At the model level the
/// introduced read defines a register absent from the source program, so
/// the check projects target outcomes onto the source's registers.
pub fn check_speculative_load_intro(
    p: &Program,
    tid: usize,
    at: usize,
    x: u8,
) -> Result<(), String> {
    // Fresh register number: one past the maximum used.
    let fresh = p
        .threads
        .iter()
        .flatten()
        .filter_map(|op| match op {
            Op::Ld { r, .. } | Op::LdA { r, .. } | Op::Rmw { r, .. } | Op::RmwAr { r, .. } => {
                Some(*r)
            }
            _ => None,
        })
        .max()
        .map_or(0, |m| m + 1);
    let mut q = p.clone();
    q.threads[tid].insert(at, Op::Ld { r: fresh, x });
    let base = outcomes(Model::Limm, p);
    for o in outcomes(Model::Limm, &q) {
        let projected = crate::exec::Outcome {
            regs: o
                .regs
                .iter()
                .filter(|((t, r), _)| !(*t == tid + 1 && *r == fresh))
                .copied()
                .collect(),
            mem: o.mem.clone(),
        };
        if !base.contains(&projected) {
            return Err(format!(
                "speculative load at t{tid}[{at}] of x{x} introduced {projected:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus;
    use crate::mapping::x86_to_limm;

    /// Theorem 7.5 over the mapped paper suite: all ✓-swaps are sound.
    #[test]
    fn safe_swaps_sound_on_paper_suite() {
        for (name, p) in litmus::paper_suite() {
            let ir = x86_to_limm(&p);
            check_safe_swaps(&ir).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    /// An ✗ entry matters: swapping `Ld; Frm` (forbidden) in the mapped MP
    /// program re-admits the weak outcome.
    #[test]
    fn unsafe_swap_has_witness() {
        let ir = x86_to_limm(&litmus::mp());
        // Thread 2 is [Ld r0 Y, Frm, Ld r1 X, Frm]; swap ops 0 and 1.
        let mut bad = ir.clone();
        assert!(matches!(bad.threads[1][0], Op::Ld { .. }));
        assert!(matches!(bad.threads[1][1], Op::Fence(FenceTy::Frm)));
        assert!(!ops_reorderable(&bad.threads[1][0], &bad.threads[1][1]));
        bad.threads[1].swap(0, 1);
        let base = outcomes(Model::Limm, &ir);
        let after = outcomes(Model::Limm, &bad);
        assert!(
            !after.is_subset(&base),
            "the forbidden Rna·Frm swap must be observable"
        );
    }

    /// Fww·Wna (forbidden swap) also has a witness, on the writer side.
    #[test]
    fn unsafe_fww_swap_has_witness() {
        let ir = x86_to_limm(&litmus::mp());
        // Thread 1 is [Fww, St X, Fww, St Y]; swapping ops 2 and 3 moves the
        // second store above its fence.
        let mut bad = ir.clone();
        assert!(matches!(bad.threads[0][2], Op::Fence(FenceTy::Fww)));
        assert!(matches!(bad.threads[0][3], Op::St { .. }));
        assert!(!ops_reorderable(&bad.threads[0][2], &bad.threads[0][3]));
        bad.threads[0].swap(2, 3);
        let base = outcomes(Model::Limm, &ir);
        let after = outcomes(Model::Limm, &bad);
        assert!(
            !after.is_subset(&base),
            "the forbidden Fww·Wna swap must be observable"
        );
    }

    /// §7.2: speculative load introduction is sound on LIMM — at every
    /// position of every mapped litmus program.
    #[test]
    fn speculative_load_introduction_sound() {
        for (name, p) in litmus::paper_suite().into_iter().take(6) {
            let ir = x86_to_limm(&p);
            for (t, ops) in ir.threads.iter().enumerate() {
                for at in 0..=ops.len().min(2) {
                    for x in 0..2u8 {
                        check_speculative_load_intro(&ir, t, at, x)
                            .unwrap_or_else(|e| panic!("{name}: {e}"));
                    }
                }
            }
        }
    }

    /// Elimination soundness: dropping a redundant adjacent same-location
    /// read (RAR) never adds outcomes.
    #[test]
    fn rar_elimination_sound() {
        // T2 reads X twice; eliminating the second read = replacing it with
        // a program where r1 is guaranteed equal to r0 — at the model level
        // we check outcome *projection*: every outcome of the reduced
        // program extends to one of the original with r1 = r0.
        let orig = Program {
            locs: 2,
            threads: vec![
                vec![Op::St { x: 0, v: 1 }],
                vec![Op::Ld { r: 0, x: 0 }, Op::Ld { r: 1, x: 0 }],
            ],
        };
        let reduced = Program {
            locs: 2,
            threads: vec![vec![Op::St { x: 0, v: 1 }], vec![Op::Ld { r: 0, x: 0 }]],
        };
        let base = outcomes(Model::Limm, &orig);
        for o in outcomes(Model::Limm, &reduced) {
            let r0 = o
                .regs
                .iter()
                .find(|((t, r), _)| *t == 2 && *r == 0)
                .unwrap()
                .1;
            let mut extended = o.clone();
            extended.regs.push(((2, 1), r0));
            extended.regs.sort();
            assert!(
                base.contains(&extended),
                "RAR-reduced outcome {extended:?} missing from original"
            );
        }
    }
}
