//! Property-based validation of the mapping theorems: for randomly
//! generated concurrent programs, translating x86 → LIMM → Arm must never
//! introduce behaviours (Theorems 7.3, 7.4, and the Figure 8c composition),
//! and Figure 11a-safe adjacent swaps must be sound under LIMM
//! (Theorem 7.5).

use lasagne_memmodel::exec::{FenceTy, Op, Program};
use lasagne_memmodel::mapping::{check_chain, check_reverse_chain, x86_to_limm};
use lasagne_memmodel::transform::check_safe_swaps;
use lasagne_qc::collection;
use lasagne_qc::prelude::*;

fn any_x86_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2, 0u8..2).prop_map(|(r, x)| Op::Ld { r, x }),
        (0u8..2, 1u64..3).prop_map(|(x, v)| Op::St { x, v }),
        (0u8..2, 0u64..2, 3u64..5).prop_map(|(x, e, n)| Op::Rmw {
            r: 1,
            x,
            expect: e,
            new: n
        }),
        Just(Op::Fence(FenceTy::Mfence)),
    ]
}

fn any_program() -> impl Strategy<Value = Program> {
    // Two threads, up to 3 ops each: large enough to exhibit SB/MP/LB
    // shapes, small enough for exhaustive enumeration.
    (
        collection::vec(any_x86_op(), 1..=3),
        collection::vec(any_x86_op(), 1..=3),
    )
        .prop_map(|(t0, t1)| Program {
            locs: 2,
            threads: vec![t0, t1],
        })
}

fn any_arm_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..2, 0u8..2).prop_map(|(r, x)| Op::Ld { r, x }),
        (0u8..2, 0u8..2).prop_map(|(r, x)| Op::LdA { r, x }),
        (0u8..2, 1u64..3).prop_map(|(x, v)| Op::St { x, v }),
        (0u8..2, 1u64..3).prop_map(|(x, v)| Op::StR { x, v }),
        (0u8..2, 0u64..2, 3u64..5).prop_map(|(x, e, n)| Op::Rmw {
            r: 1,
            x,
            expect: e,
            new: n
        }),
        Just(Op::Fence(FenceTy::DmbFf)),
        Just(Op::Fence(FenceTy::DmbLd)),
        Just(Op::Fence(FenceTy::DmbSt)),
    ]
}

fn any_arm_program() -> impl Strategy<Value = Program> {
    (
        collection::vec(any_arm_op(), 1..=3),
        collection::vec(any_arm_op(), 1..=3),
    )
        .prop_map(|(t0, t1)| Program {
            locs: 2,
            threads: vec![t0, t1],
        })
}

fn rmw_count(p: &Program) -> usize {
    p.threads
        .iter()
        .flatten()
        .filter(|o| matches!(o, Op::Rmw { .. } | Op::RmwAr { .. }))
        .count()
}

properties! {
    config = Config::with_cases(256);

    /// Theorem 7.1 for the full Figure 8 chain on random programs.
    fn random_programs_map_correctly(p in any_program()) {
        prop_assume!(rmw_count(&p) <= 2);
        check_chain(&p).map_err(|e| TestCaseError::fail(e))?;
    }

    /// Theorem 7.5: Figure 11a-safe swaps are sound under LIMM on random
    /// mapped programs.
    fn random_safe_swaps_sound(p in any_program()) {
        prop_assume!(rmw_count(&p) <= 1);
        let ir = x86_to_limm(&p);
        check_safe_swaps(&ir).map_err(TestCaseError::fail)?;
    }

    /// Appendix B on random Arm programs (including release/acquire
    /// accesses): Arm → IR → x86 must not introduce behaviours.
    fn random_reverse_chain_correct(p in any_arm_program()) {
        prop_assume!(rmw_count(&p) <= 2);
        check_reverse_chain(&p).map_err(TestCaseError::fail)?;
    }
}
