//! Exhaustive validation of Figure 11a: for *every* pair of event labels,
//! the ✓ entries are checked sound (swapping never adds LIMM behaviours)
//! over a family of two-thread context programs, and key ✗ entries are
//! shown to matter with concrete witnesses.

use lasagne_fences::{can_reorder, Label};
use lasagne_memmodel::exec::{FenceTy, Op, Program};
use lasagne_memmodel::models::{outcomes, Model};
use std::collections::BTreeSet;

/// Ops realising each Figure 11 label. Memory accesses use different
/// locations (x0 vs x1) and different registers, as the table requires.
fn op_for(label: Label, first: bool) -> Op {
    let x = u8::from(!first);
    let r = u8::from(!first);
    match label {
        Label::Rna => Op::Ld { r, x },
        Label::Wna => Op::St { x, v: 7 },
        // A failed RMW: expects a value never written anywhere.
        Label::Rsc => Op::Rmw {
            r,
            x,
            expect: 99,
            new: 50,
        },
        // A successful RMW (reads the init 0).
        Label::Rmw => Op::Rmw {
            r,
            x,
            expect: 0,
            new: 5,
        },
        Label::Frm => Op::Fence(FenceTy::Frm),
        Label::Fww => Op::Fence(FenceTy::Fww),
        Label::Fsc => Op::Fence(FenceTy::Fsc),
    }
}

const ALL: [Label; 7] = [
    Label::Rna,
    Label::Wna,
    Label::Rsc,
    Label::Rmw,
    Label::Frm,
    Label::Fww,
    Label::Fsc,
];

/// Context partner threads that can observe reordering.
fn partner_threads() -> Vec<Vec<Op>> {
    vec![
        vec![Op::Ld { r: 2, x: 0 }, Op::Ld { r: 3, x: 1 }],
        vec![Op::Ld { r: 2, x: 1 }, Op::Ld { r: 3, x: 0 }],
        vec![Op::St { x: 0, v: 3 }, Op::Ld { r: 2, x: 1 }],
        vec![Op::St { x: 1, v: 3 }, Op::Ld { r: 2, x: 0 }],
        vec![
            Op::Ld { r: 2, x: 1 },
            Op::Fence(FenceTy::Frm),
            Op::Ld { r: 3, x: 0 },
        ],
        vec![
            Op::St { x: 0, v: 3 },
            Op::Fence(FenceTy::Fww),
            Op::St { x: 1, v: 3 },
        ],
        // LB observer: reads x1, then (fenced) writes x0. Witnesses a load
        // sinking below its trailing fence — only a load-buffering shape
        // can see the loss of the [R];po;[Frm];po;[W] edge.
        vec![
            Op::Ld { r: 2, x: 1 },
            Op::Fence(FenceTy::Frm),
            Op::St { x: 0, v: 6 },
        ],
        // SB observer: an RMW (full fence in LIMM) to x1 then a load of x0.
        // Witnesses write→read orderings such as Rmw·Rna (Figure 10 right).
        vec![
            Op::Rmw {
                r: 2,
                x: 1,
                expect: 0,
                new: 6,
            },
            Op::Ld { r: 3, x: 0 },
        ],
    ]
}

/// Thread-0 shells surrounding the pair under test.
fn shells(a: Op, b: Op) -> Vec<Vec<Op>> {
    vec![
        vec![a, b],
        vec![Op::St { x: 0, v: 1 }, a, b],
        vec![a, b, Op::Ld { r: 4, x: 1 }],
        vec![Op::St { x: 1, v: 2 }, a, b, Op::Ld { r: 4, x: 0 }],
        // Trailing store: completes the thread-0 half of LB/SB shapes so
        // pair-vs-later-write orderings become observable.
        vec![a, b, Op::St { x: 1, v: 4 }],
    ]
}

fn swap_pair(ops: &[Op], at: usize) -> Vec<Op> {
    let mut v = ops.to_vec();
    v.swap(at, at + 1);
    v
}

/// Whether swapping (a, b) inside any context of the family changes the
/// LIMM outcome set; returns the number of contexts where it did.
fn contexts_with_new_outcomes(la: Label, lb: Label) -> usize {
    let a = op_for(la, true);
    let b = op_for(lb, false);
    let mut witnesses = 0;
    for shell in shells(a, b) {
        let at = shell.iter().position(|o| *o == a).expect("pair present");
        for partner in partner_threads() {
            let orig = Program {
                locs: 2,
                threads: vec![shell.clone(), partner.clone()],
            };
            let swapped = Program {
                locs: 2,
                threads: vec![swap_pair(&shell, at), partner.clone()],
            };
            let base: BTreeSet<_> = outcomes(Model::Limm, &orig);
            let after: BTreeSet<_> = outcomes(Model::Limm, &swapped);
            if !after.is_subset(&base) {
                witnesses += 1;
            }
        }
    }
    witnesses
}

/// Every ✓ entry of Figure 11a is sound across the whole context family.
#[test]
fn all_check_marked_entries_are_sound() {
    for la in ALL {
        for lb in ALL {
            if !can_reorder(la, lb) {
                continue;
            }
            // Identical same-location accesses are excluded by the table's
            // side conditions (our op_for uses distinct locations already).
            let witnesses = contexts_with_new_outcomes(la, lb);
            assert_eq!(
                witnesses, 0,
                "Figure 11a marks {la:?}·{lb:?} safe but swapping changed outcomes"
            );
        }
    }
}

/// The crosses that carry the paper's correctness story have witnesses:
/// a load may not sink below its trailing `Frm`, a store may not hoist
/// above its leading `Fww`, and nothing crosses `Fsc`.
#[test]
fn key_cross_marked_entries_have_witnesses() {
    for (la, lb) in [
        (Label::Rna, Label::Frm),
        (Label::Fww, Label::Wna),
        (Label::Rna, Label::Fsc),
        (Label::Wna, Label::Fsc),
        (Label::Fsc, Label::Rna),
        (Label::Fsc, Label::Wna),
    ] {
        assert!(!can_reorder(la, lb), "{la:?}·{lb:?} should be ✗");
        assert!(
            contexts_with_new_outcomes(la, lb) > 0,
            "no witness found for forbidden swap {la:?}·{lb:?}"
        );
    }
}

/// RMWs pin every memory access (row and column ✗ against Rmw): witnesses
/// exist for the access-vs-RMW orderings.
#[test]
fn rmw_pinning_has_witnesses() {
    for (la, lb) in [(Label::Wna, Label::Rmw), (Label::Rmw, Label::Rna)] {
        assert!(!can_reorder(la, lb));
        assert!(
            contexts_with_new_outcomes(la, lb) > 0,
            "no witness for {la:?}·{lb:?}"
        );
    }
}
