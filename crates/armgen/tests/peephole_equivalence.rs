//! The frame-slot peephole must be a pure optimization: on every Phoenix
//! benchmark, under every pipeline configuration, the cleaned module
//! computes the same checksum as the raw lowering, preserves every `dmb`,
//! and strictly shrinks the instruction stream.

use lasagne_armgen::lower::{lower_module, lower_module_raw};
use lasagne_armgen::machine::ArmMachine;
use lasagne_armgen::peephole::peephole_module;
use lasagne_armgen::AModule;
use lasagne_phoenix::{all_benchmarks, Workload};

fn run(am: &AModule, w: &Workload) -> u64 {
    let idx = am.func_by_name("main").expect("main");
    let mut arm = ArmMachine::new(am);
    for (addr, bytes) in &w.mem_init {
        arm.mem.write(*addr, bytes);
    }
    arm.run(idx, &w.args, &[])
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        .ret
}

fn pipelines() -> Vec<(&'static str, fn(&mut lasagne_lir::Module))> {
    fn lifted(_: &mut lasagne_lir::Module) {}
    fn optimized(m: &mut lasagne_lir::Module) {
        lasagne_refine::refine_module(m);
        lasagne_fences::place_fences_module(m, lasagne_fences::Strategy::StackAware);
        lasagne_fences::merge_fences_module(m);
        lasagne_opt::standard_pipeline(m, 3);
    }
    vec![("lifted", lifted), ("optimized", optimized)]
}

#[test]
fn peephole_preserves_checksums_and_barriers() {
    for b in all_benchmarks(48) {
        for (pname, prep) in pipelines() {
            let mut m = lasagne_lifter::lift_binary(&b.binary)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            prep(&mut m);
            let raw = lower_module_raw(&m);
            let mut cleaned = raw.clone();
            let stats = peephole_module(&mut cleaned);

            assert_eq!(
                run(&raw, &b.workload),
                b.workload.expected_ret,
                "{} {pname} raw checksum",
                b.name
            );
            assert_eq!(
                run(&cleaned, &b.workload),
                b.workload.expected_ret,
                "{} {pname} peepholed checksum",
                b.name
            );
            assert_eq!(
                raw.count_dmbs(),
                cleaned.count_dmbs(),
                "{} {pname}: peephole must never touch barriers",
                b.name
            );
            assert!(
                cleaned.inst_count() < raw.inst_count(),
                "{} {pname}: peephole removed nothing",
                b.name
            );
            assert!(
                stats.loads_forwarded + stats.loads_deleted > 0,
                "{} {pname}: no slot traffic forwarded",
                b.name
            );
        }
    }
}

#[test]
fn default_lowering_applies_the_peephole() {
    let b = &all_benchmarks(32)[0];
    let m = lasagne_lifter::lift_binary(&b.binary).unwrap();
    let default = lower_module(&m);
    let raw = lower_module_raw(&m);
    assert!(default.inst_count() < raw.inst_count());
    assert_eq!(run(&default, &b.workload), b.workload.expected_ret);
}

#[test]
fn peephole_is_idempotent() {
    for b in all_benchmarks(32) {
        let m = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let mut am = lower_module_raw(&m);
        peephole_module(&mut am);
        let once = am.inst_count();
        let again = peephole_module(&mut am);
        assert_eq!(again.removed(), 0, "{}: second pass removed more", b.name);
        assert_eq!(
            again.loads_forwarded, 0,
            "{}: second pass rewrote more",
            b.name
        );
        assert_eq!(am.inst_count(), once);
    }
}

/// Runtime must improve: cycle counts with the peephole are strictly lower
/// on every benchmark (slot traffic costs MEM cycles).
#[test]
fn peephole_reduces_simulated_runtime() {
    for b in all_benchmarks(48) {
        let m = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let raw = lower_module_raw(&m);
        let mut cleaned = raw.clone();
        peephole_module(&mut cleaned);
        let cycles = |am: &AModule| {
            let idx = am.func_by_name("main").unwrap();
            let mut arm = ArmMachine::new(am);
            for (addr, bytes) in &b.workload.mem_init {
                arm.mem.write(*addr, bytes);
            }
            arm.run(idx, &b.workload.args, &[])
                .unwrap()
                .critical_path_cycles()
        };
        assert!(
            cycles(&cleaned) < cycles(&raw),
            "{}: peephole did not reduce simulated cycles",
            b.name
        );
    }
}
