//! Property test: the frame-slot peephole preserves the observable result
//! of randomly generated slot-traffic programs.
//!
//! Programs are straight-line sequences over four scratch registers and
//! four frame slots, mixing the exact instruction shapes the lowering
//! emits (slot loads/stores at 64-bit width, narrow stores, immediates,
//! ALU ops, barriers). The observation is a hash of every register and
//! every slot folded into `x0` at the end — so any forwarding or
//! dead-store mistake changes the returned value.

use lasagne_armgen::inst::{ABlock, AFunc, AInst, AMem, AModule, ARet, ATerm, AluOp, Dmb, Sz, X};
use lasagne_armgen::machine::ArmMachine;
use lasagne_armgen::peephole::peephole_function;
use lasagne_qc::collection;
use lasagne_qc::prelude::*;

const FP: X = X(29);
const REGS: [X; 4] = [X(9), X(10), X(11), X(12)];
const SLOTS: [i32; 4] = [0, 16, 32, 48];

/// One step of a random program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Store { r: usize, s: usize, narrow: bool },
    Load { r: usize, s: usize, narrow: bool },
    Imm { r: usize, v: u64 },
    Add { d: usize, a: usize, b: usize },
    Barrier,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..4usize, 0..4usize, any::<bool>()).prop_map(|(r, s, narrow)| Step::Store {
            r,
            s,
            narrow
        }),
        (0..4usize, 0..4usize, any::<bool>()).prop_map(|(r, s, narrow)| Step::Load {
            r,
            s,
            narrow
        }),
        (0..4usize, any::<u64>()).prop_map(|(r, v)| Step::Imm { r, v }),
        (0..4usize, 0..4usize, 0..4usize).prop_map(|(d, a, b)| Step::Add { d, a, b }),
        Just(Step::Barrier),
    ]
}

fn build(steps: &[Step]) -> AFunc {
    let mut insts = Vec::new();
    // Deterministic initial state: registers and slots all defined.
    for (i, r) in REGS.iter().enumerate() {
        insts.push(AInst::MovImm {
            rd: *r,
            imm: 0x1111_2222 * (i as u64 + 1),
        });
    }
    for (i, off) in SLOTS.iter().enumerate() {
        insts.push(AInst::MovImm {
            rd: X(13),
            imm: 0x9999_0000 + i as u64,
        });
        insts.push(AInst::Str {
            sz: Sz::X,
            rt: X(13),
            mem: AMem {
                base: FP,
                off: *off,
            },
        });
    }
    for st in steps {
        match *st {
            Step::Store { r, s, narrow } => insts.push(AInst::Str {
                sz: if narrow { Sz::W } else { Sz::X },
                rt: REGS[r],
                mem: AMem {
                    base: FP,
                    off: SLOTS[s],
                },
            }),
            Step::Load { r, s, narrow } => insts.push(AInst::Ldr {
                sz: if narrow { Sz::W } else { Sz::X },
                rt: REGS[r],
                mem: AMem {
                    base: FP,
                    off: SLOTS[s],
                },
            }),
            Step::Imm { r, v } => insts.push(AInst::MovImm {
                rd: REGS[r],
                imm: v,
            }),
            Step::Add { d, a, b } => insts.push(AInst::Alu {
                op: AluOp::Add,
                rd: REGS[d],
                rn: REGS[a],
                rm: REGS[b],
                ra: X::ZR,
            }),
            Step::Barrier => insts.push(AInst::DmbI { kind: Dmb::Ff }),
        }
    }
    // Observation: fold every register and slot into x0.
    insts.push(AInst::MovImm { rd: X(0), imm: 0 });
    for r in REGS {
        insts.push(AInst::Alu {
            op: AluOp::Eor,
            rd: X(0),
            rn: X(0),
            rm: r,
            ra: X::ZR,
        });
        // Rotate-ish mix so ordering matters: x0 = x0*3 (via add) xor r.
        insts.push(AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            rm: X(0),
            ra: X::ZR,
        });
    }
    for off in SLOTS {
        insts.push(AInst::Ldr {
            sz: Sz::X,
            rt: X(13),
            mem: AMem { base: FP, off },
        });
        insts.push(AInst::Alu {
            op: AluOp::Eor,
            rd: X(0),
            rn: X(0),
            rm: X(13),
            ra: X::ZR,
        });
        insts.push(AInst::Alu {
            op: AluOp::Add,
            rd: X(0),
            rn: X(0),
            rm: X(0),
            ra: X::ZR,
        });
    }
    AFunc {
        name: "prog".into(),
        int_params: 0,
        fp_params: 0,
        frame_size: 64,
        ret: ARet::Int,
        blocks: vec![ABlock {
            insts,
            term: Some(ATerm::Ret),
        }],
    }
}

fn eval(f: AFunc) -> u64 {
    let m = AModule {
        funcs: vec![f],
        externs: vec![],
        globals: vec![],
    };
    let mut arm = ArmMachine::new(&m);
    arm.run(0, &[], &[])
        .expect("straight-line program runs")
        .ret
}

properties! {
    config = Config::with_cases(256);

    fn peephole_preserves_observable_state(steps in collection::vec(step(), 0..40)) {
        let raw = build(&steps);
        let mut cleaned = raw.clone();
        let _ = peephole_function(&mut cleaned);
        prop_assert_eq!(eval(raw), eval(cleaned));
    }

    fn peephole_never_grows_code(steps in collection::vec(step(), 0..40)) {
        let raw = build(&steps);
        let mut cleaned = raw.clone();
        let _ = peephole_function(&mut cleaned);
        prop_assert!(cleaned.blocks[0].insts.len() <= raw.blocks[0].insts.len());
    }
}

/// The generated observation must be sensitive to register and slot
/// differences (sanity check of the harness itself).
#[test]
fn observation_distinguishes_states() {
    let a = build(&[Step::Imm { r: 0, v: 1 }]);
    let b = build(&[Step::Imm { r: 0, v: 2 }]);
    assert_ne!(eval(a), eval(b));
    let c = build(&[
        Step::Imm { r: 0, v: 1 },
        Step::Store {
            r: 0,
            s: 2,
            narrow: false,
        },
    ]);
    let d = build(&[Step::Imm { r: 0, v: 1 }]);
    assert_ne!(eval(c), eval(d));
}
