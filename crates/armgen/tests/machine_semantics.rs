//! Unit-level semantics tests for the AArch64 interpreter and printer:
//! condition flags, sub-width memory, FP corner cases, and the textual
//! output forms.

use lasagne_armgen::inst::{
    ABlock, ACallee, AFunc, AInst, AMem, AModule, ARet, ATerm, AluOp, Blk, Cc, Dmb, FpOp, Sz, D, X,
};
use lasagne_armgen::machine::ArmMachine;

fn one_block_module(insts: Vec<AInst>, ret: ARet) -> AModule {
    AModule {
        funcs: vec![AFunc {
            name: "t".into(),
            int_params: 2,
            fp_params: 2,
            frame_size: 64,
            ret,
            blocks: vec![ABlock {
                insts,
                term: Some(ATerm::Ret),
            }],
        }],
        externs: vec![],
        globals: vec![],
    }
}

fn run_int(insts: Vec<AInst>, args: &[u64]) -> u64 {
    let m = one_block_module(insts, ARet::Int);
    let mut machine = ArmMachine::new(&m);
    machine.run(0, args, &[]).unwrap().ret
}

#[test]
fn alu_semantics() {
    // x0 = (x0 << 3) - x1
    let v = run_int(
        vec![
            AInst::MovImm { rd: X(9), imm: 3 },
            AInst::Alu {
                op: AluOp::Lsl,
                rd: X(0),
                rn: X(0),
                rm: X(9),
                ra: X::ZR,
            },
            AInst::Alu {
                op: AluOp::Sub,
                rd: X(0),
                rn: X(0),
                rm: X(1),
                ra: X::ZR,
            },
        ],
        &[5, 7],
    );
    assert_eq!(v, 5 * 8 - 7);
}

#[test]
fn udiv_by_zero_is_zero_on_arm() {
    // AArch64 defines x/0 = 0 (no trap).
    let v = run_int(
        vec![AInst::Alu {
            op: AluOp::UDiv,
            rd: X(0),
            rn: X(0),
            rm: X(1),
            ra: X::ZR,
        }],
        &[42, 0],
    );
    assert_eq!(v, 0);
}

#[test]
fn msub_computes_remainder() {
    // rem = x0 - (x0/x1)*x1
    let v = run_int(
        vec![
            AInst::Alu {
                op: AluOp::UDiv,
                rd: X(9),
                rn: X(0),
                rm: X(1),
                ra: X::ZR,
            },
            AInst::Alu {
                op: AluOp::MSub,
                rd: X(0),
                rn: X(9),
                rm: X(1),
                ra: X(0),
            },
        ],
        &[17, 5],
    );
    assert_eq!(v, 2);
}

#[test]
fn conditions_after_cmp() {
    for (a, b, cc, expect) in [
        (1u64, 2u64, Cc::Lt, 1u64),
        (2, 1, Cc::Lt, 0),
        (1, 1, Cc::Eq, 1),
        (u64::MAX, 1, Cc::Lt, 1), // signed: -1 < 1
        (u64::MAX, 1, Cc::Hi, 1), // unsigned: MAX > 1
        (3, 3, Cc::Ls, 1),
        (4, 3, Cc::Ls, 0),
    ] {
        let v = run_int(
            vec![
                AInst::Cmp { rn: X(0), rm: X(1) },
                AInst::CSet { rd: X(0), cc },
            ],
            &[a, b],
        );
        assert_eq!(v, expect, "cmp {a},{b} cset {cc}");
    }
}

#[test]
fn csel_picks_by_condition() {
    let v = run_int(
        vec![
            AInst::Cmp { rn: X(0), rm: X(1) },
            AInst::CSel {
                rd: X(0),
                rn: X(0),
                rm: X(1),
                cc: Cc::Gt,
            },
        ],
        &[9, 4],
    );
    assert_eq!(v, 9, "max(9,4)");
    let v = run_int(
        vec![
            AInst::Cmp { rn: X(0), rm: X(1) },
            AInst::CSel {
                rd: X(0),
                rn: X(0),
                rm: X(1),
                cc: Cc::Gt,
            },
        ],
        &[4, 9],
    );
    assert_eq!(v, 9, "max(4,9)");
}

#[test]
fn sub_width_loads_and_stores() {
    // Store a qword in the frame, read back a byte / halfword / word.
    let mem = AMem {
        base: X(29),
        off: 0,
    };
    let v = run_int(
        vec![
            AInst::MovImm {
                rd: X(9),
                imm: 0x1122_3344_5566_7788,
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem,
            },
            AInst::Ldr {
                sz: Sz::B,
                rt: X(0),
                mem: AMem {
                    base: X(29),
                    off: 1,
                },
            },
        ],
        &[0, 0],
    );
    assert_eq!(v, 0x77);
    let v = run_int(
        vec![
            AInst::MovImm {
                rd: X(9),
                imm: 0x1122_3344_5566_7788,
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem,
            },
            AInst::Ldr {
                sz: Sz::H,
                rt: X(0),
                mem: AMem {
                    base: X(29),
                    off: 2,
                },
            },
        ],
        &[0, 0],
    );
    assert_eq!(v, 0x5566, "little-endian halfword at byte offset 2");
    // Sub-width store must leave neighbours intact.
    let v = run_int(
        vec![
            AInst::MovImm {
                rd: X(9),
                imm: 0x1122_3344_5566_7788,
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem,
            },
            AInst::MovImm {
                rd: X(10),
                imm: 0xAB,
            },
            AInst::Str {
                sz: Sz::B,
                rt: X(10),
                mem: AMem {
                    base: X(29),
                    off: 3,
                },
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(0),
                mem,
            },
        ],
        &[0, 0],
    );
    assert_eq!(v, 0x1122_3344_AB66_7788);
}

#[test]
fn fcmp_with_nan_sets_cv() {
    // fcmp NaN, 1.0 → unordered → vs true, gt false, mi false.
    let m = one_block_module(
        vec![
            AInst::FCmp {
                dp: true,
                dn: D(0),
                dm: D(1),
            },
            AInst::CSet {
                rd: X(0),
                cc: Cc::Vs,
            },
            AInst::CSet {
                rd: X(9),
                cc: Cc::Gt,
            },
            AInst::Alu {
                op: AluOp::Lsl,
                rd: X(9),
                rn: X(9),
                rm: X(9),
                ra: X::ZR,
            },
        ],
        ARet::Int,
    );
    let mut machine = ArmMachine::new(&m);
    let r = machine
        .run(0, &[], &[f64::NAN.to_bits(), 1.0f64.to_bits()])
        .unwrap();
    assert_eq!(r.ret, 1, "vs must be set for unordered");
}

#[test]
fn fp_roundtrip_through_registers() {
    let m = one_block_module(
        vec![
            AInst::Fp {
                op: FpOp::FMul,
                dp: true,
                dd: D(0),
                dn: D(0),
                dm: D(1),
            },
            AInst::FMovToX { rd: X(0), dn: D(0) },
            AInst::FMovFromX { dd: D(0), rn: X(0) },
        ],
        ARet::Fp,
    );
    let mut machine = ArmMachine::new(&m);
    let r = machine
        .run(0, &[], &[2.5f64.to_bits(), 4.0f64.to_bits()])
        .unwrap();
    assert_eq!(f64::from_bits(r.ret), 10.0);
}

#[test]
fn exclusive_reservation_semantics() {
    // stxr without a matching ldxr reservation fails (status 1).
    let m = one_block_module(
        vec![
            AInst::MovImm {
                rd: X(9),
                imm: 0x4000_0000,
            },
            AInst::MovImm { rd: X(10), imm: 7 },
            AInst::Stxr {
                sz: Sz::X,
                rs: X(0),
                rt: X(10),
                rn: X(9),
            },
        ],
        ARet::Int,
    );
    let mut machine = ArmMachine::new(&m);
    let r = machine.run(0, &[], &[]).unwrap();
    assert_eq!(r.ret, 1, "stxr with no reservation must fail");
    assert_ne!(
        machine.mem.read_u64(0x4000_0000),
        7,
        "failed stxr must not write"
    );
}

#[test]
fn printer_forms() {
    let m = AModule {
        funcs: vec![AFunc {
            name: "p".into(),
            int_params: 0,
            fp_params: 0,
            frame_size: 16,
            ret: ARet::Void,
            blocks: vec![ABlock {
                insts: vec![
                    AInst::MovImm { rd: X(0), imm: 42 },
                    AInst::Ldr {
                        sz: Sz::W,
                        rt: X(1),
                        mem: AMem { base: X(0), off: 4 },
                    },
                    AInst::Str {
                        sz: Sz::B,
                        rt: X(1),
                        mem: AMem { base: X(0), off: 0 },
                    },
                    AInst::DmbI { kind: Dmb::Ld },
                    AInst::DmbI { kind: Dmb::Ff },
                    AInst::Ldxr {
                        sz: Sz::X,
                        rt: X(2),
                        rn: X(0),
                    },
                    AInst::Stxr {
                        sz: Sz::X,
                        rs: X(3),
                        rt: X(2),
                        rn: X(0),
                    },
                    AInst::Bl {
                        callee: ACallee::Extern(0),
                    },
                ],
                term: Some(ATerm::Cbnz {
                    rn: X(3),
                    then: Blk(0),
                    els: Blk(0),
                }),
            }],
        }],
        externs: vec!["malloc".into()],
        globals: vec![],
    };
    let text = lasagne_armgen::print::print_module(&m);
    assert!(text.contains("mov x0, #0x2a"));
    assert!(text.contains("ldr w1, [x0, #4]"));
    assert!(text.contains("strb w1, [x0]"));
    assert!(text.contains("dmb ishld"));
    assert!(text.contains("dmb ish\n"));
    assert!(text.contains("ldxr x2, [x0]"));
    assert!(text.contains("stxr w3, x2, [x0]"));
    assert!(text.contains("bl malloc"));
    assert!(text.contains("cbnz x3, .L0"));
}
