//! End-to-end: x86 binary → lift → (refine/fence/optimize) → Arm → run,
//! comparing against the LIR interpreter.

use lasagne_armgen::lower::lower_module;
use lasagne_armgen::machine::ArmMachine;
use lasagne_lir::interp::{Machine, Val, HEAP_BASE};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::BinaryBuilder;
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, SseOp, XmmRm};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};

fn build_sum_binary() -> lasagne_x86::binary::Binary {
    // sum(data, n): rax = Σ data[i]; running total published to [rdi] as we
    // go (so the function has shared stores as well as loads).
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    let top = a.label();
    let done = a.label();
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rax),
        imm: 0,
    });
    a.push(Inst::MovRmI {
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rcx),
        imm: 0,
    });
    a.bind(top);
    a.push(Inst::AluRRm {
        op: AluOp::Cmp,
        w: Width::W64,
        dst: Gpr::Rcx,
        src: Rm::Reg(Gpr::Rsi),
    });
    a.jcc(Cond::E, done);
    a.push(Inst::AluRRm {
        op: AluOp::Add,
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Mem(MemRef::base_index(Gpr::Rdi, Gpr::Rcx, 8, 0)),
    });
    a.push(Inst::MovRmR {
        w: Width::W64,
        dst: Rm::Mem(MemRef::base(Gpr::Rdi)),
        src: Gpr::Rax,
    });
    a.push(Inst::AluRmI {
        op: AluOp::Add,
        w: Width::W64,
        dst: Rm::Reg(Gpr::Rcx),
        imm: 1,
    });
    a.jmp(top);
    a.bind(done);
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("sum", a.finish(addr).unwrap());
    bin.finish()
}

#[test]
fn arm_matches_lir_interpreter_on_sum() {
    let m = lasagne_lifter::lift_binary(&build_sum_binary()).unwrap();
    let id = m.func_by_name("sum").unwrap();

    // LIR reference run.
    let mut lirm = Machine::new(&m);
    for i in 0..16u64 {
        lirm.mem.write_u64(HEAP_BASE + 8 * i, 3 * i + 1);
    }
    let expect = lirm
        .run(id, &[Val::B64(HEAP_BASE), Val::B64(16)])
        .unwrap()
        .ret
        .unwrap();

    // Arm run.
    let amod = lower_module(&m);
    let aidx = amod.func_by_name("sum").unwrap();
    let mut arm = ArmMachine::new(&amod);
    for i in 0..16u64 {
        arm.mem.write_u64(HEAP_BASE + 8 * i, 3 * i + 1);
    }
    let r = arm.run(aidx, &[HEAP_BASE, 16], &[]).unwrap();
    assert_eq!(Val::B64(r.ret), expect);
}

#[test]
fn fences_lower_to_dmbs_per_figure_8b() {
    let mut m = lasagne_lifter::lift_binary(&build_sum_binary()).unwrap();
    lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::Naive);
    let (frm, fww, _fsc) = lasagne_fences::count_fences(&m);
    let amod = lower_module(&m);
    let (ld, st, _ff) = amod.count_dmbs();
    assert_eq!(frm, ld, "every Frm must become dmb ishld");
    assert_eq!(fww, st, "every Fww must become dmb ishst");
    assert!(ld > 0 && st > 0);
}

#[test]
fn dmb_costs_show_up_in_cycles() {
    let m0 = lasagne_lifter::lift_binary(&build_sum_binary()).unwrap();
    let mut m1 = m0.clone();
    lasagne_fences::place_fences_module(&mut m1, lasagne_fences::Strategy::Naive);

    let run = |m: &lasagne_lir::Module| {
        let amod = lower_module(m);
        let idx = amod.func_by_name("sum").unwrap();
        let mut arm = ArmMachine::new(&amod);
        for i in 0..64u64 {
            arm.mem.write_u64(HEAP_BASE + 8 * i, i);
        }
        arm.run(idx, &[HEAP_BASE, 64], &[]).unwrap()
    };
    let plain = run(&m0);
    let fenced = run(&m1);
    assert_eq!(plain.ret, fenced.ret, "fences must not change the result");
    assert!(
        fenced.stats.cycles > plain.stats.cycles + 64 * 10,
        "fences must cost cycles: {} vs {}",
        fenced.stats.cycles,
        plain.stats.cycles
    );
    assert!(fenced.stats.dmbs.0 > 0);
}

#[test]
fn arm_rmw_uses_llsc_with_full_barriers() {
    // lock xadd via lifted binary.
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    a.push(Inst::LockXadd {
        w: Width::W64,
        mem: MemRef::base(Gpr::Rdi),
        src: Gpr::Rsi,
    });
    a.push(Inst::MovRRm {
        w: Width::W64,
        dst: Gpr::Rax,
        src: Rm::Reg(Gpr::Rsi),
    });
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("fa", a.finish(addr).unwrap());
    let m = lasagne_lifter::lift_binary(&bin.finish()).unwrap();

    let amod = lower_module(&m);
    let idx = amod.func_by_name("fa").unwrap();
    // Structure: the module must contain exactly 2 full barriers and an
    // exclusive pair.
    let (_, _, ff) = amod.count_dmbs();
    assert_eq!(ff, 2, "RMWsc lowers with leading+trailing dmb ish");

    let mut arm = ArmMachine::new(&amod);
    arm.mem.write_u64(HEAP_BASE, 100);
    let r = arm.run(idx, &[HEAP_BASE, 5], &[]).unwrap();
    assert_eq!(r.ret, 100, "xadd returns the old value");
    assert_eq!(arm.mem.read_u64(HEAP_BASE), 105);
    assert!(r.stats.exclusives >= 2, "ldxr+stxr executed");
}

#[test]
fn arm_float_pipeline() {
    // xmm0 = xmm0 * xmm1 + xmm1
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    a.push(Inst::SseScalar {
        op: SseOp::Mul,
        prec: FpPrec::Double,
        dst: Xmm(0),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::SseScalar {
        op: SseOp::Add,
        prec: FpPrec::Double,
        dst: Xmm(0),
        src: XmmRm::Reg(Xmm(1)),
    });
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("fma", a.finish(addr).unwrap());
    let m = lasagne_lifter::lift_binary(&bin.finish()).unwrap();
    let amod = lower_module(&m);
    let idx = amod.func_by_name("fma").unwrap();
    let mut arm = ArmMachine::new(&amod);
    let r = arm
        .run(idx, &[], &[3.0f64.to_bits(), 4.0f64.to_bits()])
        .unwrap();
    assert_eq!(f64::from_bits(r.ret), 16.0);
}

#[test]
fn optimized_code_runs_faster_on_arm() {
    let mut m = lasagne_lifter::lift_binary(&build_sum_binary()).unwrap();
    lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::Naive);
    let mut opt = m.clone();
    lasagne_opt::standard_pipeline(&mut opt, 4);

    let run = |m: &lasagne_lir::Module| {
        let amod = lower_module(m);
        let idx = amod.func_by_name("sum").unwrap();
        let mut arm = ArmMachine::new(&amod);
        for i in 0..64u64 {
            arm.mem.write_u64(HEAP_BASE + 8 * i, i);
        }
        arm.run(idx, &[HEAP_BASE, 64], &[]).unwrap()
    };
    let lifted = run(&m);
    let optimized = run(&opt);
    assert_eq!(lifted.ret, optimized.ret);
    assert!(
        optimized.stats.cycles < lifted.stats.cycles,
        "optimization should speed up the Arm run: {} vs {}",
        optimized.stats.cycles,
        lifted.stats.cycles
    );
}

#[test]
fn assembly_printer_smoke() {
    let m = lasagne_lifter::lift_binary(&build_sum_binary()).unwrap();
    let amod = lower_module(&m);
    let text = lasagne_armgen::print::print_module(&amod);
    assert!(text.contains("sum:"));
    assert!(text.contains("ldr"));
    assert!(text.contains("cbnz") || text.contains("b .L"));
}
