//! AArch64 backend for Lasagne: the IR→Arm mapping of Figure 8b, an
//! assembly printer, and a cost-model interpreter that produces the
//! simulated runtimes of Figures 12 and 15.
//!
//! The lowering ([`lower`]) translates LIR to an AArch64 subset
//! ([`inst`]): `Frm → dmb ishld`, `Fww → dmb ishst`, `Fsc → dmb ish`, and
//! atomic RMWs to `dmb ish; ldxr/stxr loop; dmb ish` (the §2.1 ll/sc
//! expansion). The interpreter ([`machine`]) executes the result with a
//! Cortex-A72-flavoured cost model whose dominant terms are the barriers —
//! the quantity the paper's fence optimizations attack.
//!
//! # Example
//!
//! ```
//! use lasagne_lir::func::{Function, Module};
//! use lasagne_lir::inst::{BinOp, InstKind, Operand, Terminator};
//! use lasagne_lir::types::Ty;
//! use lasagne_armgen::{lower::lower_module, machine::ArmMachine};
//!
//! let mut m = Module::new();
//! let mut f = Function::new("add", vec![Ty::I64, Ty::I64], Ty::I64);
//! let e = f.entry();
//! let s = f.push(e, Ty::I64, InstKind::Bin {
//!     op: BinOp::Add, lhs: Operand::Param(0), rhs: Operand::Param(1),
//! });
//! f.set_term(e, Terminator::Ret { val: Some(Operand::Inst(s)) });
//! m.add_func(f);
//!
//! let amod = lower_module(&m);
//! let mut machine = ArmMachine::new(&amod);
//! let r = machine.run(0, &[40, 2], &[])?;
//! assert_eq!(r.ret, 42);
//! # Ok::<(), lasagne_armgen::machine::ArmError>(())
//! ```

#![warn(missing_docs)]

pub mod inst;
pub mod lower;
pub mod machine;
pub mod peephole;
pub mod print;

pub use inst::{AFunc, AInst, AModule};
pub use lower::{assemble_module, lower_function, lower_module, lower_module_raw};
pub use machine::{ArmMachine, ArmRunResult, ArmStats};
pub use peephole::{peephole_function, peephole_function_traced, peephole_module, PeepholeStats};
