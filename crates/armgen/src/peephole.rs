//! Machine-level peephole cleanup for the frame-based lowering.
//!
//! The `-O0`-style backend keeps every LIR value in a frame slot, so the
//! instruction stream is dominated by `str xS, [x29, #off]` immediately
//! followed by `ldr xS, [x29, #off]` traffic. This pass removes that
//! traffic within basic blocks:
//!
//! * **store-to-load forwarding** — a load from a slot whose current value
//!   is known to live in a register becomes a `mov` (or disappears when it
//!   targets that same register);
//! * **redundant-store elimination** — storing a register back to a slot
//!   that is already known to hold that register's value is a no-op;
//! * **dead-store elimination** — a slot store overwritten later in the
//!   same block, with no possible read in between, is dropped.
//!
//! # Soundness invariant
//!
//! The pass relies on value/parameter/φ-shadow slots being **private and
//! never address-taken**: the only instructions that address them are the
//! `[x29, #off]` forms the lowering itself emits. Pointers derived from
//! `alloca`s address the alloca region of the frame (disjoint offsets) and
//! heap/global memory, never value slots, so loads and stores through
//! non-`x29` bases do not invalidate slot knowledge. Calls clobber every
//! scratch register (and `x0…`/`d0…`), so both maps are cleared at `bl`.
//! `dmb` barriers order *shared* memory; private slots may be forwarded
//! across them, exactly as a compiler keeps non-escaping locals in
//! registers across fences.

use crate::inst::{ACallee, AFunc, AInst, AModule, Sz, X};
use std::collections::BTreeMap;

/// Frame base register (`x29`).
const FP: X = X(29);

/// What the pass removed or rewrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeepholeStats {
    /// Slot loads rewritten into register moves.
    pub loads_forwarded: usize,
    /// Slot loads deleted outright (value already in the target register).
    pub loads_deleted: usize,
    /// Stores deleted because the slot already held the stored value.
    pub redundant_stores: usize,
    /// Stores deleted because they were overwritten before any read.
    pub dead_stores: usize,
}

impl PeepholeStats {
    /// Total instructions removed (forwarded loads are rewritten, not
    /// removed, so they are excluded).
    pub fn removed(&self) -> usize {
        self.loads_deleted + self.redundant_stores + self.dead_stores
    }

    fn add(&mut self, other: PeepholeStats) {
        self.loads_forwarded += other.loads_forwarded;
        self.loads_deleted += other.loads_deleted;
        self.redundant_stores += other.redundant_stores;
        self.dead_stores += other.dead_stores;
    }
}

/// Runs the peephole over every block of every function.
pub fn peephole_module(m: &mut AModule) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    for f in &mut m.funcs {
        stats.add(peephole_function(f));
    }
    stats
}

/// Runs the peephole over one function.
///
/// Frame slots are private to the function, so the peephole never looks
/// outside `f` — distinct functions may be cleaned concurrently, and
/// [`peephole_module`] equals running this on every function in any order.
pub fn peephole_function(f: &mut AFunc) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    for b in &mut f.blocks {
        stats.add(clean_block(&mut b.insts));
    }
    stats
}

/// [`peephole_function`] recording its hits into `ctx`: one
/// `armgen.peephole.*` counter per rewrite category and (when tracing is
/// enabled) a `peephole-hits` instant event when anything fired. Produces
/// the exact same function and stats as [`peephole_function`].
pub fn peephole_function_traced(f: &mut AFunc, ctx: &lasagne_trace::TraceCtx) -> PeepholeStats {
    let stats = peephole_function(f);
    ctx.add(
        "armgen.peephole.loads_forwarded",
        stats.loads_forwarded as u64,
    );
    ctx.add("armgen.peephole.loads_deleted", stats.loads_deleted as u64);
    ctx.add(
        "armgen.peephole.redundant_stores",
        stats.redundant_stores as u64,
    );
    ctx.add("armgen.peephole.dead_stores", stats.dead_stores as u64);
    if ctx.is_enabled() && (stats.removed() > 0 || stats.loads_forwarded > 0) {
        ctx.instant(
            "armgen",
            "peephole-hits",
            vec![
                ("func", lasagne_trace::ArgVal::from(f.name.as_str())),
                (
                    "forwarded",
                    lasagne_trace::ArgVal::from(stats.loads_forwarded),
                ),
                ("removed", lasagne_trace::ArgVal::from(stats.removed())),
            ],
        );
    }
    stats
}

/// Per-block forward dataflow state.
#[derive(Default)]
struct SlotState {
    /// Frame offset → integer register known to hold the slot's 64-bit
    /// value (only `Sz::X` accesses participate).
    int: BTreeMap<i32, X>,
    /// Frame offset → FP register known to hold the slot's value, with the
    /// access width it was established at (`Sz::X` scalars, `Sz::Q`
    /// vectors).
    fp: BTreeMap<i32, (u8, Sz)>,
    /// Offset of the latest not-yet-read store per slot, as an index into
    /// the output vector (dead-store candidates).
    pending_store: BTreeMap<i32, usize>,
}

impl SlotState {
    fn kill_x(&mut self, r: X) {
        self.int.retain(|_, v| *v != r);
    }

    fn kill_d(&mut self, d: u8) {
        self.fp.retain(|_, (v, _)| *v != d);
    }

    fn clear_regs(&mut self) {
        self.int.clear();
        self.fp.clear();
    }

    /// A slot was (possibly) read: its pending store is live after all.
    fn mark_read(&mut self, off: i32) {
        self.pending_store.remove(&off);
    }

    /// Any instruction that may observe frame memory (calls which may take
    /// alloca-derived pointers, exclusives, returns handled at block end).
    fn mark_all_read(&mut self) {
        self.pending_store.clear();
    }
}

/// Integer register defined by an instruction, if any.
fn def_x(i: &AInst) -> Option<X> {
    match i {
        AInst::MovImm { rd, .. }
        | AInst::MovReg { rd, .. }
        | AInst::Alu { rd, .. }
        | AInst::AddImm { rd, .. }
        | AInst::CSet { rd, .. }
        | AInst::CSel { rd, .. }
        | AInst::SExt { rd, .. }
        | AInst::ZExt { rd, .. }
        | AInst::Fcvtzs { rd, .. }
        | AInst::FMovToX { rd, .. }
        | AInst::AdrFunc { rd, .. }
        | AInst::AdrGlobal { rd, .. } => Some(*rd),
        AInst::Ldr { rt, .. } | AInst::Ldxr { rt, .. } => Some(*rt),
        AInst::Stxr { rs, .. } => Some(*rs),
        _ => None,
    }
}

/// FP register defined by an instruction, if any.
fn def_d(i: &AInst) -> Option<u8> {
    match i {
        AInst::LdrF { dt, .. } => Some(dt.0),
        AInst::Fp { dd, .. }
        | AInst::FpVec { dd, .. }
        | AInst::Scvtf { dd, .. }
        | AInst::Fcvt { dd, .. }
        | AInst::FMovFromX { dd, .. } => Some(dd.0),
        _ => None,
    }
}

#[allow(clippy::too_many_lines)]
fn clean_block(insts: &mut Vec<AInst>) -> PeepholeStats {
    let mut stats = PeepholeStats::default();
    let mut st = SlotState::default();
    let mut out: Vec<AInst> = Vec::with_capacity(insts.len());
    // Indices into `out` scheduled for deletion (dead stores).
    let mut dead: Vec<usize> = Vec::new();

    for inst in insts.drain(..) {
        match inst {
            // ---- slot loads: forward or delete -------------------------
            AInst::Ldr { sz: Sz::X, rt, mem } if mem.base == FP => {
                st.mark_read(mem.off);
                if let Some(&r) = st.int.get(&mem.off) {
                    if r == rt {
                        stats.loads_deleted += 1;
                    } else {
                        stats.loads_forwarded += 1;
                        st.kill_x(rt);
                        out.push(AInst::MovReg { rd: rt, rm: r });
                    }
                    continue;
                }
                st.kill_x(rt);
                st.int.insert(mem.off, rt);
                out.push(inst);
            }
            AInst::LdrF { sz, dt, mem } if mem.base == FP && matches!(sz, Sz::X | Sz::Q) => {
                st.mark_read(mem.off);
                if st.fp.get(&mem.off) == Some(&(dt.0, sz)) {
                    stats.loads_deleted += 1;
                    continue;
                }
                st.kill_d(dt.0);
                st.fp.insert(mem.off, (dt.0, sz));
                out.push(inst);
            }
            // Narrow slot loads: no forwarding (extension semantics), but
            // they do read the slot.
            AInst::Ldr { rt, mem, .. } if mem.base == FP => {
                st.mark_read(mem.off);
                st.kill_x(rt);
                out.push(inst);
            }
            AInst::LdrF { dt, mem, .. } if mem.base == FP => {
                st.mark_read(mem.off);
                st.kill_d(dt.0);
                out.push(inst);
            }

            // ---- slot stores: dedup, record, DSE-candidate -------------
            AInst::Str { sz: Sz::X, rt, mem } if mem.base == FP => {
                if st.int.get(&mem.off) == Some(&rt) {
                    stats.redundant_stores += 1;
                    continue;
                }
                if let Some(prev) = st.pending_store.insert(mem.off, out.len()) {
                    dead.push(prev);
                    stats.dead_stores += 1;
                }
                st.int.insert(mem.off, rt);
                st.fp.remove(&mem.off);
                out.push(inst);
            }
            AInst::StrF { sz, dt, mem } if mem.base == FP && matches!(sz, Sz::X | Sz::Q) => {
                if st.fp.get(&mem.off) == Some(&(dt.0, sz)) {
                    stats.redundant_stores += 1;
                    continue;
                }
                if let Some(prev) = st.pending_store.insert(mem.off, out.len()) {
                    dead.push(prev);
                    stats.dead_stores += 1;
                }
                st.fp.insert(mem.off, (dt.0, sz));
                st.int.remove(&mem.off);
                out.push(inst);
            }
            // Narrow slot stores invalidate knowledge of the slot (they
            // change part of it) and overwrite any pending full store.
            AInst::Str { mem, .. } | AInst::StrF { mem, .. } if mem.base == FP => {
                st.int.remove(&mem.off);
                st.fp.remove(&mem.off);
                // A narrow store does not fully overwrite the slot, so the
                // previous store stays live.
                st.mark_read(mem.off);
                out.push(inst);
            }

            // ---- calls clobber registers and may read frame pointers ----
            AInst::Bl { callee } => {
                let _: ACallee = callee;
                st.clear_regs();
                st.mark_all_read();
                out.push(inst);
            }
            // Exclusives operate on shared memory via register bases; the
            // status/value defs are handled below, but treat them as
            // potential readers to keep DSE maximally conservative.
            AInst::Ldxr { rt, .. } => {
                st.kill_x(rt);
                st.mark_all_read();
                out.push(inst);
            }
            AInst::Stxr { rs, .. } => {
                st.kill_x(rs);
                st.mark_all_read();
                out.push(inst);
            }
            // Loads/stores through non-frame bases address the alloca
            // region, globals, or the heap — never value slots (see module
            // docs) — but they may read alloca memory, so pending stores
            // survive only for slots, which such accesses cannot reach.
            // Register defs still apply.
            _ => {
                if let Some(r) = def_x(&inst) {
                    st.kill_x(r);
                }
                if let Some(d) = def_d(&inst) {
                    st.kill_d(d);
                }
                out.push(inst);
            }
        }
    }

    // Anything still pending at block end is live-out (slots carry values
    // across blocks): keep it. Delete only the overwritten stores.
    dead.sort_unstable();
    for &idx in dead.iter().rev() {
        out.remove(idx);
    }
    // Removing entries shifts indices; `pending_store` indices recorded
    // after a dead entry would be stale, but we only delete entries already
    // collected in `dead`, whose indices were recorded *before* later ones
    // were pushed — reverse-order removal keeps earlier indices valid.
    *insts = out;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{ABlock, AMem, ARet, AluOp, D};

    fn func(insts: Vec<AInst>) -> AFunc {
        AFunc {
            name: "t".into(),
            int_params: 0,
            fp_params: 0,
            frame_size: 64,
            ret: ARet::Void,
            blocks: vec![ABlock {
                insts,
                term: Some(crate::inst::ATerm::Ret),
            }],
        }
    }

    fn slot(off: i32) -> AMem {
        AMem { base: FP, off }
    }

    #[test]
    fn forwards_store_to_load() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(10),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.loads_deleted, 1);
        assert_eq!(s.loads_forwarded, 1);
        assert_eq!(
            f.blocks[0].insts,
            vec![
                AInst::Str {
                    sz: Sz::X,
                    rt: X(9),
                    mem: slot(0)
                },
                AInst::MovReg {
                    rd: X(10),
                    rm: X(9)
                },
            ]
        );
    }

    #[test]
    fn register_redefinition_blocks_forwarding() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::MovImm { rd: X(9), imm: 7 },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(10),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.loads_forwarded + s.loads_deleted, 0, "{s:?}");
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn narrow_accesses_do_not_forward() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::W,
                rt: X(9),
                mem: slot(0),
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s, PeepholeStats::default());
    }

    #[test]
    fn calls_clobber_everything() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::Bl {
                callee: ACallee::Extern(0),
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.loads_deleted + s.loads_forwarded, 0);
    }

    #[test]
    fn dead_store_removed_only_when_overwritten() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(16),
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(10),
                mem: slot(16),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.dead_stores, 1);
        assert_eq!(
            f.blocks[0].insts,
            vec![AInst::Str {
                sz: Sz::X,
                rt: X(10),
                mem: slot(16)
            }]
        );

        // Live-out stores survive.
        let mut f = func(vec![AInst::Str {
            sz: Sz::X,
            rt: X(9),
            mem: slot(16),
        }]);
        let s = peephole_function(&mut f);
        assert_eq!(s.dead_stores, 0);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn intervening_read_keeps_the_store() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(16),
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(11),
                mem: slot(16),
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(10),
                mem: slot(16),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.dead_stores, 0);
        assert_eq!(s.loads_forwarded, 1);
    }

    #[test]
    fn redundant_store_after_load_is_dropped() {
        let mut f = func(vec![
            AInst::Ldr {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::Alu {
                op: AluOp::Add,
                rd: X(10),
                rn: X(9),
                rm: X(9),
                ra: X::ZR,
            },
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.redundant_stores, 1);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn fp_slots_forward_at_matching_width() {
        let mut f = func(vec![
            AInst::StrF {
                sz: Sz::X,
                dt: D(8),
                mem: slot(0),
            },
            AInst::LdrF {
                sz: Sz::X,
                dt: D(8),
                mem: slot(0),
            },
            AInst::LdrF {
                sz: Sz::W,
                dt: D(8),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.loads_deleted, 1, "{s:?}");
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn dmb_does_not_block_private_slot_forwarding() {
        let mut f = func(vec![
            AInst::Str {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
            AInst::DmbI {
                kind: crate::inst::Dmb::Ff,
            },
            AInst::Ldr {
                sz: Sz::X,
                rt: X(9),
                mem: slot(0),
            },
        ]);
        let s = peephole_function(&mut f);
        assert_eq!(s.loads_deleted, 1);
    }
}
