//! AArch64 assembly printer.

use crate::inst::{ABlock, ACallee, AFunc, AInst, AModule, ATerm, AluOp, Sz};
use std::fmt::Write;

fn sz_suffix(sz: Sz) -> &'static str {
    match sz {
        Sz::B => "b",
        Sz::H => "h",
        Sz::W | Sz::X | Sz::Q => "",
    }
}

fn reg_name(sz: Sz, x: crate::inst::X) -> String {
    match sz {
        Sz::W | Sz::H | Sz::B => {
            if x.0 == 31 {
                "wzr".to_string()
            } else {
                format!("w{}", x.0)
            }
        }
        _ => x.to_string(),
    }
}

fn freg_name(sz: Sz, d: crate::inst::D) -> String {
    match sz {
        Sz::W => format!("s{}", d.0),
        Sz::Q => format!("q{}", d.0),
        _ => format!("d{}", d.0),
    }
}

/// Renders one instruction.
pub fn inst_to_string(m: &AModule, i: &AInst) -> String {
    match i {
        AInst::MovImm { rd, imm } => format!("mov {rd}, #{imm:#x}"),
        AInst::MovReg { rd, rm } => format!("mov {rd}, {rm}"),
        AInst::Alu {
            op: AluOp::MSub,
            rd,
            rn,
            rm,
            ra,
        } => {
            format!("msub {rd}, {rn}, {rm}, {ra}")
        }
        AInst::Alu { op, rd, rn, rm, .. } => format!("{} {rd}, {rn}, {rm}", op.mnemonic()),
        AInst::AddImm { rd, rn, imm } => {
            if *imm < 0 {
                format!("sub {rd}, {rn}, #{}", -imm)
            } else {
                format!("add {rd}, {rn}, #{imm}")
            }
        }
        AInst::Cmp { rn, rm } => format!("cmp {rn}, {rm}"),
        AInst::CSet { rd, cc } => format!("cset {rd}, {cc}"),
        AInst::CSel { rd, rn, rm, cc } => format!("csel {rd}, {rn}, {rm}, {cc}"),
        AInst::SExt { rd, rn, bits } => match bits {
            8 => format!("sxtb {rd}, {}", reg_name(Sz::W, *rn)),
            16 => format!("sxth {rd}, {}", reg_name(Sz::W, *rn)),
            _ => format!("sxtw {rd}, {}", reg_name(Sz::W, *rn)),
        },
        AInst::ZExt { rd, rn, bits } => match bits {
            1 => format!("and {rd}, {rn}, #1"),
            8 => format!("uxtb {}, {}", reg_name(Sz::W, *rd), reg_name(Sz::W, *rn)),
            16 => format!("uxth {}, {}", reg_name(Sz::W, *rd), reg_name(Sz::W, *rn)),
            _ => format!("mov {}, {}", reg_name(Sz::W, *rd), reg_name(Sz::W, *rn)),
        },
        AInst::Ldr { sz, rt, mem } => {
            format!("ldr{} {}, {mem}", sz_suffix(*sz), reg_name(*sz, *rt))
        }
        AInst::Str { sz, rt, mem } => {
            format!("str{} {}, {mem}", sz_suffix(*sz), reg_name(*sz, *rt))
        }
        AInst::LdrF { sz, dt, mem } => format!("ldr {}, {mem}", freg_name(*sz, *dt)),
        AInst::StrF { sz, dt, mem } => format!("str {}, {mem}", freg_name(*sz, *dt)),
        AInst::Ldxr { sz, rt, rn } => {
            format!("ldxr{} {}, [{rn}]", sz_suffix(*sz), reg_name(*sz, *rt))
        }
        AInst::Stxr { sz, rs, rt, rn } => {
            format!(
                "stxr{} {}, {}, [{rn}]",
                sz_suffix(*sz),
                reg_name(Sz::W, *rs),
                reg_name(*sz, *rt)
            )
        }
        AInst::Fp { op, dp, dd, dn, dm } => {
            let sz = if *dp { Sz::X } else { Sz::W };
            if matches!(op, crate::inst::FpOp::FSqrt | crate::inst::FpOp::FNeg) {
                format!(
                    "{} {}, {}",
                    op.mnemonic(),
                    freg_name(sz, *dd),
                    freg_name(sz, *dn)
                )
            } else {
                format!(
                    "{} {}, {}, {}",
                    op.mnemonic(),
                    freg_name(sz, *dd),
                    freg_name(sz, *dn),
                    freg_name(sz, *dm)
                )
            }
        }
        AInst::FpVec { op, dp, dd, dn, dm } => {
            let lanes = if *dp { "2d" } else { "4s" };
            format!(
                "{} v{}.{lanes}, v{}.{lanes}, v{}.{lanes}",
                op.mnemonic(),
                dd.0,
                dn.0,
                dm.0
            )
        }
        AInst::FCmp { dp, dn, dm } => {
            let sz = if *dp { Sz::X } else { Sz::W };
            format!("fcmp {}, {}", freg_name(sz, *dn), freg_name(sz, *dm))
        }
        AInst::Scvtf { dp, from64, dd, rn } => {
            let d = freg_name(if *dp { Sz::X } else { Sz::W }, *dd);
            let r = if *from64 {
                rn.to_string()
            } else {
                reg_name(Sz::W, *rn)
            };
            format!("scvtf {d}, {r}")
        }
        AInst::Fcvtzs { dp, to64, rd, dn } => {
            let d = freg_name(if *dp { Sz::X } else { Sz::W }, *dn);
            let r = if *to64 {
                rd.to_string()
            } else {
                reg_name(Sz::W, *rd)
            };
            format!("fcvtzs {r}, {d}")
        }
        AInst::Fcvt { to_double, dd, dn } => {
            if *to_double {
                format!("fcvt d{}, s{}", dd.0, dn.0)
            } else {
                format!("fcvt s{}, d{}", dd.0, dn.0)
            }
        }
        AInst::FMovToX { rd, dn } => format!("fmov {rd}, {dn}"),
        AInst::FMovFromX { dd, rn } => format!("fmov {dd}, {rn}"),
        AInst::DmbI { kind } => format!("dmb {kind}"),
        AInst::Bl { callee } => match callee {
            ACallee::Func(fi) => format!("bl {}", m.funcs[*fi as usize].name),
            ACallee::Extern(e) => format!("bl {}", m.externs[*e as usize]),
            ACallee::Reg(r) => format!("blr {r}"),
        },
        AInst::AdrFunc { rd, func } => format!("adr {rd}, {}", m.funcs[*func as usize].name),
        AInst::AdrGlobal { rd, global } => {
            format!("adrp+add {rd}, {}", m.globals[*global as usize].0)
        }
    }
}

/// Renders one function as assembly text.
pub fn print_function(m: &AModule, f: &AFunc) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{}:", f.name);
    let _ = writeln!(s, "    sub sp, sp, #{}", f.frame_size);
    let _ = writeln!(s, "    mov x29, sp");
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(s, ".L{bi}:");
        print_block(m, b, &mut s);
    }
    s
}

fn print_block(m: &AModule, b: &ABlock, s: &mut String) {
    for i in &b.insts {
        let _ = writeln!(s, "    {}", inst_to_string(m, i));
    }
    match b.term {
        Some(ATerm::B(t)) => {
            let _ = writeln!(s, "    b {t}");
        }
        Some(ATerm::Cbnz { rn, then, els }) => {
            let _ = writeln!(s, "    cbnz {rn}, {then}");
            let _ = writeln!(s, "    b {els}");
        }
        Some(ATerm::Ret) => {
            let _ = writeln!(s, "    add sp, sp, #<frame>; ret");
        }
        Some(ATerm::Brk) | None => {
            let _ = writeln!(s, "    brk #0");
        }
    }
}

/// Renders the whole module.
pub fn print_module(m: &AModule) -> String {
    let mut s = String::new();
    for (name, addr, size, _) in &m.globals {
        let _ = writeln!(s, "// .data {name} at {addr:#x}, {size} bytes");
    }
    for f in &m.funcs {
        let _ = writeln!(s);
        s.push_str(&print_function(m, f));
    }
    s
}
