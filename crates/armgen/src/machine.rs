//! AArch64 interpreter with a weak-memory-core cost model.
//!
//! Executes lowered [`AModule`]s to (a) validate translations end-to-end
//! and (b) produce the simulated runtimes of Figures 12 and 15. The cost
//! model charges heavily for barriers — `dmb ish` ≫ `dmb ishld`/`ishst` ≫
//! plain accesses — which is the effect the paper measures on the
//! Cortex-A72. The pthread runtime uses the same sequential fork–join
//! semantics (with per-thread cycle buckets) as the LIR interpreter.

use crate::inst::{ABlock, ACallee, AInst, AModule, ARet, ATerm, AluOp, Cc, Dmb, FpOp, D, X};
use lasagne_lir::interp::{Memory, FUNC_ADDR_BASE, HEAP_BASE, STACK_SIZE, STACK_TOP};
use std::collections::BTreeMap;

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArmError {
    /// Call to an unknown extern.
    BadCall(String),
    /// Trap (division by zero reached `udiv` with 0 divisor is defined as 0
    /// on Arm, so traps come from `brk` and runtime assertions).
    Trap(String),
    /// Step limit exceeded.
    StepLimit,
}

impl std::fmt::Display for ArmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArmError::BadCall(s) => write!(f, "bad call: {s}"),
            ArmError::Trap(s) => write!(f, "trap: {s}"),
            ArmError::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for ArmError {}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArmStats {
    /// Instructions retired.
    pub insts: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Barriers executed: `(dmb ishld, dmb ishst, dmb ish)`.
    pub dmbs: (u64, u64, u64),
    /// Exclusive pairs executed.
    pub exclusives: u64,
}

/// Result of a completed run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmRunResult {
    /// `x0` at return (also `d0` bits for FP-returning functions).
    pub ret: u64,
    /// Statistics.
    pub stats: ArmStats,
    /// Per-spawned-thread cycles.
    pub thread_cycles: Vec<u64>,
    /// Captured `printf` output.
    pub output: String,
}

impl ArmRunResult {
    /// Fork–join critical path (main + slowest child).
    pub fn critical_path_cycles(&self) -> u64 {
        let children: u64 = self.thread_cycles.iter().sum();
        let max = self.thread_cycles.iter().copied().max().unwrap_or(0);
        self.stats.cycles - children + max
    }
}

/// The simulated AArch64 core.
pub struct ArmMachine<'m> {
    module: &'m AModule,
    /// Simulated memory (shared layout with the LIR interpreter).
    pub mem: Memory,
    x: [u64; 32],
    d: [[u8; 16]; 32],
    // NZCV
    n: bool,
    z: bool,
    c: bool,
    v: bool,
    sp: u64,
    heap_next: u64,
    stats: ArmStats,
    thread_cycles: Vec<u64>,
    output: String,
    steps_left: u64,
    exclusive: Option<u64>,
}

/// Cycle costs of the modelled core. Barrier costs dominate — the knob the
/// whole evaluation turns on.
pub mod cost {
    /// `dmb ish` (full barrier). One full barrier stalls the pipeline once;
    /// it is cheaper than the back-to-back `ishld`+`ishst` pair it can
    /// replace (§7.2 fence merging relies on exactly this).
    pub const DMB_FF: u64 = 18;
    /// `dmb ishld`.
    pub const DMB_LD: u64 = 12;
    /// `dmb ishst`.
    pub const DMB_ST: u64 = 10;
    /// Plain load/store.
    pub const MEM: u64 = 5;
    /// `ldxr`/`stxr`.
    pub const EXCL: u64 = 12;
    /// Integer multiply.
    pub const MUL: u64 = 3;
    /// Integer divide.
    pub const DIV: u64 = 20;
    /// FP divide / sqrt.
    pub const FDIV: u64 = 15;
    /// Other FP.
    pub const FP: u64 = 2;
    /// Branch-and-link.
    pub const CALL: u64 = 2;
    /// Everything else.
    pub const ALU: u64 = 1;
}

fn cost_of(i: &AInst) -> u64 {
    match i {
        AInst::DmbI { kind: Dmb::Ff } => cost::DMB_FF,
        AInst::DmbI { kind: Dmb::Ld } => cost::DMB_LD,
        AInst::DmbI { kind: Dmb::St } => cost::DMB_ST,
        AInst::Ldr { .. } | AInst::Str { .. } | AInst::LdrF { .. } | AInst::StrF { .. } => {
            cost::MEM
        }
        AInst::Ldxr { .. } | AInst::Stxr { .. } => cost::EXCL,
        AInst::Alu {
            op: AluOp::Mul | AluOp::MSub,
            ..
        } => cost::MUL,
        AInst::Alu {
            op: AluOp::SDiv | AluOp::UDiv,
            ..
        } => cost::DIV,
        AInst::Fp {
            op: FpOp::FDiv | FpOp::FSqrt,
            ..
        } => cost::FDIV,
        AInst::Fp { .. } | AInst::FpVec { .. } | AInst::FCmp { .. } => cost::FP,
        AInst::Scvtf { .. } | AInst::Fcvtzs { .. } | AInst::Fcvt { .. } => cost::FP,
        AInst::Bl { .. } => cost::CALL,
        _ => cost::ALU,
    }
}

impl<'m> ArmMachine<'m> {
    /// Creates a machine, mapping the module's globals.
    pub fn new(module: &'m AModule) -> ArmMachine<'m> {
        let mut mem = Memory::new();
        for (_, addr, size, init) in &module.globals {
            let mut bytes = init.clone();
            bytes.resize(*size as usize, 0);
            mem.write(*addr, &bytes);
        }
        ArmMachine {
            module,
            mem,
            x: [0; 32],
            d: [[0; 16]; 32],
            n: false,
            z: false,
            c: false,
            v: false,
            sp: STACK_TOP,
            heap_next: HEAP_BASE,
            stats: ArmStats::default(),
            thread_cycles: Vec::new(),
            output: String::new(),
            steps_left: 2_000_000_000,
            exclusive: None,
        }
    }

    /// Sets the step limit.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.steps_left = limit;
    }

    fn xr(&self, r: X) -> u64 {
        if r.0 == 31 {
            0
        } else {
            self.x[r.0 as usize]
        }
    }

    fn set_x(&mut self, r: X, v: u64) {
        if r.0 != 31 {
            self.x[r.0 as usize] = v;
        }
    }

    fn d64(&self, r: D) -> u64 {
        u64::from_le_bytes(self.d[r.0 as usize][..8].try_into().unwrap())
    }

    fn set_d64(&mut self, r: D, bits: u64) {
        self.d[r.0 as usize][..8].copy_from_slice(&bits.to_le_bytes());
        self.d[r.0 as usize][8..].fill(0);
    }

    /// Runs function `idx` with integer args in `x0…` and FP args (f64
    /// bits) in `d0…`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArmError`] on traps, unknown externs, or step-limit
    /// exhaustion.
    pub fn run(
        &mut self,
        idx: usize,
        int_args: &[u64],
        fp_args: &[u64],
    ) -> Result<ArmRunResult, ArmError> {
        for (i, a) in int_args.iter().enumerate() {
            self.x[i] = *a;
        }
        for (i, a) in fp_args.iter().enumerate() {
            self.set_d64(D(i as u8), *a);
        }
        self.call(idx)?;
        let ret = match self.module.funcs[idx].ret {
            ARet::Fp => self.d64(D(0)),
            _ => self.x[0],
        };
        Ok(ArmRunResult {
            ret,
            stats: self.stats,
            thread_cycles: self.thread_cycles.clone(),
            output: std::mem::take(&mut self.output),
        })
    }

    /// Accumulated stats so far.
    pub fn stats(&self) -> ArmStats {
        self.stats
    }

    fn call(&mut self, idx: usize) -> Result<(), ArmError> {
        let f = &self.module.funcs[idx];
        // Prologue: allocate the frame.
        let saved_sp = self.sp;
        let saved_fp = self.x[29];
        self.sp -= f.frame_size;
        self.x[29] = self.sp;

        let mut blk = 0usize;
        'blocks: loop {
            let block: &ABlock = &f.blocks[blk];
            for inst in &block.insts {
                self.step(inst)?;
            }
            match block.term.unwrap_or(ATerm::Brk) {
                ATerm::B(t) => blk = t.0 as usize,
                ATerm::Cbnz { rn, then, els } => {
                    self.stats.insts += 1;
                    self.stats.cycles += cost::ALU;
                    blk = if self.xr(rn) != 0 {
                        then.0 as usize
                    } else {
                        els.0 as usize
                    };
                }
                ATerm::Ret => break 'blocks,
                ATerm::Brk => return Err(ArmError::Trap(format!("brk in @{}", f.name))),
            }
        }
        self.sp = saved_sp;
        self.x[29] = saved_fp;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &AInst) -> Result<(), ArmError> {
        if self.steps_left == 0 {
            return Err(ArmError::StepLimit);
        }
        self.steps_left -= 1;
        self.stats.insts += 1;
        self.stats.cycles += cost_of(inst);
        match inst {
            AInst::MovImm { rd, imm } => self.set_x(*rd, *imm),
            AInst::MovReg { rd, rm } => {
                let v = self.xr(*rm);
                self.set_x(*rd, v);
            }
            AInst::Alu { op, rd, rn, rm, ra } => {
                let a = self.xr(*rn);
                let b = self.xr(*rm);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::SDiv => {
                        if b == 0 {
                            0
                        } else {
                            (a as i64).wrapping_div(b as i64) as u64
                        }
                    }
                    AluOp::UDiv => {
                        if b == 0 {
                            0
                        } else {
                            a / b
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Orr => a | b,
                    AluOp::Eor => a ^ b,
                    AluOp::Lsl => a.wrapping_shl((b & 63) as u32),
                    AluOp::Lsr => a.wrapping_shr((b & 63) as u32),
                    AluOp::Asr => ((a as i64) >> (b & 63)) as u64,
                    AluOp::MSub => self.xr(*ra).wrapping_sub(a.wrapping_mul(b)),
                };
                self.set_x(*rd, v);
            }
            AInst::AddImm { rd, rn, imm } => {
                let base = if rn.0 == 29 { self.x[29] } else { self.xr(*rn) };
                self.set_x(*rd, base.wrapping_add(*imm as i64 as u64));
            }
            AInst::Cmp { rn, rm } => {
                let a = self.xr(*rn);
                let b = self.xr(*rm);
                let r = a.wrapping_sub(b);
                self.n = (r as i64) < 0;
                self.z = r == 0;
                self.c = a >= b;
                self.v = ((a ^ b) & (a ^ r)) >> 63 != 0;
            }
            AInst::CSet { rd, cc } => {
                let v = u64::from(self.cond(*cc));
                self.set_x(*rd, v);
            }
            AInst::CSel { rd, rn, rm, cc } => {
                let v = if self.cond(*cc) {
                    self.xr(*rn)
                } else {
                    self.xr(*rm)
                };
                self.set_x(*rd, v);
            }
            AInst::SExt { rd, rn, bits } => {
                let v = self.xr(*rn);
                let shift = 64 - u32::from(*bits);
                self.set_x(*rd, (((v << shift) as i64) >> shift) as u64);
            }
            AInst::ZExt { rd, rn, bits } => {
                let v = self.xr(*rn);
                let mask = if *bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                self.set_x(*rd, v & mask);
            }
            AInst::Ldr { sz, rt, mem } => {
                let addr = self.amem(mem);
                let raw = self.mem.read(addr, sz.bytes() as usize);
                let mut b = [0u8; 8];
                b[..sz.bytes().min(8) as usize].copy_from_slice(&raw[..sz.bytes().min(8) as usize]);
                self.set_x(*rt, u64::from_le_bytes(b));
            }
            AInst::Str { sz, rt, mem } => {
                let addr = self.amem(mem);
                let v = self.xr(*rt);
                self.mem
                    .write(addr, &v.to_le_bytes()[..sz.bytes().min(8) as usize]);
            }
            AInst::LdrF { sz, dt, mem } => {
                let addr = self.amem(mem);
                let raw = self.mem.read(addr, sz.bytes() as usize);
                let mut v = [0u8; 16];
                v[..sz.bytes() as usize].copy_from_slice(&raw[..sz.bytes() as usize]);
                self.d[dt.0 as usize] = v;
            }
            AInst::StrF { sz, dt, mem } => {
                let addr = self.amem(mem);
                let v = self.d[dt.0 as usize];
                self.mem.write(addr, &v[..sz.bytes() as usize]);
            }
            AInst::Ldxr { sz, rt, rn } => {
                let addr = self.xr(*rn);
                self.exclusive = Some(addr);
                self.stats.exclusives += 1;
                let raw = self.mem.read(addr, sz.bytes() as usize);
                let mut b = [0u8; 8];
                b[..sz.bytes().min(8) as usize].copy_from_slice(&raw[..sz.bytes().min(8) as usize]);
                self.set_x(*rt, u64::from_le_bytes(b));
            }
            AInst::Stxr { sz, rs, rt, rn } => {
                let addr = self.xr(*rn);
                self.stats.exclusives += 1;
                // Sequential simulation: the reservation always holds.
                let ok = self.exclusive == Some(addr);
                if ok {
                    let v = self.xr(*rt);
                    self.mem
                        .write(addr, &v.to_le_bytes()[..sz.bytes().min(8) as usize]);
                    self.set_x(*rs, 0);
                } else {
                    self.set_x(*rs, 1);
                }
                self.exclusive = None;
            }
            AInst::Fp { op, dp, dd, dn, dm } => {
                let (a, b) = if *dp {
                    (f64::from_bits(self.d64(*dn)), f64::from_bits(self.d64(*dm)))
                } else {
                    (
                        f64::from(f32::from_bits(self.d64(*dn) as u32)),
                        f64::from(f32::from_bits(self.d64(*dm) as u32)),
                    )
                };
                let r = match op {
                    FpOp::FAdd => a + b,
                    FpOp::FSub => a - b,
                    FpOp::FMul => a * b,
                    FpOp::FDiv => a / b,
                    FpOp::FMin => a.min(b),
                    FpOp::FMax => a.max(b),
                    FpOp::FSqrt => a.sqrt(),
                    FpOp::FNeg => -a,
                };
                if *dp {
                    self.set_d64(*dd, r.to_bits());
                } else {
                    self.set_d64(*dd, u64::from((r as f32).to_bits()));
                }
            }
            AInst::FpVec { op, dp, dd, dn, dm } => {
                let a = self.d[dn.0 as usize];
                let b = self.d[dm.0 as usize];
                let mut out = [0u8; 16];
                if *dp {
                    for i in 0..2 {
                        let x = f64::from_le_bytes(a[i * 8..i * 8 + 8].try_into().unwrap());
                        let y = f64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
                        let r = apply_fp(*op, x, y);
                        out[i * 8..i * 8 + 8].copy_from_slice(&r.to_le_bytes());
                    }
                } else {
                    for i in 0..4 {
                        let x = f32::from_le_bytes(a[i * 4..i * 4 + 4].try_into().unwrap());
                        let y = f32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().unwrap());
                        let r = apply_fp(*op, f64::from(x), f64::from(y)) as f32;
                        out[i * 4..i * 4 + 4].copy_from_slice(&r.to_le_bytes());
                    }
                }
                self.d[dd.0 as usize] = out;
            }
            AInst::FCmp { dp, dn, dm } => {
                let (a, b) = if *dp {
                    (f64::from_bits(self.d64(*dn)), f64::from_bits(self.d64(*dm)))
                } else {
                    (
                        f64::from(f32::from_bits(self.d64(*dn) as u32)),
                        f64::from(f32::from_bits(self.d64(*dm) as u32)),
                    )
                };
                if a.is_nan() || b.is_nan() {
                    // Unordered: C and V set.
                    self.n = false;
                    self.z = false;
                    self.c = true;
                    self.v = true;
                } else {
                    self.n = a < b;
                    self.z = a == b;
                    self.c = a >= b;
                    self.v = false;
                }
            }
            AInst::Scvtf { dp, from64, dd, rn } => {
                let raw = self.xr(*rn);
                let v = if *from64 {
                    raw as i64 as f64
                } else {
                    raw as u32 as i32 as f64
                };
                if *dp {
                    self.set_d64(*dd, v.to_bits());
                } else {
                    self.set_d64(*dd, u64::from((v as f32).to_bits()));
                }
            }
            AInst::Fcvtzs { dp, to64, rd, dn } => {
                let v = if *dp {
                    f64::from_bits(self.d64(*dn))
                } else {
                    f64::from(f32::from_bits(self.d64(*dn) as u32))
                };
                let i = v as i64;
                self.set_x(
                    *rd,
                    if *to64 {
                        i as u64
                    } else {
                        (i as i32) as u32 as u64
                    },
                );
            }
            AInst::Fcvt { to_double, dd, dn } => {
                if *to_double {
                    let v = f32::from_bits(self.d64(*dn) as u32);
                    self.set_d64(*dd, f64::from(v).to_bits());
                } else {
                    let v = f64::from_bits(self.d64(*dn));
                    self.set_d64(*dd, u64::from((v as f32).to_bits()));
                }
            }
            AInst::FMovToX { rd, dn } => {
                let v = self.d64(*dn);
                self.set_x(*rd, v);
            }
            AInst::FMovFromX { dd, rn } => {
                let v = self.xr(*rn);
                self.set_d64(*dd, v);
            }
            AInst::DmbI { kind } => match kind {
                Dmb::Ld => self.stats.dmbs.0 += 1,
                Dmb::St => self.stats.dmbs.1 += 1,
                Dmb::Ff => self.stats.dmbs.2 += 1,
            },
            AInst::Bl { callee } => match callee {
                ACallee::Func(fi) => self.call(*fi as usize)?,
                ACallee::Extern(e) => {
                    let name = self.module.externs[*e as usize].clone();
                    self.call_extern(&name)?;
                }
                ACallee::Reg(r) => {
                    let addr = self.xr(*r);
                    let idx = self.resolve_func(addr)?;
                    self.call(idx)?;
                }
            },
            AInst::AdrFunc { rd, func } => {
                self.set_x(*rd, FUNC_ADDR_BASE + 16 * u64::from(*func));
            }
            AInst::AdrGlobal { rd, global } => {
                let (_, addr, _, _) = &self.module.globals[*global as usize];
                self.set_x(*rd, *addr);
            }
        }
        Ok(())
    }

    fn amem(&self, m: &crate::inst::AMem) -> u64 {
        let base = if m.base.0 == 29 {
            self.x[29]
        } else {
            self.xr(m.base)
        };
        base.wrapping_add(m.off as i64 as u64)
    }

    fn cond(&self, cc: Cc) -> bool {
        match cc {
            Cc::Eq => self.z,
            Cc::Ne => !self.z,
            Cc::Lt => self.n != self.v,
            Cc::Le => self.z || self.n != self.v,
            Cc::Gt => !self.z && self.n == self.v,
            Cc::Ge => self.n == self.v,
            Cc::Lo => !self.c,
            Cc::Ls => !self.c || self.z,
            Cc::Hi => self.c && !self.z,
            Cc::Hs => self.c,
            Cc::Mi => self.n,
            Cc::Pl => !self.n,
            Cc::Vs => self.v,
            Cc::Vc => !self.v,
        }
    }

    fn resolve_func(&self, addr: u64) -> Result<usize, ArmError> {
        if addr >= FUNC_ADDR_BASE && (addr - FUNC_ADDR_BASE) % 16 == 0 {
            let idx = ((addr - FUNC_ADDR_BASE) / 16) as usize;
            if idx < self.module.funcs.len() {
                return Ok(idx);
            }
        }
        Err(ArmError::BadCall(format!("no function at {addr:#x}")))
    }

    fn call_extern(&mut self, name: &str) -> Result<(), ArmError> {
        match name {
            "malloc" | "valloc" => {
                let size = self.x[0];
                self.x[0] = self.heap_next;
                self.heap_next += (size + 63) & !63;
            }
            "calloc" => {
                let size = self.x[0] * self.x[1];
                self.x[0] = self.heap_next;
                self.heap_next += (size + 63) & !63;
            }
            "free" => {}
            "memset" => {
                let (dst, byte, n) = (self.x[0], self.x[1] as u8, self.x[2]);
                let buf = vec![byte; n as usize];
                self.mem.write(dst, &buf);
                self.stats.cycles += n / 8;
            }
            "memcpy" => {
                let (dst, src, n) = (self.x[0], self.x[1], self.x[2]);
                let mut buf = vec![0u8; n as usize];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = self.mem.read(src + i as u64, 1)[0];
                }
                self.mem.write(dst, &buf);
                self.stats.cycles += n / 4;
            }
            "strlen" => {
                let s = self.mem.read_cstr(self.x[0]);
                self.x[0] = s.len() as u64;
            }
            "printf" => {
                let fmt = self.mem.read_cstr(self.x[0]);
                let out = self.format_c(&fmt);
                self.output.push_str(&out);
                self.x[0] = 0;
            }
            "puts" => {
                let s = self.mem.read_cstr(self.x[0]);
                self.output.push_str(&s);
                self.output.push('\n');
                self.x[0] = 0;
            }
            "sqrt" => {
                let v = f64::from_bits(self.d64(D(0)));
                self.set_d64(D(0), v.sqrt().to_bits());
                self.stats.cycles += cost::FDIV;
            }
            "exit" | "abort" => return Err(ArmError::Trap(format!("{name}() called"))),
            "pthread_create" => {
                let tid_ptr = self.x[0];
                let fn_addr = self.x[2];
                let arg = self.x[3];
                let idx = self.resolve_func(fn_addr)?;
                let tid = 1 + self.thread_cycles.len() as u64;
                self.mem.write_u64(tid_ptr, tid);
                let before = self.stats.cycles;
                let saved = (self.sp, self.x);
                self.sp = STACK_TOP - tid * STACK_SIZE;
                self.x[0] = arg;
                self.call(idx)?;
                self.sp = saved.0;
                self.x = saved.1;
                self.thread_cycles.push(self.stats.cycles - before);
                self.x[0] = 0;
            }
            "pthread_join"
            | "pthread_mutex_init"
            | "pthread_mutex_destroy"
            | "pthread_mutex_lock"
            | "pthread_mutex_unlock" => {
                self.x[0] = 0;
            }
            "pthread_exit" => {}
            "sysconf" => self.x[0] = 4,
            other => return Err(ArmError::BadCall(format!("unknown extern @{other}"))),
        }
        Ok(())
    }

    /// Minimal printf: `%d/%u/%x` pull the next integer register (from x1),
    /// `%f/%g` pull the next FP register (from d0).
    fn format_c(&mut self, fmt: &str) -> String {
        let mut out = String::new();
        let mut xi = 1usize;
        let mut di = 0usize;
        let mut it = fmt.chars().peekable();
        while let Some(ch) = it.next() {
            if ch != '%' {
                out.push(ch);
                continue;
            }
            while let Some(&n) = it.peek() {
                if n.is_ascii_digit() || n == '.' || n == 'l' || n == 'z' || n == '-' {
                    it.next();
                } else {
                    break;
                }
            }
            match it.next() {
                Some('d') | Some('i') => {
                    out.push_str(&format!("{}", self.x[xi] as i64));
                    xi += 1;
                }
                Some('u') => {
                    out.push_str(&format!("{}", self.x[xi]));
                    xi += 1;
                }
                Some('x') => {
                    out.push_str(&format!("{:x}", self.x[xi]));
                    xi += 1;
                }
                Some('f') | Some('g') | Some('e') => {
                    out.push_str(&format!("{:.6}", f64::from_bits(self.d64(D(di as u8)))));
                    di += 1;
                }
                Some('c') => {
                    out.push((self.x[xi] as u8) as char);
                    xi += 1;
                }
                Some('s') => {
                    out.push_str("<str>");
                    xi += 1;
                }
                Some('%') => out.push('%'),
                Some(o) => out.push(o),
                None => break,
            }
        }
        out
    }
}

fn apply_fp(op: FpOp, a: f64, b: f64) -> f64 {
    match op {
        FpOp::FAdd => a + b,
        FpOp::FSub => a - b,
        FpOp::FMul => a * b,
        FpOp::FDiv => a / b,
        FpOp::FMin => a.min(b),
        FpOp::FMax => a.max(b),
        FpOp::FSqrt => a.sqrt(),
        FpOp::FNeg => -a,
    }
}

/// Suppresses an unused-import warning path for BTreeMap (kept for future
/// mutex state if needed).
#[allow(dead_code)]
type Reserved = BTreeMap<u64, bool>;
