//! AArch64 subset instruction set.
//!
//! The backend's target: integer/FP data processing, loads/stores,
//! `DMB`-family barriers, and load-exclusive/store-exclusive pairs for the
//! RMW lowering of §2.1 (`RMW ≜ ℓ: ll; cmp; bc ℓ′; sc; bc ℓ; ℓ′:`).
//! Instructions carry enough structure for the cost-model interpreter and
//! an assembly printer; binary encoding is not needed for the evaluation
//! (runtimes are measured on the simulated core).

use std::fmt;

/// An integer register `x0`–`x30`, or `xzr` (31).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct X(pub u8);

impl X {
    /// The zero register.
    pub const ZR: X = X(31);
}

impl fmt::Display for X {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 31 {
            write!(f, "xzr")
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// An FP/SIMD register `d0`–`d31` (used for 32- and 64-bit scalars and, in
/// the `q` form, 128-bit vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct D(pub u8);

impl fmt::Display for D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Barrier kinds: `DMB FF` (ish), `DMB LD` (ishld), `DMB ST` (ishst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dmb {
    /// Full barrier.
    Ff,
    /// Load barrier (orders loads with later loads and stores).
    Ld,
    /// Store barrier (orders stores with later stores).
    St,
}

impl fmt::Display for Dmb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dmb::Ff => write!(f, "ish"),
            Dmb::Ld => write!(f, "ishld"),
            Dmb::St => write!(f, "ishst"),
        }
    }
}

/// Condition codes for `b.cond`, `csel`, `cset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard AArch64 condition names
pub enum Cc {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Lo,
    Ls,
    Hi,
    Hs,
    Mi,
    Pl,
    Vs,
    Vc,
}

impl fmt::Display for Cc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cc::Eq => "eq",
            Cc::Ne => "ne",
            Cc::Lt => "lt",
            Cc::Le => "le",
            Cc::Gt => "gt",
            Cc::Ge => "ge",
            Cc::Lo => "lo",
            Cc::Ls => "ls",
            Cc::Hi => "hi",
            Cc::Hs => "hs",
            Cc::Mi => "mi",
            Cc::Pl => "pl",
            Cc::Vs => "vs",
            Cc::Vc => "vc",
        };
        write!(f, "{s}")
    }
}

/// Access width for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sz {
    /// Byte (`ldrb`/`strb`).
    B,
    /// Halfword.
    H,
    /// Word (32-bit).
    W,
    /// Doubleword (64-bit).
    X,
    /// Quadword (128-bit, FP register file).
    Q,
}

impl Sz {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Sz::B => 1,
            Sz::H => 2,
            Sz::W => 4,
            Sz::X => 8,
            Sz::Q => 16,
        }
    }
}

/// Integer ALU operations (three-operand register form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard AArch64 mnemonics
pub enum AluOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    And,
    Orr,
    Eor,
    Lsl,
    Lsr,
    Asr,
    /// `smulh`-style remainder helper: `msub` is modelled directly.
    MSub,
}

impl AluOp {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::SDiv => "sdiv",
            AluOp::UDiv => "udiv",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Lsl => "lsl",
            AluOp::Lsr => "lsr",
            AluOp::Asr => "asr",
            AluOp::MSub => "msub",
        }
    }
}

/// FP operations (scalar; `Vec2` variants operate per-lane on `q` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // standard AArch64 mnemonics
pub enum FpOp {
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
    FSqrt,
    FNeg,
}

impl FpOp {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::FAdd => "fadd",
            FpOp::FSub => "fsub",
            FpOp::FMul => "fmul",
            FpOp::FDiv => "fdiv",
            FpOp::FMin => "fmin",
            FpOp::FMax => "fmax",
            FpOp::FSqrt => "fsqrt",
            FpOp::FNeg => "fneg",
        }
    }
}

/// Memory operand: `[base, #imm]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AMem {
    /// Base register.
    pub base: X,
    /// Signed byte offset.
    pub off: i32,
}

impl fmt::Display for AMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.off == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{}, #{}]", self.base, self.off)
        }
    }
}

/// A block label within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blk(pub u32);

impl fmt::Display for Blk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".L{}", self.0)
    }
}

/// Call target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ACallee {
    /// A function in this module, by index.
    Func(u32),
    /// An extern, by index into the module's extern table.
    Extern(u32),
    /// Indirect through a register (`blr`).
    Reg(X),
}

/// One AArch64 instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AInst {
    /// `mov xD, #imm` (pseudo; covers movz/movk sequences).
    MovImm {
        /// Destination.
        rd: X,
        /// 64-bit immediate.
        imm: u64,
    },
    /// `mov xD, xM`.
    MovReg {
        /// Destination.
        rd: X,
        /// Source.
        rm: X,
    },
    /// Integer ALU: `op xD, xN, xM` (MSub: `msub xD, xN, xM, xA` uses `ra`).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: X,
        /// First source.
        rn: X,
        /// Second source.
        rm: X,
        /// Accumulator for `msub` (`xD = xA - xN*xM`).
        ra: X,
    },
    /// `add xD, xN, #imm` / `sub` for negative.
    AddImm {
        /// Destination.
        rd: X,
        /// Source.
        rn: X,
        /// Immediate (may be negative).
        imm: i32,
    },
    /// `cmp xN, xM` (sets NZCV).
    Cmp {
        /// Left operand.
        rn: X,
        /// Right operand.
        rm: X,
    },
    /// `cset xD, cc`.
    CSet {
        /// Destination.
        rd: X,
        /// Condition.
        cc: Cc,
    },
    /// `csel xD, xN, xM, cc`.
    CSel {
        /// Destination.
        rd: X,
        /// Value if cc.
        rn: X,
        /// Value if !cc.
        rm: X,
        /// Condition.
        cc: Cc,
    },
    /// Sign-extend byte/half/word: `sxtb/sxth/sxtw xD, xN`.
    SExt {
        /// Destination.
        rd: X,
        /// Source.
        rn: X,
        /// Source width in bits (8/16/32).
        bits: u8,
    },
    /// Zero-extend (`uxtb`/`uxth`/`mov wD, wN`).
    ZExt {
        /// Destination.
        rd: X,
        /// Source.
        rn: X,
        /// Source width in bits (1/8/16/32).
        bits: u8,
    },
    /// Integer load.
    Ldr {
        /// Width.
        sz: Sz,
        /// Destination.
        rt: X,
        /// Address.
        mem: AMem,
    },
    /// Integer store.
    Str {
        /// Width.
        sz: Sz,
        /// Source.
        rt: X,
        /// Address.
        mem: AMem,
    },
    /// FP/vector load (`ldr s/d/q`).
    LdrF {
        /// Width (W = s, X = d, Q = q).
        sz: Sz,
        /// Destination.
        dt: D,
        /// Address.
        mem: AMem,
    },
    /// FP/vector store.
    StrF {
        /// Width.
        sz: Sz,
        /// Source.
        dt: D,
        /// Address.
        mem: AMem,
    },
    /// Load-exclusive (`ldxr`).
    Ldxr {
        /// Width.
        sz: Sz,
        /// Destination.
        rt: X,
        /// Address register.
        rn: X,
    },
    /// Store-exclusive (`stxr`): status register receives 0 on success.
    Stxr {
        /// Width.
        sz: Sz,
        /// Status destination.
        rs: X,
        /// Value source.
        rt: X,
        /// Address register.
        rn: X,
    },
    /// FP data processing (scalar; `double_prec` selects d vs s form).
    Fp {
        /// Operation.
        op: FpOp,
        /// Double precision?
        dp: bool,
        /// Destination.
        dd: D,
        /// First source (also the only one for sqrt/neg).
        dn: D,
        /// Second source.
        dm: D,
    },
    /// Per-lane vector FP op on 128-bit registers (`fadd v0.2d, …`).
    FpVec {
        /// Operation.
        op: FpOp,
        /// Double-precision lanes (2×f64) vs single (4×f32).
        dp: bool,
        /// Destination.
        dd: D,
        /// First source.
        dn: D,
        /// Second source.
        dm: D,
    },
    /// `fcmp dN, dM` (sets NZCV from FP compare).
    FCmp {
        /// Double precision?
        dp: bool,
        /// Left.
        dn: D,
        /// Right.
        dm: D,
    },
    /// Integer → FP (`scvtf`).
    Scvtf {
        /// Double-precision result?
        dp: bool,
        /// 64-bit source?
        from64: bool,
        /// Destination.
        dd: D,
        /// Source.
        rn: X,
    },
    /// FP → integer, truncating (`fcvtzs`).
    Fcvtzs {
        /// Double-precision source?
        dp: bool,
        /// 64-bit result?
        to64: bool,
        /// Destination.
        rd: X,
        /// Source.
        dn: D,
    },
    /// FP precision conversion (`fcvt`): `to_double` selects direction.
    Fcvt {
        /// Converting to double?
        to_double: bool,
        /// Destination.
        dd: D,
        /// Source.
        dn: D,
    },
    /// Move FP bits to integer register (`fmov xD, dN`).
    FMovToX {
        /// Destination.
        rd: X,
        /// Source.
        dn: D,
    },
    /// Move integer bits to FP register (`fmov dD, xN`).
    FMovFromX {
        /// Destination.
        dd: D,
        /// Source.
        rn: X,
    },
    /// `dmb` barrier.
    DmbI {
        /// Barrier kind.
        kind: Dmb,
    },
    /// Call.
    Bl {
        /// Target.
        callee: ACallee,
    },
    /// Load the address of a function into a register (`adrp`+`add`
    /// pseudo).
    AdrFunc {
        /// Destination.
        rd: X,
        /// Function index.
        func: u32,
    },
    /// Load the address of a global (`adrp`+`add` pseudo).
    AdrGlobal {
        /// Destination.
        rd: X,
        /// Global index.
        global: u32,
    },
}

/// A block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ATerm {
    /// Unconditional branch.
    B(Blk),
    /// `cbnz xN, then` else fall to `els`.
    Cbnz {
        /// Tested register.
        rn: X,
        /// Target when non-zero.
        then: Blk,
        /// Target when zero.
        els: Blk,
    },
    /// Return.
    Ret,
    /// `brk #0` — unreachable.
    Brk,
}

/// A basic block.
#[derive(Debug, Clone, Default)]
pub struct ABlock {
    /// Instructions.
    pub insts: Vec<AInst>,
    /// Terminator (defaults to `Brk`).
    pub term: Option<ATerm>,
}

/// A lowered function.
#[derive(Debug, Clone)]
pub struct AFunc {
    /// Symbol name.
    pub name: String,
    /// Number of integer parameters (arrive in `x0…`).
    pub int_params: usize,
    /// Number of FP parameters (arrive in `d0…`).
    pub fp_params: usize,
    /// Frame size in bytes (slots for LIR values + allocas).
    pub frame_size: u64,
    /// Whether the function returns a value, and whether it is FP.
    pub ret: ARet,
    /// Blocks; index 0 is the entry.
    pub blocks: Vec<ABlock>,
}

/// Return-value classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ARet {
    /// No value.
    Void,
    /// Integer/pointer in `x0`.
    Int,
    /// FP in `d0`.
    Fp,
}

/// A lowered module.
#[derive(Debug, Clone)]
pub struct AModule {
    /// Functions.
    pub funcs: Vec<AFunc>,
    /// Extern names (indexed by [`ACallee::Extern`]).
    pub externs: Vec<String>,
    /// Globals carried over from the LIR module: `(name, addr, size, init)`.
    pub globals: Vec<(String, u64, u64, Vec<u8>)>,
}

impl AModule {
    /// Total instruction count (terminators excluded).
    pub fn inst_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.insts.len())
            .sum()
    }

    /// Counts `dmb` barriers by kind: `(ld, st, ff)`.
    pub fn count_dmbs(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.funcs {
            for b in &f.blocks {
                for i in &b.insts {
                    if let AInst::DmbI { kind } = i {
                        match kind {
                            Dmb::Ld => c.0 += 1,
                            Dmb::St => c.1 += 1,
                            Dmb::Ff => c.2 += 1,
                        }
                    }
                }
            }
        }
        c
    }

    /// Function lookup by name.
    pub fn func_by_name(&self, name: &str) -> Option<usize> {
        self.funcs.iter().position(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(X(0).to_string(), "x0");
        assert_eq!(X::ZR.to_string(), "xzr");
        assert_eq!(D(3).to_string(), "d3");
        assert_eq!(
            AMem {
                base: X(29),
                off: -16
            }
            .to_string(),
            "[x29, #-16]"
        );
        assert_eq!(AMem { base: X(0), off: 0 }.to_string(), "[x0]");
        assert_eq!(Blk(4).to_string(), ".L4");
        assert_eq!(Dmb::Ld.to_string(), "ishld");
    }

    #[test]
    fn sizes() {
        assert_eq!(Sz::B.bytes(), 1);
        assert_eq!(Sz::Q.bytes(), 16);
    }

    #[test]
    fn dmb_counting() {
        let m = AModule {
            funcs: vec![AFunc {
                name: "f".into(),
                int_params: 0,
                fp_params: 0,
                frame_size: 0,
                ret: ARet::Void,
                blocks: vec![ABlock {
                    insts: vec![
                        AInst::DmbI { kind: Dmb::Ld },
                        AInst::DmbI { kind: Dmb::St },
                        AInst::DmbI { kind: Dmb::Ff },
                        AInst::DmbI { kind: Dmb::Ld },
                    ],
                    term: Some(ATerm::Ret),
                }],
            }],
            externs: vec![],
            globals: vec![],
        };
        assert_eq!(m.count_dmbs(), (2, 1, 1));
        assert_eq!(m.inst_count(), 4);
    }
}
