//! LIR → AArch64 lowering, implementing the IR→Arm mapping of Figure 8b:
//!
//! * `ld_na ⇒ ldr`, `st_na ⇒ str` (plain accesses);
//! * `Frm ⇒ dmb ishld`, `Fww ⇒ dmb ishst`, `Fsc ⇒ dmb ish`;
//! * `RMWsc ⇒ dmb ish ; (ldxr/stxr loop) ; dmb ish` — the §2.1 ll/sc
//!   expansion with leading and trailing full barriers.
//!
//! The lowering itself is a straightforward frame-based (-O0 style)
//! backend: every LIR value lives in a stack slot, operands are loaded
//! into scratch registers (`x9`–`x15`, `d8`–`d15`) and results stored
//! back. φ-nodes get shadow slots written by predecessors.

use crate::inst::{
    ABlock, ACallee, AFunc, AInst, AMem, AModule, ARet, ATerm, AluOp as AAlu, Blk, Cc, Dmb, FpOp,
    Sz, D, X,
};
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{
    BinOp, Callee, CastOp, FPred, FenceKind, IPred, InstId, InstKind, Operand, RmwOp, Terminator,
};
use lasagne_lir::types::Ty;
use std::collections::BTreeMap;

/// Frame base register (x29, the platform frame pointer).
const FP: X = X(29);
/// Scratch integer registers.
const S0: X = X(9);
const S1: X = X(10);
const S2: X = X(11);
const S3: X = X(12);
/// Scratch FP registers.
const F0: D = D(8);
const F1: D = D(9);

/// Lowers a whole LIR module and cleans the result with the
/// [frame-slot peephole](crate::peephole) (store-to-load forwarding and
/// dead-store elimination on private slots).
pub fn lower_module(m: &Module) -> AModule {
    let mut am = lower_module_raw(m);
    let _ = crate::peephole::peephole_module(&mut am);
    am
}

/// Lowers a whole LIR module with no machine-level cleanup — every LIR
/// value round-trips through its frame slot. Used by the ablation bench to
/// quantify what the peephole buys.
pub fn lower_module_raw(m: &Module) -> AModule {
    let funcs = m.funcs.iter().map(|f| lower_function(m, f)).collect();
    assemble_module(m, funcs)
}

/// Assembles an [`AModule`] from per-function lowering results, carrying
/// the extern and global tables over from the LIR module. `funcs` must be
/// in `m.funcs` order.
///
/// This is the deterministic merge step of the parallel pipeline driver:
/// [`lower_function`] takes the module immutably and writes nothing shared,
/// so distinct functions may be lowered on worker threads and the results
/// stitched together here, byte-identical to [`lower_module_raw`].
pub fn assemble_module(m: &Module, funcs: Vec<AFunc>) -> AModule {
    AModule {
        funcs,
        externs: m.externs.iter().map(|e| e.name.clone()).collect(),
        globals: m
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.addr, g.size, g.init.clone()))
            .collect(),
    }
}

struct Lower<'a> {
    m: &'a Module,
    f: &'a Function,
    blocks: Vec<ABlock>,
    cur: usize,
    /// Value slot byte offset per instruction id.
    slot: BTreeMap<u32, i32>,
    /// Shadow slot per φ id.
    shadow: BTreeMap<u32, i32>,
    /// Param slot offsets.
    param_slot: Vec<i32>,
    /// Alloca base offsets per alloca id.
    alloca_off: BTreeMap<u32, i32>,
    frame_size: i64,
    /// LIR block → A block index.
    block_map: Vec<u32>,
}

fn ty_sz(ty: Ty) -> Sz {
    match ty {
        Ty::I1 | Ty::I8 => Sz::B,
        Ty::I16 => Sz::H,
        Ty::I32 | Ty::F32 => Sz::W,
        Ty::V2F64 | Ty::V4F32 | Ty::V2I64 | Ty::V4I32 => Sz::Q,
        _ => Sz::X,
    }
}

fn int_bits(ty: Ty) -> u32 {
    ty.int_bits().unwrap_or(64)
}

/// Lowers one function.
pub fn lower_function(m: &Module, f: &Function) -> AFunc {
    let mut lw = Lower {
        m,
        f,
        blocks: Vec::new(),
        cur: 0,
        slot: BTreeMap::new(),
        shadow: BTreeMap::new(),
        param_slot: Vec::new(),
        alloca_off: BTreeMap::new(),
        frame_size: 0,
        block_map: Vec::new(),
    };

    // Assign slots: params, then instruction results, then φ shadows, then
    // alloca storage.
    let mut off: i64 = 0;
    for _ in &f.params {
        lw.param_slot.push(off as i32);
        off += 16;
    }
    for (_, id) in f.iter_insts() {
        let inst = f.inst(id);
        if inst.ty != Ty::Void {
            lw.slot.insert(id.0, off as i32);
            off += 16;
        }
        if matches!(inst.kind, InstKind::Phi { .. }) {
            lw.shadow.insert(id.0, off as i32);
            off += 16;
        }
    }
    for (_, id) in f.iter_insts() {
        if let InstKind::Alloca { size } = f.inst(id).kind {
            lw.alloca_off.insert(id.0, off as i32);
            off += ((size + 15) & !15) as i64;
        }
    }
    lw.frame_size = (off + 15) & !15;

    // One A block per LIR block (extra blocks appended for ll/sc loops).
    for _ in f.block_ids() {
        lw.block_map.push(lw.blocks.len() as u32);
        lw.blocks.push(ABlock::default());
    }

    // Entry: spill parameters.
    lw.cur = lw.block_map[0] as usize;
    let mut int_idx = 0u8;
    let mut fp_idx = 0u8;
    for (pi, pty) in f.params.iter().enumerate() {
        let mem = AMem {
            base: FP,
            off: lw.param_slot[pi],
        };
        if pty.is_float() || pty.is_vector() {
            let sz = if pty.is_vector() { Sz::Q } else { ty_sz(*pty) };
            lw.emit(AInst::StrF {
                sz,
                dt: D(fp_idx),
                mem,
            });
            fp_idx += 1;
        } else {
            lw.emit(AInst::Str {
                sz: Sz::X,
                rt: X(int_idx),
                mem,
            });
            int_idx += 1;
        }
    }

    // Lower blocks.
    for b in f.block_ids() {
        lw.cur = lw.block_map[b.0 as usize] as usize;
        // If the entry block, we already emitted the spills above; continue
        // appending.
        let ids = f.block(b).insts.clone();
        for id in ids {
            lw.lower_inst(id);
        }
        lw.lower_term(b);
    }

    let ret = match f.ret {
        Ty::Void => ARet::Void,
        t if t.is_float() => ARet::Fp,
        _ => ARet::Int,
    };
    AFunc {
        name: f.name.clone(),
        int_params: f
            .params
            .iter()
            .filter(|t| !t.is_float() && !t.is_vector())
            .count(),
        fp_params: f
            .params
            .iter()
            .filter(|t| t.is_float() || t.is_vector())
            .count(),
        frame_size: lw.frame_size as u64,
        ret,
        blocks: lw.blocks,
    }
}

impl Lower<'_> {
    fn emit(&mut self, i: AInst) {
        self.blocks[self.cur].insts.push(i);
    }

    fn new_block(&mut self) -> Blk {
        self.blocks.push(ABlock::default());
        Blk(self.blocks.len() as u32 - 1)
    }

    fn slot_mem(&self, id: InstId) -> AMem {
        AMem {
            base: FP,
            off: self.slot[&id.0],
        }
    }

    /// Loads an integer-classed operand into `rd`.
    fn load_int(&mut self, op: &Operand, rd: X) {
        match op {
            Operand::Inst(id) => {
                if let Some(a) = self.alloca_off.get(&id.0) {
                    // Allocas evaluate to their frame address; materialise
                    // from the slot (stored at definition) for uniformity.
                    let _ = a;
                    self.emit(AInst::Ldr {
                        sz: Sz::X,
                        rt: rd,
                        mem: self.slot_mem(*id),
                    });
                } else {
                    self.emit(AInst::Ldr {
                        sz: Sz::X,
                        rt: rd,
                        mem: self.slot_mem(*id),
                    });
                }
            }
            Operand::Param(p) => self.emit(AInst::Ldr {
                sz: Sz::X,
                rt: rd,
                mem: AMem {
                    base: FP,
                    off: self.param_slot[*p as usize],
                },
            }),
            Operand::ConstInt { val, .. } => self.emit(AInst::MovImm { rd, imm: *val }),
            Operand::ConstF32(b) => self.emit(AInst::MovImm {
                rd,
                imm: u64::from(*b),
            }),
            Operand::ConstF64(b) => self.emit(AInst::MovImm { rd, imm: *b }),
            Operand::Global(g) => self.emit(AInst::AdrGlobal { rd, global: g.0 }),
            Operand::Func(fi) => self.emit(AInst::AdrFunc { rd, func: fi.0 }),
            Operand::Undef(_) => self.emit(AInst::MovImm { rd, imm: 0 }),
        }
    }

    /// Loads an FP-classed operand into `dd` (scalar; bits for vectors).
    fn load_fp(&mut self, op: &Operand, dd: D, vec: bool) {
        let sz = if vec { Sz::Q } else { Sz::X };
        match op {
            Operand::Inst(id) => self.emit(AInst::LdrF {
                sz,
                dt: dd,
                mem: self.slot_mem(*id),
            }),
            Operand::Param(p) => self.emit(AInst::LdrF {
                sz,
                dt: dd,
                mem: AMem {
                    base: FP,
                    off: self.param_slot[*p as usize],
                },
            }),
            Operand::ConstF64(b) => {
                self.emit(AInst::MovImm { rd: S3, imm: *b });
                self.emit(AInst::FMovFromX { dd, rn: S3 });
            }
            Operand::ConstF32(b) => {
                self.emit(AInst::MovImm {
                    rd: S3,
                    imm: u64::from(*b),
                });
                self.emit(AInst::FMovFromX { dd, rn: S3 });
            }
            Operand::Undef(_) => {
                self.emit(AInst::MovImm { rd: S3, imm: 0 });
                self.emit(AInst::FMovFromX { dd, rn: S3 });
            }
            other => {
                // Integer-looking operand used as FP bits.
                self.load_int(other, S3);
                self.emit(AInst::FMovFromX { dd, rn: S3 });
            }
        }
    }

    fn store_int(&mut self, id: InstId, rs: X) {
        self.emit(AInst::Str {
            sz: Sz::X,
            rt: rs,
            mem: self.slot_mem(id),
        });
    }

    fn store_fp(&mut self, id: InstId, ds: D, vec: bool) {
        let sz = if vec { Sz::Q } else { Sz::X };
        self.emit(AInst::StrF {
            sz,
            dt: ds,
            mem: self.slot_mem(id),
        });
    }

    /// Masks `rd` down to `bits` (no-op for 64).
    fn mask(&mut self, rd: X, bits: u32) {
        if bits < 64 {
            self.emit(AInst::ZExt {
                rd,
                rn: rd,
                bits: bits as u8,
            });
        }
    }

    fn sext(&mut self, rd: X, rn: X, bits: u32) {
        if bits < 64 {
            self.emit(AInst::SExt {
                rd,
                rn,
                bits: bits as u8,
            });
        } else if rd != rn {
            self.emit(AInst::MovReg { rd, rm: rn });
        }
    }

    #[allow(clippy::too_many_lines)]
    fn lower_inst(&mut self, id: InstId) {
        let inst = self.f.inst(id).clone();
        let ty = inst.ty;
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } if ty.is_vector() => {
                self.load_fp(lhs, F0, true);
                self.load_fp(rhs, F1, true);
                let fop = match op {
                    BinOp::FAdd => FpOp::FAdd,
                    BinOp::FSub => FpOp::FSub,
                    BinOp::FMul => FpOp::FMul,
                    BinOp::FDiv => FpOp::FDiv,
                    BinOp::FMin => FpOp::FMin,
                    BinOp::FMax => FpOp::FMax,
                    // Vector integer bitwise ops reuse FpVec with Eor/etc.
                    // modelled per-byte in the interpreter.
                    BinOp::Xor => FpOp::FNeg, // placeholder; see FpVecXor below
                    other => panic!("vector op {other:?} unsupported"),
                };
                if *op == BinOp::Xor {
                    // Lower vector xor through the integer file (two 64-bit
                    // halves via the frame).
                    self.load_int_pair_xor(lhs, rhs, id);
                    return;
                }
                let dp = matches!(ty, Ty::V2F64 | Ty::V2I64);
                self.emit(AInst::FpVec {
                    op: fop,
                    dp,
                    dd: F0,
                    dn: F0,
                    dm: F1,
                });
                self.store_fp(id, F0, true);
            }
            InstKind::Bin { op, lhs, rhs } if op.is_float() => {
                let dp = ty == Ty::F64;
                self.load_fp(lhs, F0, false);
                self.load_fp(rhs, F1, false);
                let fop = match op {
                    BinOp::FAdd => FpOp::FAdd,
                    BinOp::FSub => FpOp::FSub,
                    BinOp::FMul => FpOp::FMul,
                    BinOp::FDiv => FpOp::FDiv,
                    BinOp::FMin => FpOp::FMin,
                    BinOp::FMax => FpOp::FMax,
                    _ => unreachable!(),
                };
                self.emit(AInst::Fp {
                    op: fop,
                    dp,
                    dd: F0,
                    dn: F0,
                    dm: F1,
                });
                self.store_fp(id, F0, false);
            }
            InstKind::Bin { op, lhs, rhs } => {
                let bits = int_bits(ty);
                self.load_int(lhs, S0);
                self.load_int(rhs, S1);
                // LIR register shifts take the count modulo the operand
                // width (`lslv w` semantics). The scratch ALU is 64-bit, so
                // narrow shifts must reduce the count explicitly or an i32
                // shift by 34 would shift by 34 instead of 2.
                let mask_shift_count = |this: &mut Self| {
                    if bits < 64 {
                        this.emit(AInst::MovImm {
                            rd: S2,
                            imm: u64::from(bits - 1),
                        });
                        this.emit(AInst::Alu {
                            op: AAlu::And,
                            rd: S1,
                            rn: S1,
                            rm: S2,
                            ra: X::ZR,
                        });
                    }
                };
                match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Shl
                    | BinOp::LShr => {
                        let a = match op {
                            BinOp::Add => AAlu::Add,
                            BinOp::Sub => AAlu::Sub,
                            BinOp::Mul => AAlu::Mul,
                            BinOp::And => AAlu::And,
                            BinOp::Or => AAlu::Orr,
                            BinOp::Xor => AAlu::Eor,
                            BinOp::Shl => AAlu::Lsl,
                            BinOp::LShr => AAlu::Lsr,
                            _ => unreachable!(),
                        };
                        if matches!(op, BinOp::Shl | BinOp::LShr) {
                            mask_shift_count(self);
                        }
                        self.emit(AInst::Alu {
                            op: a,
                            rd: S0,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.mask(S0, bits);
                    }
                    BinOp::AShr => {
                        mask_shift_count(self);
                        self.sext(S0, S0, bits);
                        self.emit(AInst::Alu {
                            op: AAlu::Asr,
                            rd: S0,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.mask(S0, bits);
                    }
                    BinOp::UDiv => {
                        self.emit(AInst::Alu {
                            op: AAlu::UDiv,
                            rd: S0,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                    }
                    BinOp::SDiv => {
                        self.sext(S0, S0, bits);
                        self.sext(S1, S1, bits);
                        self.emit(AInst::Alu {
                            op: AAlu::SDiv,
                            rd: S0,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.mask(S0, bits);
                    }
                    BinOp::URem => {
                        self.emit(AInst::Alu {
                            op: AAlu::UDiv,
                            rd: S2,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.emit(AInst::Alu {
                            op: AAlu::MSub,
                            rd: S0,
                            rn: S2,
                            rm: S1,
                            ra: S0,
                        });
                    }
                    BinOp::SRem => {
                        self.sext(S0, S0, bits);
                        self.sext(S1, S1, bits);
                        self.emit(AInst::Alu {
                            op: AAlu::SDiv,
                            rd: S2,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.emit(AInst::Alu {
                            op: AAlu::MSub,
                            rd: S0,
                            rn: S2,
                            rm: S1,
                            ra: S0,
                        });
                        self.mask(S0, bits);
                    }
                    _ => unreachable!("float handled above"),
                }
                self.store_int(id, S0);
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let lt = self.m.operand_ty(self.f, lhs);
                let bits = int_bits(lt);
                self.load_int(lhs, S0);
                self.load_int(rhs, S1);
                let signed = matches!(pred, IPred::Slt | IPred::Sle | IPred::Sgt | IPred::Sge);
                if signed {
                    self.sext(S0, S0, bits);
                    self.sext(S1, S1, bits);
                }
                self.emit(AInst::Cmp { rn: S0, rm: S1 });
                let cc = match pred {
                    IPred::Eq => Cc::Eq,
                    IPred::Ne => Cc::Ne,
                    IPred::Ult => Cc::Lo,
                    IPred::Ule => Cc::Ls,
                    IPred::Ugt => Cc::Hi,
                    IPred::Uge => Cc::Hs,
                    IPred::Slt => Cc::Lt,
                    IPred::Sle => Cc::Le,
                    IPred::Sgt => Cc::Gt,
                    IPred::Sge => Cc::Ge,
                };
                self.emit(AInst::CSet { rd: S0, cc });
                self.store_int(id, S0);
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let dp = self.m.operand_ty(self.f, lhs) == Ty::F64;
                self.load_fp(lhs, F0, false);
                self.load_fp(rhs, F1, false);
                self.emit(AInst::FCmp { dp, dn: F0, dm: F1 });
                match pred {
                    FPred::Oeq => self.emit(AInst::CSet { rd: S0, cc: Cc::Eq }),
                    FPred::Ogt => self.emit(AInst::CSet { rd: S0, cc: Cc::Gt }),
                    FPred::Oge => self.emit(AInst::CSet { rd: S0, cc: Cc::Ge }),
                    FPred::Olt => self.emit(AInst::CSet { rd: S0, cc: Cc::Mi }),
                    FPred::Ole => self.emit(AInst::CSet { rd: S0, cc: Cc::Ls }),
                    FPred::Une => self.emit(AInst::CSet { rd: S0, cc: Cc::Ne }),
                    FPred::Uno => self.emit(AInst::CSet { rd: S0, cc: Cc::Vs }),
                    FPred::Ord => self.emit(AInst::CSet { rd: S0, cc: Cc::Vc }),
                    FPred::One => {
                        // ordered-and-not-equal = mi ∨ gt.
                        self.emit(AInst::CSet { rd: S0, cc: Cc::Mi });
                        self.emit(AInst::CSet { rd: S1, cc: Cc::Gt });
                        self.emit(AInst::Alu {
                            op: AAlu::Orr,
                            rd: S0,
                            rn: S0,
                            rm: S1,
                            ra: X::ZR,
                        });
                    }
                }
                self.store_int(id, S0);
            }
            InstKind::Load { ptr, .. } => {
                self.load_int(ptr, S0);
                if ty.is_float() {
                    self.emit(AInst::LdrF {
                        sz: ty_sz(ty),
                        dt: F0,
                        mem: AMem { base: S0, off: 0 },
                    });
                    self.store_fp(id, F0, false);
                } else if ty.is_vector() {
                    self.emit(AInst::LdrF {
                        sz: Sz::Q,
                        dt: F0,
                        mem: AMem { base: S0, off: 0 },
                    });
                    self.store_fp(id, F0, true);
                } else {
                    self.emit(AInst::Ldr {
                        sz: ty_sz(ty),
                        rt: S1,
                        mem: AMem { base: S0, off: 0 },
                    });
                    self.store_int(id, S1);
                }
            }
            InstKind::Store { ptr, val, .. } => {
                let vt = self.m.operand_ty(self.f, val);
                self.load_int(ptr, S0);
                if vt.is_float() {
                    self.load_fp(val, F0, false);
                    self.emit(AInst::StrF {
                        sz: ty_sz(vt),
                        dt: F0,
                        mem: AMem { base: S0, off: 0 },
                    });
                } else if vt.is_vector() {
                    self.load_fp(val, F0, true);
                    self.emit(AInst::StrF {
                        sz: Sz::Q,
                        dt: F0,
                        mem: AMem { base: S0, off: 0 },
                    });
                } else {
                    self.load_int(val, S1);
                    self.emit(AInst::Str {
                        sz: ty_sz(vt),
                        rt: S1,
                        mem: AMem { base: S0, off: 0 },
                    });
                }
            }
            InstKind::Fence { kind } => {
                let dmb = match kind {
                    FenceKind::Frm => Dmb::Ld,
                    FenceKind::Fww => Dmb::St,
                    FenceKind::Fsc => Dmb::Ff,
                };
                self.emit(AInst::DmbI { kind: dmb });
            }
            InstKind::AtomicRmw { op, ptr, val } => {
                // Figure 8b: DMBFF ; RMW ; DMBFF with the ll/sc loop of §2.1.
                let sz = ty_sz(ty);
                let bits = int_bits(ty);
                self.load_int(ptr, S0);
                self.load_int(val, S1);
                self.emit(AInst::DmbI { kind: Dmb::Ff });
                let loop_blk = self.new_block();
                let done_blk = self.new_block();
                self.blocks[self.cur].term = Some(ATerm::B(loop_blk));
                self.cur = loop_blk.0 as usize;
                self.emit(AInst::Ldxr { sz, rt: S2, rn: S0 });
                let aop = match op {
                    RmwOp::Xchg => None,
                    RmwOp::Add => Some(AAlu::Add),
                    RmwOp::Sub => Some(AAlu::Sub),
                    RmwOp::And => Some(AAlu::And),
                    RmwOp::Or => Some(AAlu::Orr),
                    RmwOp::Xor => Some(AAlu::Eor),
                };
                match aop {
                    Some(a) => {
                        self.emit(AInst::Alu {
                            op: a,
                            rd: S3,
                            rn: S2,
                            rm: S1,
                            ra: X::ZR,
                        });
                        self.mask(S3, bits);
                    }
                    None => self.emit(AInst::MovReg { rd: S3, rm: S1 }),
                }
                self.emit(AInst::Stxr {
                    sz,
                    rs: X(15),
                    rt: S3,
                    rn: S0,
                });
                self.blocks[self.cur].term = Some(ATerm::Cbnz {
                    rn: X(15),
                    then: loop_blk,
                    els: done_blk,
                });
                self.cur = done_blk.0 as usize;
                self.emit(AInst::DmbI { kind: Dmb::Ff });
                self.store_int(id, S2);
            }
            InstKind::CmpXchg { ptr, expected, new } => {
                let sz = ty_sz(ty);
                self.load_int(ptr, S0);
                self.load_int(expected, S1);
                self.load_int(new, S2);
                self.emit(AInst::DmbI { kind: Dmb::Ff });
                let loop_blk = self.new_block();
                let store_blk = self.new_block();
                let done_blk = self.new_block();
                self.blocks[self.cur].term = Some(ATerm::B(loop_blk));
                // loop: ldxr; cmp; b.ne done (failed); stxr; cbnz loop
                self.cur = loop_blk.0 as usize;
                self.emit(AInst::Ldxr { sz, rt: S3, rn: S0 });
                self.emit(AInst::Cmp { rn: S3, rm: S1 });
                self.emit(AInst::CSet {
                    rd: X(14),
                    cc: Cc::Ne,
                });
                self.blocks[self.cur].term = Some(ATerm::Cbnz {
                    rn: X(14),
                    then: done_blk,
                    els: store_blk,
                });
                self.cur = store_blk.0 as usize;
                self.emit(AInst::Stxr {
                    sz,
                    rs: X(15),
                    rt: S2,
                    rn: S0,
                });
                self.blocks[self.cur].term = Some(ATerm::Cbnz {
                    rn: X(15),
                    then: loop_blk,
                    els: done_blk,
                });
                self.cur = done_blk.0 as usize;
                self.emit(AInst::DmbI { kind: Dmb::Ff });
                self.store_int(id, S3);
            }
            InstKind::Alloca { .. } => {
                let off = self.alloca_off[&id.0];
                self.emit(AInst::AddImm {
                    rd: S0,
                    rn: FP,
                    imm: off,
                });
                self.store_int(id, S0);
            }
            InstKind::Gep {
                base,
                offset,
                elem_size,
            } => {
                self.load_int(base, S0);
                self.load_int(offset, S1);
                if *elem_size != 1 {
                    self.emit(AInst::MovImm {
                        rd: S2,
                        imm: *elem_size,
                    });
                    self.emit(AInst::Alu {
                        op: AAlu::Mul,
                        rd: S1,
                        rn: S1,
                        rm: S2,
                        ra: X::ZR,
                    });
                }
                self.emit(AInst::Alu {
                    op: AAlu::Add,
                    rd: S0,
                    rn: S0,
                    rm: S1,
                    ra: X::ZR,
                });
                self.store_int(id, S0);
            }
            InstKind::Cast { op, val } => self.lower_cast(id, *op, val, ty),
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.load_int(cond, S2);
                if ty.is_float() || ty.is_vector() {
                    // Select through the integer file (slots hold raw bits);
                    // 128-bit values fall back to two-halves copies in the
                    // interpreter-supported pattern below.
                    self.load_int(if_true, S0);
                    self.load_int(if_false, S1);
                    self.emit(AInst::Cmp { rn: S2, rm: X::ZR });
                    self.emit(AInst::CSel {
                        rd: S0,
                        rn: S1,
                        rm: S0,
                        cc: Cc::Eq,
                    });
                    self.store_int(id, S0);
                } else {
                    self.load_int(if_true, S0);
                    self.load_int(if_false, S1);
                    self.emit(AInst::Cmp { rn: S2, rm: X::ZR });
                    self.emit(AInst::CSel {
                        rd: S0,
                        rn: S1,
                        rm: S0,
                        cc: Cc::Eq,
                    });
                    self.store_int(id, S0);
                }
            }
            InstKind::Call { callee, args } => {
                // Marshal arguments.
                let mut int_idx = 0u8;
                let mut fp_idx = 0u8;
                for a in args {
                    let at = self.m.operand_ty(self.f, a);
                    if at.is_float() {
                        self.load_fp(a, D(fp_idx), false);
                        fp_idx += 1;
                    } else if at.is_vector() {
                        self.load_fp(a, D(fp_idx), true);
                        fp_idx += 1;
                    } else {
                        self.load_int(a, X(int_idx));
                        int_idx += 1;
                    }
                }
                let target = match callee {
                    Callee::Func(fi) => ACallee::Func(fi.0),
                    Callee::Extern(e) => ACallee::Extern(e.0),
                    Callee::Indirect(op) => {
                        self.load_int(op, X(16));
                        ACallee::Reg(X(16))
                    }
                };
                self.emit(AInst::Bl { callee: target });
                if ty != Ty::Void {
                    if ty.is_float() {
                        self.store_fp(id, D(0), false);
                    } else if ty.is_vector() {
                        self.store_fp(id, D(0), true);
                    } else {
                        self.store_int(id, X(0));
                    }
                }
            }
            InstKind::Phi { .. } => {
                // Copy shadow → slot.
                let sh = self.shadow[&id.0];
                self.emit(AInst::Ldr {
                    sz: Sz::X,
                    rt: S0,
                    mem: AMem { base: FP, off: sh },
                });
                self.store_int(id, S0);
                if ty.is_vector() {
                    self.emit(AInst::Ldr {
                        sz: Sz::X,
                        rt: S0,
                        mem: AMem {
                            base: FP,
                            off: sh + 8,
                        },
                    });
                    self.emit(AInst::Str {
                        sz: Sz::X,
                        rt: S0,
                        mem: AMem {
                            base: FP,
                            off: self.slot[&id.0] + 8,
                        },
                    });
                }
            }
            InstKind::ExtractElement { vec, idx } => {
                // Slots hold raw vector bytes; read the lane from the slot.
                let lane = ty.size() as i32;
                match vec {
                    Operand::Inst(v) => {
                        let m = AMem {
                            base: FP,
                            off: self.slot[&v.0] + *idx as i32 * lane,
                        };
                        self.emit(AInst::Ldr {
                            sz: ty_sz(ty),
                            rt: S0,
                            mem: m,
                        });
                    }
                    _ => self.emit(AInst::MovImm { rd: S0, imm: 0 }),
                }
                self.store_int(id, S0);
            }
            InstKind::InsertElement { vec, elt, idx } => {
                // Copy the whole vector, then overwrite one lane.
                self.load_fp(vec, F0, true);
                self.store_fp(id, F0, true);
                let et = self.m.operand_ty(self.f, elt);
                let lane = et.size() as i32;
                self.load_int(elt, S0);
                self.emit(AInst::Str {
                    sz: ty_sz(et),
                    rt: S0,
                    mem: AMem {
                        base: FP,
                        off: self.slot[&id.0] + *idx as i32 * lane,
                    },
                });
            }
        }
    }

    /// 128-bit xor through the integer file (two 64-bit halves).
    fn load_int_pair_xor(&mut self, lhs: &Operand, rhs: &Operand, id: InstId) {
        // Store both operands to their slots is already done; xor halves.
        for half in 0..2 {
            let off = half * 8;
            let get = |lw: &mut Self, op: &Operand, rd: X| match op {
                Operand::Inst(v) => lw.emit(AInst::Ldr {
                    sz: Sz::X,
                    rt: rd,
                    mem: AMem {
                        base: FP,
                        off: lw.slot[&v.0] + off,
                    },
                }),
                _ => lw.emit(AInst::MovImm { rd, imm: 0 }),
            };
            get(self, lhs, S0);
            get(self, rhs, S1);
            self.emit(AInst::Alu {
                op: AAlu::Eor,
                rd: S0,
                rn: S0,
                rm: S1,
                ra: X::ZR,
            });
            self.emit(AInst::Str {
                sz: Sz::X,
                rt: S0,
                mem: AMem {
                    base: FP,
                    off: self.slot[&id.0] + off,
                },
            });
        }
    }

    fn lower_cast(&mut self, id: InstId, op: CastOp, val: &Operand, ty: Ty) {
        match op {
            CastOp::Trunc | CastOp::ZExt => {
                let from = self.m.operand_ty(self.f, val);
                self.load_int(val, S0);
                let bits = int_bits(if op == CastOp::Trunc { ty } else { from });
                self.mask(S0, bits);
                self.store_int(id, S0);
            }
            CastOp::SExt => {
                let from = self.m.operand_ty(self.f, val);
                self.load_int(val, S0);
                self.sext(S0, S0, int_bits(from));
                self.mask(S0, int_bits(ty));
                self.store_int(id, S0);
            }
            CastOp::BitCast | CastOp::IntToPtr | CastOp::PtrToInt => {
                // Raw bit copy between slots (vectors copy both halves).
                if ty.is_vector() || self.m.operand_ty(self.f, val).is_vector() {
                    self.load_fp(val, F0, true);
                    self.store_fp(id, F0, true);
                } else {
                    self.load_int(val, S0);
                    self.store_int(id, S0);
                }
            }
            CastOp::SiToFp => {
                let from = self.m.operand_ty(self.f, val);
                self.load_int(val, S0);
                self.sext(S0, S0, int_bits(from));
                self.emit(AInst::Scvtf {
                    dp: ty == Ty::F64,
                    from64: true,
                    dd: F0,
                    rn: S0,
                });
                self.store_fp(id, F0, false);
            }
            CastOp::FpToSi => {
                let from = self.m.operand_ty(self.f, val);
                self.load_fp(val, F0, false);
                self.emit(AInst::Fcvtzs {
                    dp: from == Ty::F64,
                    to64: true,
                    rd: S0,
                    dn: F0,
                });
                self.mask(S0, int_bits(ty));
                self.store_int(id, S0);
            }
            CastOp::FpExt => {
                self.load_fp(val, F0, false);
                self.emit(AInst::Fcvt {
                    to_double: true,
                    dd: F0,
                    dn: F0,
                });
                self.store_fp(id, F0, false);
            }
            CastOp::FpTrunc => {
                self.load_fp(val, F0, false);
                self.emit(AInst::Fcvt {
                    to_double: false,
                    dd: F0,
                    dn: F0,
                });
                self.store_fp(id, F0, false);
            }
        }
    }

    fn lower_term(&mut self, b: lasagne_lir::BlockId) {
        // First: φ shadow writes for successors.
        let term = self.f.block(b).term.clone();
        for succ in term.successors() {
            let phi_ids: Vec<InstId> = self
                .f
                .block(succ)
                .insts
                .iter()
                .take_while(|i| matches!(self.f.inst(**i).kind, InstKind::Phi { .. }))
                .copied()
                .collect();
            for pid in phi_ids {
                let InstKind::Phi { incoming } = &self.f.inst(pid).kind else {
                    unreachable!()
                };
                let Some((_, val)) = incoming.iter().find(|(p, _)| *p == b) else {
                    continue;
                };
                let val = *val;
                let sh = self.shadow[&pid.0];
                let vty = self.m.operand_ty(self.f, &val);
                if vty.is_vector() {
                    self.load_fp(&val, F0, true);
                    self.emit(AInst::StrF {
                        sz: Sz::Q,
                        dt: F0,
                        mem: AMem { base: FP, off: sh },
                    });
                } else if vty.is_float() {
                    self.load_fp(&val, F0, false);
                    self.emit(AInst::StrF {
                        sz: Sz::X,
                        dt: F0,
                        mem: AMem { base: FP, off: sh },
                    });
                } else {
                    self.load_int(&val, S0);
                    self.emit(AInst::Str {
                        sz: Sz::X,
                        rt: S0,
                        mem: AMem { base: FP, off: sh },
                    });
                }
            }
        }
        let aterm = match &term {
            Terminator::Br { dest } => ATerm::B(Blk(self.block_map[dest.0 as usize])),
            Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                self.load_int(cond, S0);
                ATerm::Cbnz {
                    rn: S0,
                    then: Blk(self.block_map[if_true.0 as usize]),
                    els: Blk(self.block_map[if_false.0 as usize]),
                }
            }
            Terminator::Ret { val } => {
                if let Some(v) = val {
                    let vt = self.m.operand_ty(self.f, v);
                    if vt.is_float() {
                        self.load_fp(v, D(0), false);
                    } else if vt.is_vector() {
                        self.load_fp(v, D(0), true);
                    } else {
                        self.load_int(v, X(0));
                    }
                }
                ATerm::Ret
            }
            Terminator::Unreachable => ATerm::Brk,
        };
        if self.blocks[self.cur].term.is_none() {
            self.blocks[self.cur].term = Some(aterm);
        }
    }
}
