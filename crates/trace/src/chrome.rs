//! Chrome trace-event JSON export.
//!
//! Renders a [`Collector`]'s event log in the [trace-event format]
//! understood by Perfetto and `chrome://tracing`: one JSON object with a
//! `traceEvents` array. Spans become complete events (`"ph":"X"`) with
//! microsecond `ts`/`dur`; instants become `"ph":"i"` with thread scope.
//! Every event carries `pid` 1 and `tid` = its track, and a `thread_name`
//! metadata event names each declared track (`main`, `worker-1`, …), so
//! the viewer shows exactly one named track per worker thread.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{json, Collector, Event};

/// Renders `col`'s events as a Chrome trace-event JSON document.
pub fn chrome_json(col: &Collector) -> String {
    let events = col.all_events();
    let tracks = col.max_track();
    let mut s = String::with_capacity(events.len() * 96 + 256);
    s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    s.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lasagne\"}}",
    );
    for t in 0..=tracks {
        let name = if t == 0 {
            "main".to_string()
        } else {
            format!("worker-{t}")
        };
        s.push_str(&format!(
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\
             \"args\":{{\"name\":{}}}}}",
            json::escape(&name)
        ));
    }
    for ev in &events {
        s.push(',');
        s.push_str(&event_json(ev));
    }
    s.push_str("]}");
    s
}

/// Nanoseconds → microseconds with sub-µs precision, as trace-event `ts`
/// values are microseconds.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

fn event_json(ev: &Event) -> String {
    let mut s = format!(
        "{{\"name\":{},\"cat\":{},",
        json::escape(&ev.name),
        json::escape(ev.cat)
    );
    match ev.dur_nanos {
        Some(dur) => s.push_str(&format!(
            "\"ph\":\"X\",\"ts\":{},\"dur\":{},",
            micros(ev.ts_nanos),
            micros(dur)
        )),
        None => s.push_str(&format!(
            "\"ph\":\"i\",\"s\":\"t\",\"ts\":{},",
            micros(ev.ts_nanos)
        )),
    }
    s.push_str(&format!("\"pid\":1,\"tid\":{},\"args\":{{", ev.track));
    s.push_str(&format!("\"depth\":{}", ev.depth));
    for (k, v) in &ev.args {
        s.push_str(&format!(",{}:{}", json::escape(k), v.to_json()));
    }
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArgVal, TraceCtx};

    #[test]
    fn export_is_valid_json_with_named_tracks() {
        let ctx = TraceCtx::collecting();
        ctx.declare_tracks(2);
        {
            let mut sp = ctx.span("lift", "main");
            sp.arg("insts", 42u64);
        }
        ctx.instant(
            "fences",
            "fence",
            vec![
                ("rule", ArgVal::from("shared-load")),
                ("site", ArgVal::U64(3)),
            ],
        );
        let out = ctx.chrome_json().unwrap();
        let doc = json::parse(&out).expect("chrome export parses");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // process_name + 3 thread_name (tracks 0..=2) + span + instant.
        assert_eq!(events.len(), 6);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, ["lasagne", "main", "worker-1", "worker-2"]);
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("complete span event");
        assert_eq!(span.get("cat").unwrap().as_str(), Some("lift"));
        assert_eq!(
            span.get("args").unwrap().get("insts").unwrap().as_u64(),
            Some(42)
        );
        assert!(span.get("dur").unwrap().as_f64().is_some());
    }
}
