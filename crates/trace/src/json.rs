//! A minimal JSON reader (and string escaper) for validating the crate's
//! own exporters.
//!
//! The workspace bans external dependencies, so tests and the CLI's
//! `trace-check` validator parse emitted JSON with this module instead of
//! serde. It implements the full JSON grammar over UTF-8 input; numbers
//! are read as `f64` (sufficient for trace timestamps and counters).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object. Key order is not preserved; duplicate keys keep the last
    /// value (as browsers do).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as u64, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] on any syntax violation.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Escapes `s` as a JSON string literal (with surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.i + 5 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are rejoined when both halves
                            // are present; lone surrogates become U+FFFD.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.b[self.i + 5..].starts_with(b"\\u")
                            {
                                let hex2 = std::str::from_utf8(&self.b[self.i + 7..self.i + 11])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let lo = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                    self.i += 10;
                                } else {
                                    out.push('\u{FFFD}');
                                    self.i += 4;
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                                self.i += 4;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "q\"uote", "back\\slash", "new\nline", "\u{1}"] {
            let lit = escape(s);
            assert_eq!(parse(&lit).unwrap(), Json::Str(s.to_string()), "{lit}");
        }
    }

    #[test]
    fn surrogate_pairs_rejoin() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }
}
