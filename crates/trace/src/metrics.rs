//! Monotonic counters and fixed-bucket histograms.
//!
//! Counters are **lock-striped**: each worker track hashes to one of
//! [`COUNTER_STRIPES`] independent maps, so concurrent `par_map` workers
//! increment without contending; [`MetricsRegistry::snapshot`] merges the
//! stripes. Totals are therefore exact and independent of scheduling —
//! a parallel run and a serial run of the same work produce identical
//! snapshots.
//!
//! Histograms use fixed, caller-supplied bucket bounds. Value `v` lands in
//! the first bucket whose upper bound satisfies `v <= bounds[i]`, with one
//! implicit overflow bucket at the end, so bucket assignment is a pure
//! function of `(bounds, v)`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json;

/// Number of counter stripes.
pub const COUNTER_STRIPES: usize = 8;

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (the last
    /// entry is the overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub total: u64,
}

impl Histogram {
    /// An empty histogram with the given bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            total: 0,
        }
    }

    /// The bucket index `value` falls into: the first `i` with
    /// `value <= bounds[i]`, or the overflow bucket.
    pub fn bucket_index(bounds: &[u64], value: u64) -> usize {
        bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(bounds.len())
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let i = Histogram::bucket_index(&self.bounds, value);
        self.counts[i] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Folds every observation of `other` into `self` (bucket-wise; both
    /// histograms must share bounds). Used to replay an externally
    /// maintained histogram — e.g. the work-stealing pool's queue-depth
    /// buckets — into a run's registry.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.total += other.total;
    }

    /// Number of recorded values (accessor form of the public field, for
    /// call sites holding the histogram behind an interface).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile (0–100) estimated from the bucket counts by
    /// linear interpolation inside the target bucket.
    ///
    /// The target rank is the nearest-rank `ceil(p/100 · total)` (the
    /// same convention as the serve load generator's exact-sample
    /// percentile, so client-side and server-side figures are
    /// comparable). Within the bucket holding that rank the estimate
    /// interpolates between the bucket's bounds — bucket `i` covers
    /// `(bounds[i-1], bounds[i]]`, with an implicit lower edge of 0 —
    /// so the error is bounded by one bucket width. Ranks landing in
    /// the overflow bucket return the last finite bound (a floor: the
    /// true value is at least that), and an empty histogram returns 0.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 || self.bounds.is_empty() {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil() as u64;
        let target = target.clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket: no upper bound to interpolate
                    // toward; report the largest finite bound.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let into = (target - seen) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * into).round() as u64;
            }
            seen += c;
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// The observations recorded in `self` but not in `earlier`: the
    /// bucket-wise difference of two snapshots of one monotonically
    /// growing histogram. Saturating, so a mismatched pair degrades to
    /// zeros instead of wrapping.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new(&self.bounds);
        for (i, c) in self.counts.iter().enumerate() {
            d.counts[i] = c.saturating_sub(earlier.counts.get(i).copied().unwrap_or(0));
        }
        d.sum = self.sum.saturating_sub(earlier.sum);
        d.total = self.total.saturating_sub(earlier.total);
        d
    }

    /// Renders the histogram as a JSON object.
    pub fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(u64::to_string).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"total\":{}}}",
            bounds.join(","),
            counts.join(","),
            self.sum,
            self.total
        )
    }
}

/// The counter/histogram store shared by all clones of an enabled
/// `TraceCtx`.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Vec<Mutex<BTreeMap<String, u64>>>,
    histos: Mutex<BTreeMap<String, Histogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: (0..COUNTER_STRIPES)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            histos: Mutex::new(BTreeMap::new()),
        }
    }

    /// Adds `delta` to counter `name`, striping by `track`.
    pub fn add(&self, track: u32, name: &str, delta: u64) {
        let mut stripe = lock_clean(&self.counters[track as usize % COUNTER_STRIPES]);
        match stripe.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                stripe.insert(name.to_string(), delta);
            }
        }
    }

    /// Records `value` into histogram `name`, creating it with `bounds` on
    /// first use.
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        let mut histos = lock_clean(&self.histos);
        histos
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Folds an externally maintained histogram into histogram `name`
    /// (creating it with `src`'s bounds on first use). The pipeline uses
    /// this to publish the shared pool's per-run queue-depth delta into a
    /// traced run's metrics.
    pub fn merge_histogram(&self, name: &str, src: &Histogram) {
        let mut histos = lock_clean(&self.histos);
        histos
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(&src.bounds))
            .merge(src);
    }

    /// Merges every stripe into one deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        for stripe in &self.counters {
            for (k, v) in lock_clean(stripe).iter() {
                *counters.entry(k.clone()).or_insert(0) += v;
            }
        }
        MetricsSnapshot {
            counters,
            histos: lock_clean(&self.histos).clone(),
        }
    }
}

/// A merged, immutable view of all counters and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, sorted by name.
    pub histos: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// A counter's total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"histograms":{...}}` with keys sorted.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{v}", json::escape(k)));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histos.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{}:{}", json::escape(k), h.to_json()));
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        let bounds = [10, 100, 1000];
        assert_eq!(Histogram::bucket_index(&bounds, 0), 0);
        assert_eq!(Histogram::bucket_index(&bounds, 10), 0);
        assert_eq!(Histogram::bucket_index(&bounds, 11), 1);
        assert_eq!(Histogram::bucket_index(&bounds, 100), 1);
        assert_eq!(Histogram::bucket_index(&bounds, 101), 2);
        assert_eq!(Histogram::bucket_index(&bounds, 1000), 2);
        assert_eq!(Histogram::bucket_index(&bounds, 1001), 3);
        assert_eq!(Histogram::bucket_index(&bounds, u64::MAX), 3);
    }

    #[test]
    fn histogram_records_sum_and_total() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.total, 8);
        assert_eq!(h.sum, 1045);
    }

    /// Exact nearest-rank percentile of a value list, the reference the
    /// bucket estimator is pinned against.
    fn exact_percentile(values: &mut Vec<u64>, p: f64) -> u64 {
        values.sort_unstable();
        let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
        values[rank.clamp(1, values.len()) - 1]
    }

    #[test]
    fn percentile_interpolates_within_one_bucket_width() {
        // Uniform 1..=1000 over ten equal buckets: the estimator must land
        // within one bucket width (100) of the exact percentile, and is
        // expected to be much closer under a uniform distribution.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let mut h = Histogram::new(&bounds);
        let mut values: Vec<u64> = (1..=1000).collect();
        for &v in &values {
            h.record(v);
        }
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&mut values, p);
            let est = h.percentile(p);
            let err = est.abs_diff(exact);
            assert!(
                err <= 100,
                "p{p}: estimate {est} vs exact {exact} (err {err} > bucket width)"
            );
            assert!(
                err <= 2,
                "uniform data should interpolate tightly: p{p} err {err}"
            );
        }
    }

    #[test]
    fn percentile_on_skewed_data_stays_within_its_bucket() {
        // Exponentially spread values against doubling bounds: every
        // estimate must stay inside the bucket holding the exact value.
        let bounds: Vec<u64> = (0..16).map(|i| 1u64 << i).collect();
        let mut h = Histogram::new(&bounds);
        let mut values = Vec::new();
        for i in 0..14u64 {
            // 2^i observations of value 2^i: heavy head, long tail.
            for _ in 0..(1 << i) {
                values.push(1 << i);
                h.record(1 << i);
            }
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&mut values, p);
            let est = h.percentile(p);
            let bi = Histogram::bucket_index(&bounds, exact);
            let lower = if bi == 0 { 0 } else { bounds[bi - 1] };
            let upper = bounds[bi.min(bounds.len() - 1)];
            assert!(
                (lower..=upper).contains(&est),
                "p{p}: estimate {est} left exact value {exact}'s bucket [{lower},{upper}]"
            );
        }
    }

    #[test]
    fn percentile_edge_cases() {
        let bounds = [10, 100, 1000];
        let empty = Histogram::new(&bounds);
        assert_eq!(empty.percentile(50.0), 0, "empty histogram yields 0");

        let mut single = Histogram::new(&bounds);
        single.record(42);
        // One value in (10, 100]: every percentile interpolates inside
        // that bucket.
        for p in [0.0, 50.0, 100.0] {
            let est = single.percentile(p);
            assert!((11..=100).contains(&est), "p{p} = {est} outside bucket");
        }

        // Overflow-bucket ranks floor to the last finite bound.
        let mut over = Histogram::new(&bounds);
        over.record(5000);
        assert_eq!(over.percentile(99.0), 1000);
    }

    #[test]
    fn accessors_track_sum_and_total() {
        let mut h = Histogram::new(&[10, 100]);
        assert_eq!((h.total(), h.sum()), (0, 0));
        assert_eq!(h.mean(), 0.0);
        h.record(5);
        h.record(45);
        assert_eq!((h.total(), h.sum()), (2, 50));
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn striped_counters_merge_exactly() {
        let r = MetricsRegistry::new();
        for track in 0..32u32 {
            r.add(track, "x", 1);
        }
        r.add(0, "y", 7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), 32);
        assert_eq!(snap.counter("y"), 7);
        assert_eq!(snap.counter("absent"), 0);
    }
}
