//! Structured tracing and metrics for the translation pipeline.
//!
//! The crate is std-only (the workspace's zero-external-dependency policy)
//! and provides the observability spine of the pipeline:
//!
//! * **[`TraceCtx`]** — the handle threaded through every Figure 3 stage.
//!   A disabled context ([`TraceCtx::disabled`]) is a `None` behind a
//!   clonable wrapper: every recording method starts with an `enabled`
//!   check and performs no allocation, no locking, and no clock read, so
//!   tracing costs nothing on the hot path when off.
//! * **Spans and events** — [`TraceCtx::span`] returns a guard that records
//!   a *complete* duration event on drop; [`TraceCtx::instant`] records a
//!   point event. Events carry structured key/value [`ArgVal`] arguments, a
//!   per-thread *track* (see below), and the span nesting depth.
//! * **[`MetricsRegistry`]** — monotonic counters and fixed-bucket
//!   histograms, striped across several mutexes so concurrent workers from
//!   the pipeline's `par_map` do not contend (see [`metrics`]).
//! * **Exporters** — [`chrome`] renders the event log as Chrome
//!   trace-event JSON (loadable in Perfetto or `chrome://tracing`, one
//!   track per worker thread); [`MetricsSnapshot::to_json`] renders the
//!   flat metrics object merged into the pipeline's `--timings` report.
//! * **[`json`]** — a minimal JSON reader used by tests and the CLI's
//!   `trace-check` validator to parse the exporters' output back.
//!
//! # Tracks
//!
//! Chrome trace viewers group events by `(pid, tid)`. Worker threads
//! spawned by the pipeline's `par_map` are short-lived (one
//! `std::thread::scope` per stage), so using OS thread identity would
//! scatter one worker slot's events over dozens of tracks. Instead the
//! pipeline assigns each worker *slot* a stable small integer via
//! [`set_current_track`] (slot `w` → track `w + 1`; the main thread is
//! track 0), giving exactly one track per worker thread in the output.
//!
//! # Lock discipline
//!
//! Every mutex acquisition goes through a poison-recovering helper: a
//! panicking worker must never poison the collector for the rest of the
//! pipeline (events are append-only, so a torn write cannot exist). The
//! repository CI greps this crate for `lock().unwrap()` and fails if the
//! pattern reappears.

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of independent event stripes in a [`Collector`]. Workers hash to
/// a stripe by track id, so with the pipeline's small worker counts each
/// worker effectively owns a stripe.
pub const EVENT_STRIPES: usize = 16;

thread_local! {
    static CURRENT_TRACK: Cell<u32> = const { Cell::new(0) };
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Assigns the calling thread's track id (0 is the main/serial track;
/// worker slot `w` conventionally uses `w + 1`). Cheap enough to call
/// unconditionally at worker startup.
pub fn set_current_track(track: u32) {
    CURRENT_TRACK.with(|t| t.set(track));
}

/// The calling thread's track id.
pub fn current_track() -> u32 {
    CURRENT_TRACK.with(|t| t.get())
}

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
///
/// Poisoning exists to flag state a panicking thread may have left
/// half-updated; every structure this crate (and the pipeline's
/// instrumentation) guards is either append-only or written in a single
/// statement, so recovery is always safe — and an `unwrap()` here would
/// let one panicking worker take the whole trace (or the work-stealing
/// pool) down with it. Public so the pipeline's `TimingSink` and
/// `pipeline::pool` share the one poison policy; `ci.sh` greps both
/// crates for raw `lock().unwrap()` calls.
///
/// ```
/// use std::sync::Mutex;
/// let m = Mutex::new(1u32);
/// *lasagne_trace::lock_clean(&m) += 1;
/// assert_eq!(*lasagne_trace::lock_clean(&m), 2);
/// ```
pub fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A structured event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// String.
    Str(String),
}

impl ArgVal {
    /// Renders the value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            ArgVal::U64(v) => v.to_string(),
            ArgVal::I64(v) => v.to_string(),
            ArgVal::Str(s) => json::escape(s),
        }
    }
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> ArgVal {
        ArgVal::U64(v)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> ArgVal {
        ArgVal::U64(v as u64)
    }
}

impl From<i64> for ArgVal {
    fn from(v: i64) -> ArgVal {
        ArgVal::I64(v)
    }
}

impl From<&str> for ArgVal {
    fn from(v: &str) -> ArgVal {
        ArgVal::Str(v.to_string())
    }
}

impl From<String> for ArgVal {
    fn from(v: String) -> ArgVal {
        ArgVal::Str(v)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event name (e.g. a function name or `"cache-hit"`).
    pub name: String,
    /// Category — by convention the pipeline stage (`"lift"`, `"fences"`,
    /// …) or a subsystem (`"cache"`).
    pub cat: &'static str,
    /// Start time in nanoseconds since the collector's epoch.
    pub ts_nanos: u64,
    /// `Some(duration)` for a completed span, `None` for an instant event.
    pub dur_nanos: Option<u64>,
    /// Track (worker slot) the event was recorded on.
    pub track: u32,
    /// Span nesting depth at record time (0 = top level).
    pub depth: u32,
    /// Structured key/value arguments.
    pub args: Vec<(&'static str, ArgVal)>,
}

/// The shared event/metrics sink behind an enabled [`TraceCtx`].
///
/// Events land in one of [`EVENT_STRIPES`] mutex-protected vectors chosen
/// by track id, so pipeline workers append without contending with each
/// other or with the main thread.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    stripes: Vec<Mutex<Vec<Event>>>,
    metrics: MetricsRegistry,
    /// Highest declared track id (== worker count; track 0 is main).
    tracks: AtomicU32,
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    /// Creates an empty collector; its epoch is the creation instant.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            stripes: (0..EVENT_STRIPES).map(|_| Mutex::new(Vec::new())).collect(),
            metrics: MetricsRegistry::new(),
            tracks: AtomicU32::new(0),
        }
    }

    /// Nanoseconds since the collector's epoch.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one event into the calling thread's stripe.
    pub fn record(&self, ev: Event) {
        let stripe = ev.track as usize % EVENT_STRIPES;
        lock_clean(&self.stripes[stripe]).push(ev);
    }

    /// Declares that tracks `0..=n` exist (main + `n` worker slots), so the
    /// Chrome export names them even if a slot recorded no events.
    pub fn declare_tracks(&self, n: u32) {
        self.tracks.fetch_max(n, Ordering::Relaxed);
    }

    /// Highest declared or observed track id.
    pub fn max_track(&self) -> u32 {
        let declared = self.tracks.load(Ordering::Relaxed);
        let observed = self.all_events().iter().map(|e| e.track).max().unwrap_or(0);
        declared.max(observed)
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// All events so far, sorted by `(ts, track, name)` for a stable
    /// export order.
    pub fn all_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for s in &self.stripes {
            out.extend(lock_clean(s).iter().cloned());
        }
        out.sort_by(|a, b| (a.ts_nanos, a.track, &a.name).cmp(&(b.ts_nanos, b.track, &b.name)));
        out
    }
}

/// The tracing handle threaded through the pipeline. Cloning is cheap
/// (an `Option<Arc>`); clones share one [`Collector`].
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<Collector>>,
}

impl TraceCtx {
    /// A disabled context: every recording method is a no-op that performs
    /// no allocation and reads no clock.
    pub fn disabled() -> TraceCtx {
        TraceCtx { inner: None }
    }

    /// An enabled context with a fresh collector.
    pub fn collecting() -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(Collector::new())),
        }
    }

    /// Whether recording is enabled. Call sites that would allocate while
    /// building event arguments should gate on this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The collector, when enabled.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.inner.as_ref()
    }

    /// Opens a span; the returned guard records a complete duration event
    /// when dropped. `name` is only copied when tracing is enabled.
    pub fn span(&self, cat: &'static str, name: &str) -> Span<'_> {
        match &self.inner {
            None => Span { live: None },
            Some(col) => {
                let depth = SPAN_DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                Span {
                    live: Some(SpanLive {
                        col,
                        name: name.to_string(),
                        cat,
                        start: col.now_nanos(),
                        track: current_track(),
                        depth,
                        args: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Records an instant event with structured arguments.
    pub fn instant(&self, cat: &'static str, name: &str, args: Vec<(&'static str, ArgVal)>) {
        if let Some(col) = &self.inner {
            col.record(Event {
                name: name.to_string(),
                cat,
                ts_nanos: col.now_nanos(),
                dur_nanos: None,
                track: current_track(),
                depth: SPAN_DEPTH.with(|d| d.get()),
                args,
            });
        }
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(col) = &self.inner {
            col.metrics.add(current_track(), name, delta);
        }
    }

    /// Records `value` into the fixed-bucket histogram `name`, creating it
    /// with `bounds` on first use (bounds must be identical at every call
    /// site for a given name).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        if let Some(col) = &self.inner {
            col.metrics.observe(name, bounds, value);
        }
    }

    /// Folds an externally maintained [`metrics::Histogram`]
    /// into histogram `name` — the bulk counterpart of [`TraceCtx::observe`]
    /// for producers (like the pipeline's work-stealing pool) that keep
    /// their own buckets and publish a per-run delta.
    pub fn merge_histogram(&self, name: &str, src: &metrics::Histogram) {
        if let Some(col) = &self.inner {
            col.metrics.merge_histogram(name, src);
        }
    }

    /// Declares worker tracks `1..=n` (plus main track 0) for the export.
    pub fn declare_tracks(&self, n: u32) {
        if let Some(col) = &self.inner {
            col.declare_tracks(n);
        }
    }

    /// A merged snapshot of all counters and histograms, when enabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|c| c.metrics.snapshot())
    }

    /// The Chrome trace-event JSON export, when enabled.
    pub fn chrome_json(&self) -> Option<String> {
        self.inner.as_ref().map(|c| chrome::chrome_json(c))
    }
}

/// Live half of an in-flight span (absent when tracing is disabled).
#[derive(Debug)]
struct SpanLive<'c> {
    col: &'c Collector,
    name: String,
    cat: &'static str,
    start: u64,
    track: u32,
    depth: u32,
    args: Vec<(&'static str, ArgVal)>,
}

/// Guard for an open span; records a complete event on drop. When tracing
/// is disabled the guard is inert.
#[derive(Debug)]
pub struct Span<'c> {
    live: Option<SpanLive<'c>>,
}

impl Span<'_> {
    /// Attaches a structured argument to the span (no-op when disabled;
    /// gate on [`TraceCtx::is_enabled`] if constructing the value
    /// allocates).
    pub fn arg(&mut self, key: &'static str, val: impl Into<ArgVal>) -> &mut Self {
        if let Some(live) = &mut self.live {
            live.args.push((key, val.into()));
        }
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = live.col.now_nanos();
            live.col.record(Event {
                name: live.name,
                cat: live.cat,
                ts_nanos: live.start,
                dur_nanos: Some(end.saturating_sub(live.start)),
                track: live.track,
                depth: live.depth,
                args: live.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ctx_records_nothing_and_is_cheap() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        {
            let mut s = ctx.span("lift", "f");
            s.arg("k", 1u64);
        }
        ctx.instant("lift", "e", Vec::new());
        ctx.add("c", 5);
        ctx.observe("h", &[1, 2], 1);
        assert!(ctx.metrics_snapshot().is_none());
        assert!(ctx.chrome_json().is_none());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let ctx = TraceCtx::collecting();
        {
            let _outer = ctx.span("opt", "outer");
            let _inner = ctx.span("opt", "inner");
        }
        let events = ctx.collector().unwrap().all_events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.dur_nanos.unwrap() >= inner.dur_nanos.unwrap());
    }

    #[test]
    fn poisoned_stripe_recovers() {
        let ctx = TraceCtx::collecting();
        let col = Arc::clone(ctx.collector().unwrap());
        // Poison stripe 0 (main track) by panicking while holding its lock.
        let col2 = Arc::clone(&col);
        let _ = std::thread::spawn(move || {
            let _g = col2.stripes[0].lock().expect("first lock");
            panic!("poison");
        })
        .join();
        // Recording on the main track must still work.
        ctx.instant("cache", "after-poison", Vec::new());
        assert_eq!(col.all_events().len(), 1);
    }
}
