//! Concurrency tests for `lasagne-trace`: the collector must produce
//! identical counter totals under the pipeline's `par_map` fan-out shape
//! regardless of the worker count, and the Chrome export must stay
//! well-formed under concurrent recording.

use std::sync::atomic::{AtomicUsize, Ordering};

use lasagne_trace::{json, ArgVal, Histogram, MetricsSnapshot, TraceCtx};

/// The pipeline's `par_map` worker shape: `jobs` scoped threads claim item
/// indices from an atomic counter; worker slot `w` runs on track `w + 1`.
/// (Replicated here because `lasagne` depends on this crate, not the other
/// way around.)
fn par_map_shape(jobs: usize, items: usize, f: impl Fn(usize) + Sync) {
    if jobs <= 1 {
        for i in 0..items {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..jobs {
            let f = &f;
            let next = &next;
            scope.spawn(move || {
                lasagne_trace::set_current_track(w as u32 + 1);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items {
                        break;
                    }
                    f(i);
                }
            });
        }
    });
}

/// Runs one synthetic "stage" over 64 items: a span per item with nested
/// inner spans, counters, histogram observations, and an instant event.
fn run_stage(ctx: &TraceCtx, jobs: usize) {
    ctx.declare_tracks(jobs as u32);
    par_map_shape(jobs, 64, |i| {
        let mut span = ctx.span("stage", "item");
        span.arg("index", i);
        {
            let _inner = ctx.span("stage", "inner");
            ctx.add("work.items", 1);
            ctx.add("work.weight", i as u64);
            ctx.observe("work.size", &[8, 16, 32, 64], i as u64);
        }
        if i % 7 == 0 {
            ctx.instant("stage", "milestone", vec![("i", ArgVal::from(i))]);
        }
    });
}

fn totals(snap: &MetricsSnapshot) -> (u64, u64, Vec<u64>) {
    (
        snap.counter("work.items"),
        snap.counter("work.weight"),
        snap.histos["work.size"].counts.clone(),
    )
}

#[test]
fn jobs_1_and_4_produce_identical_counter_totals() {
    let serial = TraceCtx::collecting();
    run_stage(&serial, 1);
    let parallel = TraceCtx::collecting();
    run_stage(&parallel, 4);

    let s = serial.metrics_snapshot().unwrap();
    let p = parallel.metrics_snapshot().unwrap();
    assert_eq!(totals(&s), totals(&p));
    assert_eq!(s.counter("work.items"), 64);
    assert_eq!(s.counter("work.weight"), (0..64u64).sum::<u64>());
    // Bucket boundaries are inclusive upper bounds: 0..=8, 9..=16, 17..=32,
    // 33..=64, overflow.
    assert_eq!(s.histos["work.size"].counts, vec![9, 8, 16, 31, 0]);
    assert_eq!(s.histos["work.size"].bounds, vec![8, 16, 32, 64]);

    // Event *counts* also agree (timestamps and tracks of course differ).
    let se = serial.collector().unwrap().all_events();
    let pe = parallel.collector().unwrap().all_events();
    assert_eq!(se.len(), pe.len());
    for name in ["item", "inner", "milestone"] {
        assert_eq!(
            se.iter().filter(|e| e.name == name).count(),
            pe.iter().filter(|e| e.name == name).count(),
            "{name}"
        );
    }
}

#[test]
fn parallel_chrome_export_is_well_formed_with_one_track_per_worker() {
    let ctx = TraceCtx::collecting();
    run_stage(&ctx, 4);
    let out = ctx.chrome_json().unwrap();
    let doc = json::parse(&out).expect("well-formed Chrome JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());

    // Exactly one named track per worker plus main.
    let mut names: Vec<String> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string()
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        ["main", "worker-1", "worker-2", "worker-3", "worker-4"]
    );

    // Every non-metadata event has the required fields and a known tid.
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph == "M" {
            continue;
        }
        assert!(matches!(ph, "X" | "i"), "unexpected phase {ph}");
        assert!(e.get("ts").unwrap().as_f64().is_some());
        let tid = e.get("tid").unwrap().as_u64().unwrap();
        assert!(tid <= 4, "event on undeclared track {tid}");
        assert!(e
            .get("args")
            .unwrap()
            .get("depth")
            .unwrap()
            .as_u64()
            .is_some());
    }

    // Nested spans recorded depth 0 (item) and 1 (inner).
    let depth_of = |n: &str| {
        events
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some(n))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("depth")
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect::<Vec<_>>()
    };
    assert!(depth_of("item").iter().all(|d| *d == 0));
    assert!(depth_of("inner").iter().all(|d| *d == 1));
}

#[test]
fn histogram_bucket_index_matches_recorded_buckets() {
    let bounds = [2, 4, 8];
    let mut h = Histogram::new(&bounds);
    for v in 0..=10u64 {
        h.record(v);
    }
    let mut expect = vec![0u64; bounds.len() + 1];
    for v in 0..=10u64 {
        expect[Histogram::bucket_index(&bounds, v)] += 1;
    }
    assert_eq!(h.counts, expect);
    assert_eq!(h.counts, vec![3, 2, 4, 2]);
}
