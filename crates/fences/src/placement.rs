//! Fence placement and merging (paper §8, "Implementing LIMM Translations").
//!
//! Placement enforces the x86→IR mapping of Figure 8a on lifted code:
//!
//! * every shared non-atomic **load** gets a trailing `Frm`;
//! * every shared non-atomic **store** gets a leading `Fww`;
//! * RMWs are already seq_cst and `MFENCE` is already `Fsc` from lifting.
//!
//! "Shared" is decided by the §8 stack-access analysis: the use–def chain of
//! the pointer operand is explored through `bitcast` and `getelementptr`;
//! if it bottoms out at a stack `alloca` the access is private and needs no
//! fence. Everything else is conservatively fenced. The naive strategy
//! (Figure 14's baseline) fences every access.
//!
//! Merging implements §8 step 2 plus the §7.2 fence-merging rules: adjacent
//! fences with no intervening memory access merge, strengthening
//! `Frm·Fww → Fsc` when the kinds differ.

use crate::legality::merge_fence;
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{CastOp, FenceKind, InstId, InstKind, Operand, Ordering};
use lasagne_lir::types::Ty;
use lasagne_trace::{ArgVal, TraceCtx};

/// Which accesses get fences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fence every non-atomic access (the Figure 14 baseline).
    Naive,
    /// Skip accesses the stack analysis proves private (§8 step 1).
    StackAware,
}

/// Statistics from fence placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementStats {
    /// `Frm` fences inserted.
    pub frm: usize,
    /// `Fww` fences inserted.
    pub fww: usize,
    /// Accesses skipped as provably stack-private.
    pub skipped_stack: usize,
}

impl PlacementStats {
    /// Total fences inserted.
    pub fn total(&self) -> usize {
        self.frm + self.fww
    }
}

impl std::ops::AddAssign for PlacementStats {
    fn add_assign(&mut self, other: PlacementStats) {
        self.frm += other.frm;
        self.fww += other.fww;
        self.skipped_stack += other.skipped_stack;
    }
}

/// The Figure 8a mapping rule that motivated a fence decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceRule {
    /// A shared non-atomic load gets a trailing `Frm`.
    SharedLoad,
    /// A shared non-atomic store gets a leading `Fww`.
    SharedStore,
}

impl FenceRule {
    /// Stable name used in traces and the `explain-fences` table.
    pub fn name(self) -> &'static str {
        match self {
            FenceRule::SharedLoad => "shared-load",
            FenceRule::SharedStore => "shared-store",
        }
    }

    /// The fence kind the rule inserts.
    pub fn kind(self) -> FenceKind {
        match self {
            FenceRule::SharedLoad => FenceKind::Frm,
            FenceRule::SharedStore => FenceKind::Fww,
        }
    }
}

/// What ultimately happened to one fence decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceFate {
    /// The fence was inserted and survives placement.
    Placed,
    /// The §8 stack-access analysis proved the access private; no fence.
    ElidedStack,
    /// The fence was inserted, then folded into a neighbour by merging
    /// (assigned by the pipeline after [`merge_fences_explain`]).
    Merged,
}

impl FenceFate {
    /// Stable name used in traces and the `explain-fences` table.
    pub fn name(self) -> &'static str {
        match self {
            FenceFate::Placed => "placed",
            FenceFate::ElidedStack => "elided-stack",
            FenceFate::Merged => "merged",
        }
    }
}

/// Provenance of one fence decision: which access motivated it, under
/// which mapping rule, and what became of it.
///
/// Sites are function-relative LIR coordinates (`block`/`pos` of the
/// motivating access at decision time); exact x86 addresses are not
/// preserved through lifting, so consumers pair these with the function's
/// x86 entry address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceDecision {
    /// The motivating load/store instruction.
    pub access: InstId,
    /// The inserted fence instruction (`None` when the fence was elided).
    pub fence: Option<InstId>,
    /// The mapping rule that fired (or would have fired).
    pub rule: FenceRule,
    /// Outcome.
    pub fate: FenceFate,
    /// Block of the motivating access.
    pub block: u32,
    /// Position of the motivating access within its block at decision time.
    pub pos: u32,
}

/// One merge step performed by [`merge_fences_explain`]: `removed` was
/// folded into `kept`, whose kind became `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceMerge {
    /// The fence instruction removed.
    pub removed: InstId,
    /// The surviving fence instruction.
    pub kept: InstId,
    /// The merged (possibly strengthened) kind of the survivor.
    pub kind: FenceKind,
}

/// Explores the use–def chain of a pointer operand, ignoring `bitcast` and
/// `getelementptr` (§8), looking for a stack allocation.
pub fn is_stack_address(f: &Function, ptr: &Operand) -> bool {
    let mut cur = *ptr;
    for _ in 0..128 {
        match cur {
            Operand::Inst(id) => match &f.inst(id).kind {
                InstKind::Alloca { .. } => return true,
                InstKind::Cast {
                    op: CastOp::BitCast,
                    val,
                } => cur = *val,
                InstKind::Gep { base, .. } => cur = *base,
                _ => return false,
            },
            _ => return false,
        }
    }
    false
}

/// Inserts fences into one function per the Figure 8a mapping.
pub fn place_fences(f: &mut Function, strategy: Strategy) -> PlacementStats {
    place_fences_explain(f, strategy, &TraceCtx::disabled(), None)
}

/// [`place_fences`] with provenance: each fence decision (placed or
/// elided) is appended to `out` and mirrored into `ctx` as a counter plus,
/// when tracing is enabled, a `fence-decision` instant event. Produces the
/// exact same module and stats as [`place_fences`].
pub fn place_fences_explain(
    f: &mut Function,
    strategy: Strategy,
    ctx: &TraceCtx,
    mut out: Option<&mut Vec<FenceDecision>>,
) -> PlacementStats {
    let mut stats = PlacementStats::default();
    let mut decide = |f: &mut Function, stats: &mut PlacementStats, decision: FenceDecision| {
        match decision.fate {
            FenceFate::Placed => match decision.rule.kind() {
                FenceKind::Frm => {
                    stats.frm += 1;
                    ctx.add("fences.placed.frm", 1);
                }
                _ => {
                    stats.fww += 1;
                    ctx.add("fences.placed.fww", 1);
                }
            },
            FenceFate::ElidedStack => {
                stats.skipped_stack += 1;
                ctx.add("fences.elided.stack", 1);
            }
            FenceFate::Merged => unreachable!("merging is a later phase"),
        }
        if ctx.is_enabled() {
            ctx.instant(
                "fences",
                "fence-decision",
                vec![
                    ("func", ArgVal::from(f.name.as_str())),
                    ("rule", ArgVal::from(decision.rule.name())),
                    ("fate", ArgVal::from(decision.fate.name())),
                    ("block", ArgVal::from(decision.block as u64)),
                    ("pos", ArgVal::from(decision.pos as u64)),
                ],
            );
        }
        if let Some(out) = out.as_deref_mut() {
            out.push(decision);
        }
    };
    for b in f.block_ids().collect::<Vec<_>>() {
        // Walk by index since we insert as we go.
        let mut i = 0usize;
        while i < f.block(b).insts.len() {
            let id = f.block(b).insts[i];
            let site = (b.0, i as u32);
            match f.inst(id).kind.clone() {
                InstKind::Load {
                    ptr,
                    order: Ordering::NotAtomic,
                } => {
                    if strategy == Strategy::StackAware && is_stack_address(f, &ptr) {
                        decide(
                            f,
                            &mut stats,
                            FenceDecision {
                                access: id,
                                fence: None,
                                rule: FenceRule::SharedLoad,
                                fate: FenceFate::ElidedStack,
                                block: site.0,
                                pos: site.1,
                            },
                        );
                    } else {
                        let fence = f.insert(
                            b,
                            i + 1,
                            Ty::Void,
                            InstKind::Fence {
                                kind: FenceKind::Frm,
                            },
                        );
                        decide(
                            f,
                            &mut stats,
                            FenceDecision {
                                access: id,
                                fence: Some(fence),
                                rule: FenceRule::SharedLoad,
                                fate: FenceFate::Placed,
                                block: site.0,
                                pos: site.1,
                            },
                        );
                        i += 1;
                    }
                }
                InstKind::Store {
                    ptr,
                    order: Ordering::NotAtomic,
                    ..
                } => {
                    if strategy == Strategy::StackAware && is_stack_address(f, &ptr) {
                        decide(
                            f,
                            &mut stats,
                            FenceDecision {
                                access: id,
                                fence: None,
                                rule: FenceRule::SharedStore,
                                fate: FenceFate::ElidedStack,
                                block: site.0,
                                pos: site.1,
                            },
                        );
                    } else {
                        let fence = f.insert(
                            b,
                            i,
                            Ty::Void,
                            InstKind::Fence {
                                kind: FenceKind::Fww,
                            },
                        );
                        decide(
                            f,
                            &mut stats,
                            FenceDecision {
                                access: id,
                                fence: Some(fence),
                                rule: FenceRule::SharedStore,
                                fate: FenceFate::Placed,
                                block: site.0,
                                pos: site.1,
                            },
                        );
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    stats
}

/// Places fences across a whole module.
///
/// [`place_fences`] is strictly function-local (the §8 stack analysis
/// walks use–def chains within one function only), so the pipeline driver
/// may fence distinct functions concurrently; this serial form and any
/// parallel schedule produce identical modules.
pub fn place_fences_module(m: &mut Module, strategy: Strategy) -> PlacementStats {
    let mut total = PlacementStats::default();
    for f in &mut m.funcs {
        total += place_fences(f, strategy);
    }
    total
}

/// Merges fence pairs within basic blocks (§8 step 2): two fences with no
/// intervening instruction that may access memory merge into one, possibly
/// strengthened (`Frm·Fww → Fsc`, §7.2). Returns fences removed.
pub fn merge_fences(f: &mut Function) -> usize {
    merge_fences_explain(f, &TraceCtx::disabled(), None)
}

/// [`merge_fences`] with provenance: each merge step is appended to `out`
/// and mirrored into `ctx` as the `fences.merged` counter plus, when
/// tracing is enabled, a `fence-merge` instant event. Produces the exact
/// same module and count as [`merge_fences`].
pub fn merge_fences_explain(
    f: &mut Function,
    ctx: &TraceCtx,
    mut out: Option<&mut Vec<FenceMerge>>,
) -> usize {
    let mut removed = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        loop {
            let insts = f.block(b).insts.clone();
            let mut prev_fence: Option<(usize, InstId, FenceKind)> = None;
            let mut merged: Option<(usize, usize, FenceKind)> = None;
            for (pos, id) in insts.iter().enumerate() {
                match &f.inst(*id).kind {
                    InstKind::Fence { kind } => {
                        if let Some((ppos, _, pkind)) = prev_fence {
                            merged = Some((ppos, pos, merge_fence(pkind, *kind)));
                            break;
                        }
                        prev_fence = Some((pos, *id, *kind));
                    }
                    k if k.touches_memory() => prev_fence = None,
                    _ => {}
                }
            }
            match merged {
                Some((first, second, kind)) => {
                    // Keep the later fence position (covers both originals),
                    // with the merged strength; drop the earlier one.
                    let keep = f.block(b).insts[second];
                    let dropped = f.block(b).insts[first];
                    f.inst_mut(keep).kind = InstKind::Fence { kind };
                    f.block_mut(b).insts.remove(first);
                    removed += 1;
                    ctx.add("fences.merged", 1);
                    if ctx.is_enabled() {
                        ctx.instant(
                            "fences",
                            "fence-merge",
                            vec![
                                ("func", ArgVal::from(f.name.as_str())),
                                ("block", ArgVal::from(b.0 as u64)),
                                ("removed", ArgVal::from(dropped.0 as u64)),
                                ("kept", ArgVal::from(keep.0 as u64)),
                            ],
                        );
                    }
                    if let Some(out) = out.as_deref_mut() {
                        out.push(FenceMerge {
                            removed: dropped,
                            kept: keep,
                            kind,
                        });
                    }
                }
                None => break,
            }
        }
    }
    removed
}

/// Merges fences across a whole module. Returns fences removed.
pub fn merge_fences_module(m: &mut Module) -> usize {
    m.funcs.iter_mut().map(merge_fences).sum()
}

/// Counts fences per kind in one function: `(Frm, Fww, Fsc)`.
///
/// The module census [`count_fences`] is the per-function sum, so a
/// fused per-function schedule can take this count inside each work item
/// and fold the totals at its join.
pub fn count_fences_fn(f: &Function) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for (_, id) in f.iter_insts() {
        match f.inst(id).kind {
            InstKind::Fence {
                kind: FenceKind::Frm,
            } => c.0 += 1,
            InstKind::Fence {
                kind: FenceKind::Fww,
            } => c.1 += 1,
            InstKind::Fence {
                kind: FenceKind::Fsc,
            } => c.2 += 1,
            _ => {}
        }
    }
    c
}

/// Counts fences per kind in a module: `(Frm, Fww, Fsc)`.
pub fn count_fences(m: &Module) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for f in &m.funcs {
        let (frm, fww, fsc) = count_fences_fn(f);
        c.0 += frm;
        c.1 += fww;
        c.2 += fsc;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{InstKind, Operand, Terminator};
    use lasagne_lir::types::{Pointee, Ty};

    /// load p; store p — shared accesses get Frm after and Fww before.
    #[test]
    fn naive_placement_follows_figure_8a() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Inst(l),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );

        let stats = place_fences(&mut f, Strategy::Naive);
        assert_eq!(stats.frm, 1);
        assert_eq!(stats.fww, 1);

        // Layout: load, Frm, Fww, store.
        let kinds: Vec<_> = f
            .block(e)
            .insts
            .iter()
            .map(|i| f.inst(*i).kind.clone())
            .collect();
        assert!(matches!(kinds[0], InstKind::Load { .. }));
        assert!(matches!(
            kinds[1],
            InstKind::Fence {
                kind: FenceKind::Frm
            }
        ));
        assert!(matches!(
            kinds[2],
            InstKind::Fence {
                kind: FenceKind::Fww
            }
        ));
        assert!(matches!(kinds[3], InstKind::Store { .. }));
    }

    #[test]
    fn stack_accesses_skipped() {
        let mut f = Function::new("f", vec![], Ty::I64);
        let e = f.entry();
        let a = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 64 });
        let g = f.push(
            e,
            Ty::Ptr(Pointee::I8),
            InstKind::Gep {
                base: Operand::Inst(a),
                offset: Operand::i64(8),
                elem_size: 1,
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::BitCast,
                val: Operand::Inst(g),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(p),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );

        let stats = place_fences(&mut f, Strategy::StackAware);
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.skipped_stack, 2);

        // Naive still fences them.
        let mut f2 = f.clone();
        let naive = place_fences(&mut f2, Strategy::Naive);
        // f already has no fences (the first call inserted none).
        assert_eq!(naive.total(), 2);
    }

    #[test]
    fn inttoptr_chain_is_not_stack_rooted() {
        // Pre-refinement shape: alloca → ptrtoint → add → inttoptr.
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry();
        let a = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 64 });
        let i = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(a),
            },
        );
        let o = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: lasagne_lir::inst::BinOp::Add,
                lhs: Operand::Inst(i),
                rhs: Operand::i64(8),
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Inst(o),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(p),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });

        assert!(!is_stack_address(&f, &Operand::Inst(p)));
        let stats = place_fences(&mut f, Strategy::StackAware);
        assert_eq!(
            stats.fww, 1,
            "unrefined stack access is conservatively fenced"
        );
    }

    #[test]
    fn merging_strengthens_adjacent_pair() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(0),
                val: Operand::Inst(l),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        place_fences(&mut f, Strategy::Naive);
        // load, Frm, Fww, store → load, Fsc, store
        let removed = merge_fences(&mut f);
        assert_eq!(removed, 1);
        let kinds: Vec<_> = f
            .block(e)
            .insts
            .iter()
            .map(|i| f.inst(*i).kind.clone())
            .collect();
        assert_eq!(kinds.len(), 3);
        assert!(matches!(
            kinds[1],
            InstKind::Fence {
                kind: FenceKind::Fsc
            }
        ));
    }

    #[test]
    fn merging_blocked_by_memory_access() {
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Frm,
            },
        );
        f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(merge_fences(&mut f), 0);
        assert_eq!(f.block(e).insts.len(), 3);
    }

    #[test]
    fn atomics_receive_no_extra_fences() {
        // RMWsc is already sequentially consistent (Figure 8a maps x86 RMWs
        // to RMWsc with no added IR fences); placement must leave atomic
        // operations alone.
        let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
        let e = f.entry();
        let old = f.push(
            e,
            Ty::I64,
            InstKind::AtomicRmw {
                op: lasagne_lir::inst::RmwOp::Add,
                ptr: Operand::Param(0),
                val: Operand::i64(1),
            },
        );
        f.push(
            e,
            Ty::I64,
            InstKind::CmpXchg {
                ptr: Operand::Param(0),
                expected: Operand::Inst(old),
                new: Operand::i64(9),
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(0),
                order: Ordering::SeqCst,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        let stats = place_fences(&mut f, Strategy::Naive);
        assert_eq!(stats.total(), 0, "atomic accesses must not be fenced");
    }

    #[test]
    fn stack_analysis_depth_limit_is_safe() {
        // A pathological 200-deep gep chain: the analysis gives up (bounded
        // walk) and conservatively fences — never loops forever.
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry();
        let a = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 8 });
        let mut cur = Operand::Inst(a);
        for _ in 0..200 {
            let g = f.push(
                e,
                Ty::Ptr(Pointee::I8),
                InstKind::Gep {
                    base: cur,
                    offset: Operand::i64(0),
                    elem_size: 1,
                },
            );
            cur = Operand::Inst(g);
        }
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: cur,
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        let stats = place_fences(&mut f, Strategy::StackAware);
        // Deep chain exceeds the walk bound → conservatively fenced.
        assert_eq!(stats.fww, 1);
    }

    /// The explain variants must be behaviorally identical to the plain
    /// ones, with a decision per access and counters mirroring the stats.
    #[test]
    fn explain_variants_match_plain_and_record_provenance() {
        let build = || {
            let mut f = Function::new("f", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
            let e = f.entry();
            let a = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
            f.push(
                e,
                Ty::Void,
                InstKind::Store {
                    ptr: Operand::Inst(a),
                    val: Operand::i64(0),
                    order: Ordering::NotAtomic,
                },
            );
            let l = f.push(
                e,
                Ty::I64,
                InstKind::Load {
                    ptr: Operand::Param(0),
                    order: Ordering::NotAtomic,
                },
            );
            f.push(
                e,
                Ty::Void,
                InstKind::Store {
                    ptr: Operand::Param(0),
                    val: Operand::Inst(l),
                    order: Ordering::NotAtomic,
                },
            );
            f.set_term(
                e,
                Terminator::Ret {
                    val: Some(Operand::Inst(l)),
                },
            );
            f
        };

        let mut plain = build();
        let plain_stats = place_fences(&mut plain, Strategy::StackAware);
        let plain_removed = merge_fences(&mut plain);

        let mut traced = build();
        let ctx = lasagne_trace::TraceCtx::collecting();
        let mut decisions = Vec::new();
        let mut merges = Vec::new();
        let stats = place_fences_explain(
            &mut traced,
            Strategy::StackAware,
            &ctx,
            Some(&mut decisions),
        );
        let removed = merge_fences_explain(&mut traced, &ctx, Some(&mut merges));

        assert_eq!(traced, plain, "explain variant must not change the module");
        assert_eq!(stats, plain_stats);
        assert_eq!(removed, plain_removed);

        // One decision per non-atomic access: elided alloca store, placed
        // load Frm, placed store Fww.
        assert_eq!(decisions.len(), 3);
        let placed = decisions
            .iter()
            .filter(|d| d.fate == FenceFate::Placed)
            .count();
        let elided = decisions
            .iter()
            .filter(|d| d.fate == FenceFate::ElidedStack)
            .count();
        assert_eq!((placed, elided), (stats.total(), stats.skipped_stack));
        assert!(decisions
            .iter()
            .all(|d| (d.fence.is_some()) == (d.fate == FenceFate::Placed)));

        // Frm·Fww between load and store merged into Fsc; the removed
        // fence id is one of the placed ids.
        assert_eq!(merges.len(), removed);
        assert_eq!(merges[0].kind, FenceKind::Fsc);
        let placed_ids: Vec<_> = decisions.iter().filter_map(|d| d.fence).collect();
        assert!(placed_ids.contains(&merges[0].removed));
        assert!(placed_ids.contains(&merges[0].kept));

        let snap = ctx.metrics_snapshot().unwrap();
        assert_eq!(snap.counter("fences.placed.frm"), stats.frm as u64);
        assert_eq!(snap.counter("fences.placed.fww"), stats.fww as u64);
        assert_eq!(
            snap.counter("fences.elided.stack"),
            stats.skipped_stack as u64
        );
        assert_eq!(snap.counter("fences.merged"), removed as u64);
    }

    #[test]
    fn merging_same_kind_dedups() {
        let mut f = Function::new("f", vec![], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        assert_eq!(merge_fences(&mut f), 2);
        let (_, fww, fsc) = {
            let mut m = Module::new();
            m.add_func(f);
            count_fences(&m)
        };
        assert_eq!(fww, 1);
        assert_eq!(fsc, 0);
    }
}
