//! Fence placement, merging, and transformation-legality rules for LIMM
//! (paper §7–§8).
//!
//! This crate is the bridge between the paper's formal results and the
//! implementation: [`placement`] enforces the verified x86→IR mapping
//! scheme (Figure 8a) on lifted code — inserting `Frm` after shared loads
//! and `Fww` before shared stores, skipping provably stack-private accesses
//! and merging adjacent fences — while [`legality`] encodes the Figure 11
//! tables of safe reorderings and eliminations that keep the optimizer
//! sound under LIMM.
//!
//! # Example
//!
//! ```
//! use lasagne_fences::placement::{place_fences, Strategy};
//! use lasagne_lir::func::Function;
//! use lasagne_lir::inst::{InstKind, Operand, Ordering, Terminator};
//! use lasagne_lir::types::{Pointee, Ty};
//!
//! let mut f = Function::new("get", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
//! let entry = f.entry();
//! let v = f.push(entry, Ty::I64, InstKind::Load {
//!     ptr: Operand::Param(0),
//!     order: Ordering::NotAtomic,
//! });
//! f.set_term(entry, Terminator::Ret { val: Some(Operand::Inst(v)) });
//!
//! let stats = place_fences(&mut f, Strategy::StackAware);
//! assert_eq!(stats.frm, 1, "shared load gets a trailing Frm");
//! ```

#![warn(missing_docs)]

pub mod legality;
pub mod placement;

pub use legality::{can_reorder, elim_adjacent, elim_fenced, label_of, Elim, Label};
pub use placement::{
    count_fences, count_fences_fn, is_stack_address, merge_fences, merge_fences_explain,
    merge_fences_module, place_fences, place_fences_explain, place_fences_module, FenceDecision,
    FenceFate, FenceMerge, FenceRule, PlacementStats, Strategy,
};
