//! Transformation legality under LIMM — the paper's Figure 11.
//!
//! [`can_reorder`] encodes Figure 11a (safe reorderings of adjacent
//! independent events); the `elim_*` predicates encode Figure 11b (safe
//! redundant-access eliminations, including the fenced variants). The
//! `lasagne-opt` passes consult these tables before moving or deleting
//! memory operations, which is what keeps them sound for concurrent code.

use lasagne_lir::inst::{FenceKind, InstKind, Ordering};

/// The event label of an instruction, as used in Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Non-atomic read.
    Rna,
    /// Non-atomic write.
    Wna,
    /// The read of a *failed* seq_cst RMW.
    Rsc,
    /// A successful seq_cst RMW (`Rsc·Wsc` in the paper).
    Rmw,
    /// `Frm` fence.
    Frm,
    /// `Fww` fence.
    Fww,
    /// `Fsc` full fence.
    Fsc,
}

/// Classifies an instruction into a Figure 11 label, when it is an event.
///
/// Calls and other non-event instructions return `None` (they are never
/// reordered with memory operations by the optimizer).
pub fn label_of(kind: &InstKind) -> Option<Label> {
    match kind {
        InstKind::Load {
            order: Ordering::NotAtomic,
            ..
        } => Some(Label::Rna),
        InstKind::Store {
            order: Ordering::NotAtomic,
            ..
        } => Some(Label::Wna),
        InstKind::Load {
            order: Ordering::SeqCst,
            ..
        } => Some(Label::Rsc),
        InstKind::Store {
            order: Ordering::SeqCst,
            ..
        } => Some(Label::Rmw),
        InstKind::AtomicRmw { .. } | InstKind::CmpXchg { .. } => Some(Label::Rmw),
        InstKind::Fence {
            kind: FenceKind::Frm,
        } => Some(Label::Frm),
        InstKind::Fence {
            kind: FenceKind::Fww,
        } => Some(Label::Fww),
        InstKind::Fence {
            kind: FenceKind::Fsc,
        } => Some(Label::Fsc),
        _ => None,
    }
}

/// Figure 11a: may adjacent events `a·b` be reordered to `b·a`?
///
/// For pairs of memory accesses the caller must additionally establish that
/// the two accesses are to *different locations* and are *independent*
/// (no data dependence); this function only encodes the label-level table.
pub fn can_reorder(a: Label, b: Label) -> bool {
    use Label::*;
    match (a, b) {
        // Row Rna.
        (Rna, Rna) | (Rna, Wna) | (Rna, Rsc) => true,
        (Rna, Rmw) => false,
        (Rna, Frm) => false,
        (Rna, Fww) => true,
        (Rna, Fsc) => false,
        // Row Wna.
        (Wna, Rna) | (Wna, Wna) | (Wna, Rsc) => true,
        (Wna, Rmw) => false,
        (Wna, Frm) => true,
        (Wna, Fww) => false,
        (Wna, Fsc) => false,
        // Row Rsc (failed RMW read).
        (Rsc, Rna) | (Rsc, Wna) | (Rsc, Rsc) | (Rsc, Rmw) => false,
        (Rsc, Frm) | (Rsc, Fww) | (Rsc, Fsc) => true,
        // Row Rmw (successful RMW).
        (Rmw, Rna) | (Rmw, Wna) | (Rmw, Rsc) | (Rmw, Rmw) => false,
        (Rmw, Frm) | (Rmw, Fww) | (Rmw, Fsc) => true,
        // Row Frm.
        (Frm, Rna) | (Frm, Wna) | (Frm, Rsc) => false,
        (Frm, Rmw) => true,
        (Frm, Frm) => true, // identical fences commute trivially
        (Frm, Fww) | (Frm, Fsc) => true,
        // Row Fww.
        (Fww, Rna) => true,
        (Fww, Wna) => false,
        (Fww, Rsc) => true,
        (Fww, Rmw) => true,
        (Fww, Frm) | (Fww, Fww) | (Fww, Fsc) => true,
        // Row Fsc.
        (Fsc, Rna) | (Fsc, Wna) | (Fsc, Rsc) => false,
        (Fsc, Rmw) => true,
        (Fsc, Frm) | (Fsc, Fww) | (Fsc, Fsc) => true,
    }
}

/// Figure 11b, adjacent eliminations: is the *second* of two adjacent
/// same-location accesses removable (RAR/RAW), or the *first* (WAW)?
///
/// `a` then `b` are same-location, adjacent events.
pub fn elim_adjacent(a: Label, b: Label) -> Option<Elim> {
    use Label::*;
    match (a, b) {
        // R(X,v)·R(X,v') ⇝ R(X,v): read-after-read, drop the second read.
        (Rna, Rna) => Some(Elim::DropSecondUsingFirst),
        // W(X,v)·R(X,v) ⇝ W(X,v): read-after-write, read sees the store.
        (Wna, Rna) => Some(Elim::DropSecondUsingStored),
        // W(X,v)·W(X,v') ⇝ W(X,v'): overwritten store.
        (Wna, Wna) => Some(Elim::DropFirst),
        _ => None,
    }
}

/// Figure 11b, fenced eliminations: `a · F · b` with same-location `a`,`b`.
pub fn elim_fenced(a: Label, fence: FenceKind, b: Label) -> Option<Elim> {
    use Label::*;
    match (a, fence, b) {
        // R(X,v)·F_o·R(X,v') ⇝ R(X,v)·F_o  where o ∈ {rm, ww}.
        (Rna, FenceKind::Frm | FenceKind::Fww, Rna) => Some(Elim::DropSecondUsingFirst),
        // W(X,v)·F_τ·R(X,v) ⇝ W(X,v)·F_τ   where τ ∈ {sc, ww}.
        (Wna, FenceKind::Fsc | FenceKind::Fww, Rna) => Some(Elim::DropSecondUsingStored),
        // W(X,v)·F_o·W(X,v') ⇝ F_o·W(X,v') where o ∈ {rm, ww}.
        (Wna, FenceKind::Frm | FenceKind::Fww, Wna) => Some(Elim::DropFirst),
        _ => None,
    }
}

/// How an elimination applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elim {
    /// Remove the second access; its value is the first access's result.
    DropSecondUsingFirst,
    /// Remove the second access (a load); its value is the stored value.
    DropSecondUsingStored,
    /// Remove the first access (an overwritten store).
    DropFirst,
}

/// Fence merging (§7.2): merging `a` and an *adjacent* fence `b` yields
/// this single fence, if merging is allowed. Identical fences merge to
/// themselves; `Fsc` absorbs anything; `Frm·Fww` strengthens to `Fsc`.
pub fn merge_fence(a: FenceKind, b: FenceKind) -> FenceKind {
    if a == b {
        a
    } else if a == FenceKind::Fsc || b == FenceKind::Fsc {
        FenceKind::Fsc
    } else {
        // Frm + Fww (either order): strengthen and merge to Fsc.
        FenceKind::Fsc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Label::*;

    /// Spot-checks of the ✓/✗ entries exactly as printed in Figure 11a.
    #[test]
    fn figure_11a_rows() {
        // Non-atomics reorder freely with each other.
        assert!(can_reorder(Rna, Wna));
        assert!(can_reorder(Wna, Rna));
        assert!(can_reorder(Rna, Rna));
        assert!(can_reorder(Wna, Wna));
        // No memory access reorders with a successful RMW (full fence).
        for l in [Rna, Wna, Rsc, Rmw] {
            assert!(!can_reorder(l, Rmw));
            assert!(!can_reorder(Rmw, l));
        }
        // A load cannot move past a following Frm (that's the fence's job)…
        assert!(!can_reorder(Rna, Frm));
        // …but a store can.
        assert!(can_reorder(Wna, Frm));
        // A store cannot move past a following Fww; a load can.
        assert!(!can_reorder(Wna, Fww));
        assert!(can_reorder(Rna, Fww));
        // Nothing non-atomic crosses a full fence.
        assert!(!can_reorder(Rna, Fsc));
        assert!(!can_reorder(Wna, Fsc));
        assert!(!can_reorder(Fsc, Rna));
        assert!(!can_reorder(Fsc, Wna));
        // Fences reorder among themselves.
        assert!(can_reorder(Frm, Fww));
        assert!(can_reorder(Fww, Frm));
        assert!(can_reorder(Fsc, Fww));
        // Fww lets a (failed) seq_cst read slide above it.
        assert!(can_reorder(Fww, Rsc));
        assert!(!can_reorder(Frm, Rsc));
    }

    /// The reorder table must be *asymmetric* where the paper's is — e.g.
    /// `Rna` before `Frm` is pinned but `Frm` before `Rmw` is movable.
    #[test]
    fn figure_11a_asymmetry() {
        // R·Frm is pinned (the fence orders the load with successors) but
        // Wna·Frm is free — and the mirror-image pairs differ.
        assert_ne!(can_reorder(Rna, Frm), can_reorder(Wna, Frm));
        assert_ne!(can_reorder(Rna, Fww), can_reorder(Wna, Fww));
        assert!(can_reorder(Frm, Rmw));
        assert!(!can_reorder(Frm, Rna));
    }

    #[test]
    fn figure_11b_adjacent() {
        assert_eq!(elim_adjacent(Rna, Rna), Some(Elim::DropSecondUsingFirst));
        assert_eq!(elim_adjacent(Wna, Rna), Some(Elim::DropSecondUsingStored));
        assert_eq!(elim_adjacent(Wna, Wna), Some(Elim::DropFirst));
        assert_eq!(elim_adjacent(Rna, Wna), None);
        assert_eq!(elim_adjacent(Rmw, Rna), None);
    }

    #[test]
    fn figure_11b_fenced() {
        use FenceKind::*;
        // F-RAR: o ∈ {rm, ww} only.
        assert!(elim_fenced(Rna, Frm, Rna).is_some());
        assert!(elim_fenced(Rna, Fww, Rna).is_some());
        assert!(elim_fenced(Rna, Fsc, Rna).is_none());
        // F-RAW: τ ∈ {sc, ww} only.
        assert!(elim_fenced(Wna, Fsc, Rna).is_some());
        assert!(elim_fenced(Wna, Fww, Rna).is_some());
        assert!(elim_fenced(Wna, Frm, Rna).is_none());
        // F-WAW: o ∈ {rm, ww} only.
        assert!(elim_fenced(Wna, Frm, Wna).is_some());
        assert!(elim_fenced(Wna, Fww, Wna).is_some());
        assert!(elim_fenced(Wna, Fsc, Wna).is_none());
    }

    #[test]
    fn fence_merging_strengthens() {
        use FenceKind::*;
        assert_eq!(merge_fence(Frm, Frm), Frm);
        assert_eq!(merge_fence(Fww, Fww), Fww);
        assert_eq!(merge_fence(Frm, Fww), Fsc);
        assert_eq!(merge_fence(Fww, Frm), Fsc);
        assert_eq!(merge_fence(Fsc, Frm), Fsc);
        assert_eq!(merge_fence(Fww, Fsc), Fsc);
    }

    #[test]
    fn labels_from_instructions() {
        use lasagne_lir::inst::{InstKind, Operand, Ordering, RmwOp};
        let l = InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        };
        assert_eq!(label_of(&l), Some(Label::Rna));
        let s = InstKind::Store {
            ptr: Operand::Param(0),
            val: Operand::i64(0),
            order: Ordering::NotAtomic,
        };
        assert_eq!(label_of(&s), Some(Label::Wna));
        let r = InstKind::AtomicRmw {
            op: RmwOp::Add,
            ptr: Operand::Param(0),
            val: Operand::i64(1),
        };
        assert_eq!(label_of(&r), Some(Label::Rmw));
        let f = InstKind::Fence {
            kind: FenceKind::Frm,
        };
        assert_eq!(label_of(&f), Some(Label::Frm));
        let a = InstKind::Bin {
            op: lasagne_lir::inst::BinOp::Add,
            lhs: Operand::i64(0),
            rhs: Operand::i64(0),
        };
        assert_eq!(label_of(&a), None);
    }
}
