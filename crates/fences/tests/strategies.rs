//! Strategy-level invariants of fence placement, checked on the real
//! (lifted + refined) Phoenix modules rather than toy IR:
//!
//! * stack-aware placement never inserts more fences than naive placement;
//! * merging strictly trades `Frm`+`Fww` pairs for `Fsc` and never grows
//!   the fence population;
//! * every treatment preserves the benchmark checksum.

use lasagne_fences::{count_fences, merge_fences_module, place_fences_module, Strategy};
use lasagne_lir::interp::{Machine, Val};
use lasagne_lir::Module;
use lasagne_phoenix::{all_benchmarks, Workload};

fn prepared() -> Vec<(String, Module, Workload)> {
    all_benchmarks(48)
        .into_iter()
        .map(|b| {
            let mut m = lasagne_lifter::lift_binary(&b.binary)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            lasagne_refine::refine_module(&mut m);
            (b.name.to_string(), m, b.workload)
        })
        .collect()
}

fn checksum(m: &Module, w: &Workload) -> u64 {
    let id = m.func_by_name("main").expect("main");
    let mut machine = Machine::new(m);
    for (addr, bytes) in &w.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let args: Vec<Val> = w.args.iter().map(|a| Val::B64(*a)).collect();
    machine
        .run(id, &args)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        .ret
        .unwrap()
        .bits()
}

#[test]
fn stack_aware_is_no_worse_than_naive() {
    for (name, m, _) in prepared() {
        let mut naive = m.clone();
        let naive_stats = place_fences_module(&mut naive, Strategy::Naive);
        let mut aware = m.clone();
        let aware_stats = place_fences_module(&mut aware, Strategy::StackAware);
        assert!(
            aware_stats.total() <= naive_stats.total(),
            "{name}: stack-aware placed {} fences, naive {}",
            aware_stats.total(),
            naive_stats.total()
        );
        // Phoenix benchmarks all touch the stack, so the inequality must be
        // strict — the analysis has to find *something* private.
        assert!(
            aware_stats.total() < naive_stats.total(),
            "{name}: stack-awareness eliminated nothing"
        );
    }
}

#[test]
fn merging_trades_pairs_for_full_fences() {
    for (name, m, _) in prepared() {
        let mut fenced = m.clone();
        place_fences_module(&mut fenced, Strategy::StackAware);
        let (frm0, fww0, fsc0) = count_fences(&fenced);
        let merges = merge_fences_module(&mut fenced);
        let (frm1, fww1, fsc1) = count_fences(&fenced);
        assert_eq!(frm0 - frm1, merges, "{name}: each merge consumes one Frm");
        assert_eq!(fww0 - fww1, merges, "{name}: each merge consumes one Fww");
        assert_eq!(fsc1 - fsc0, merges, "{name}: each merge produces one Fsc");
        assert!(
            frm1 + fww1 + fsc1 <= frm0 + fww0 + fsc0,
            "{name}: merging grew the fence population"
        );
    }
}

#[test]
fn all_treatments_preserve_checksums() {
    for (name, m, w) in prepared() {
        let reference = w.expected_ret;
        for strategy in [Strategy::Naive, Strategy::StackAware] {
            let mut fenced = m.clone();
            place_fences_module(&mut fenced, strategy);
            assert_eq!(checksum(&fenced, &w), reference, "{name} {strategy:?}");
            merge_fences_module(&mut fenced);
            assert_eq!(
                checksum(&fenced, &w),
                reference,
                "{name} {strategy:?}+merge"
            );
        }
    }
}

#[test]
fn merging_is_idempotent() {
    for (name, m, _) in prepared() {
        let mut fenced = m;
        place_fences_module(&mut fenced, Strategy::StackAware);
        merge_fences_module(&mut fenced);
        let again = merge_fences_module(&mut fenced);
        assert_eq!(again, 0, "{name}: second merge pass found more work");
    }
}
