//! Exact fence-count pins for the §9.1 version matrix on small fixed
//! functions.
//!
//! `lasagne::translate` gives every version the same fence treatment up to
//! the point where `fences_final` is recorded: refine (PPOpt only), then
//! `place_fences(StackAware)`, then `merge_fences` (POpt and PPOpt). The
//! LLVM-style passes run *after* that count, and Lifted and Opt share the
//! placement-only treatment — so the distinct columns are Lifted/Opt,
//! POpt, and PPOpt. This test replays those treatments on hand-built LIR
//! and pins the exact `(Frm, Fww, Fsc)` triples, so any change to the §8
//! stack-access analysis or the §7.2 merge rules shows up as a diff here.

use lasagne_fences::{count_fences, merge_fences_module, place_fences_module, Strategy};
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{BinOp, InstKind, Operand, Ordering, Terminator};
use lasagne_lir::types::{Pointee, Ty};

/// `fn(p: *i64) -> i64 { t = *p; *(p+8) = t; t }` — one shared load, one
/// shared store, nothing in between.
fn shared_load_store() -> Function {
    let mut f = Function::new("shared_load_store", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
    let e = f.entry();
    let t = f.push(
        e,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    let q = f.push(
        e,
        Ty::Ptr(Pointee::I64),
        InstKind::Gep {
            base: Operand::Param(0),
            offset: Operand::i64(1),
            elem_size: 8,
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(q),
            val: Operand::Inst(t),
            order: Ordering::NotAtomic,
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(t)),
        },
    );
    f
}

/// `fn() -> i64 { local = alloca; *local = 7; *local }` — all traffic is
/// provably stack-private.
fn stack_private() -> Function {
    let mut f = Function::new("stack_private", vec![], Ty::I64);
    let e = f.entry();
    let a = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(a),
            val: Operand::i64(7),
            order: Ordering::NotAtomic,
        },
    );
    let v = f.push(
        e,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Inst(a),
            order: Ordering::NotAtomic,
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(v)),
        },
    );
    f
}

/// `fn(p: *i64) -> i64 { t = *p; spill = alloca; *spill = t; *(p+8) = t+1; t }`
/// — the stack spill sits between the shared load and the shared store, so
/// the load's `Frm` and the store's `Fww` must NOT merge (the spill is a
/// real memory access even though it needs no fence itself).
fn spill_between_accesses() -> Function {
    let mut f = Function::new(
        "spill_between_accesses",
        vec![Ty::Ptr(Pointee::I64)],
        Ty::I64,
    );
    let e = f.entry();
    let t = f.push(
        e,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    let a = f.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(a),
            val: Operand::Inst(t),
            order: Ordering::NotAtomic,
        },
    );
    let t1 = f.push(
        e,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::Inst(t),
            rhs: Operand::i64(1),
        },
    );
    let q = f.push(
        e,
        Ty::Ptr(Pointee::I64),
        InstKind::Gep {
            base: Operand::Param(0),
            offset: Operand::i64(1),
            elem_size: 8,
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(q),
            val: Operand::Inst(t1),
            order: Ordering::NotAtomic,
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(t)),
        },
    );
    f
}

/// `fn(p: *i64) -> i64 { a = *p; b = *(p+8); *(p+16) = a+b; … }` — two
/// shared loads then a shared store: the second load's `Frm` is adjacent to
/// the store's `Fww` and merges into one `Fsc`; the first `Frm` survives.
fn two_loads_then_store() -> Function {
    let mut f = Function::new("two_loads_then_store", vec![Ty::Ptr(Pointee::I64)], Ty::I64);
    let e = f.entry();
    let a = f.push(
        e,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Param(0),
            order: Ordering::NotAtomic,
        },
    );
    let p1 = f.push(
        e,
        Ty::Ptr(Pointee::I64),
        InstKind::Gep {
            base: Operand::Param(0),
            offset: Operand::i64(1),
            elem_size: 8,
        },
    );
    let b = f.push(
        e,
        Ty::I64,
        InstKind::Load {
            ptr: Operand::Inst(p1),
            order: Ordering::NotAtomic,
        },
    );
    let s = f.push(
        e,
        Ty::I64,
        InstKind::Bin {
            op: BinOp::Add,
            lhs: Operand::Inst(a),
            rhs: Operand::Inst(b),
        },
    );
    let p2 = f.push(
        e,
        Ty::Ptr(Pointee::I64),
        InstKind::Gep {
            base: Operand::Param(0),
            offset: Operand::i64(2),
            elem_size: 8,
        },
    );
    f.push(
        e,
        Ty::Void,
        InstKind::Store {
            ptr: Operand::Inst(p2),
            val: Operand::Inst(s),
            order: Ordering::NotAtomic,
        },
    );
    f.set_term(
        e,
        Terminator::Ret {
            val: Some(Operand::Inst(s)),
        },
    );
    f
}

fn module_of(f: Function) -> Module {
    let mut m = Module::new();
    m.add_func(f);
    m
}

/// The fence treatment each §9.1 version applies before `fences_final` is
/// recorded in `lasagne::translate` (Lifted and Opt are identical there).
#[derive(Debug, Clone, Copy)]
enum Treatment {
    /// Lifted and Opt: StackAware placement only.
    LiftedOrOpt,
    /// POpt: placement + merging.
    POpt,
    /// PPOpt: refinement, then placement + merging.
    PPOpt,
}

fn apply(t: Treatment, f: Function) -> (usize, usize, usize) {
    let mut m = module_of(f);
    if matches!(t, Treatment::PPOpt) {
        lasagne_refine::refine_module(&mut m);
    }
    place_fences_module(&mut m, Strategy::StackAware);
    if matches!(t, Treatment::POpt | Treatment::PPOpt) {
        merge_fences_module(&mut m);
    }
    count_fences(&m)
}

#[test]
fn shared_load_store_counts() {
    // Placement: load·Frm·Fww·store. The adjacent Frm·Fww pair merges to
    // one Fsc under POpt/PPOpt (§7.2).
    assert_eq!(
        apply(Treatment::LiftedOrOpt, shared_load_store()),
        (1, 1, 0)
    );
    assert_eq!(apply(Treatment::POpt, shared_load_store()), (0, 0, 1));
    assert_eq!(apply(Treatment::PPOpt, shared_load_store()), (0, 0, 1));
}

#[test]
fn stack_private_needs_no_fences() {
    for t in [Treatment::LiftedOrOpt, Treatment::POpt, Treatment::PPOpt] {
        assert_eq!(apply(t, stack_private()), (0, 0, 0), "{t:?}");
    }
    // The naive baseline fences both accesses — the whole point of the §8
    // stack-access analysis is the delta against this.
    let mut m = module_of(stack_private());
    let stats = place_fences_module(&mut m, Strategy::Naive);
    assert_eq!((stats.frm, stats.fww), (1, 1));
    assert_eq!(count_fences(&m), (1, 1, 0));
    // And StackAware reports what it skipped.
    let mut m = module_of(stack_private());
    let stats = place_fences_module(&mut m, Strategy::StackAware);
    assert_eq!(stats.skipped_stack, 2);
}

#[test]
fn spill_blocks_merging() {
    // The private spill store between Frm and Fww is a memory access, so
    // merging must not fire even though neither fence guards the spill.
    assert_eq!(
        apply(Treatment::LiftedOrOpt, spill_between_accesses()),
        (1, 1, 0)
    );
    assert_eq!(apply(Treatment::POpt, spill_between_accesses()), (1, 1, 0));
    assert_eq!(apply(Treatment::PPOpt, spill_between_accesses()), (1, 1, 0));
}

#[test]
fn adjacent_pair_merges_once() {
    // [ld, Frm, ld, Frm, Fww, st]: only the second Frm is adjacent to the
    // Fww; the first is separated by a load and must survive merging.
    assert_eq!(
        apply(Treatment::LiftedOrOpt, two_loads_then_store()),
        (2, 1, 0)
    );
    assert_eq!(apply(Treatment::POpt, two_loads_then_store()), (1, 0, 1));
    assert_eq!(apply(Treatment::PPOpt, two_loads_then_store()), (1, 0, 1));
}
