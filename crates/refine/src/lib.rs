//! IR refinement (paper §5): re-exposing pointers in lifted code.
//!
//! Lifted code manipulates raw 64-bit integer addresses: pointer parameters
//! arrive as `i64`, stack addresses are `ptrtoint`-ed and offset with integer
//! adds, and every memory access is preceded by an `inttoptr`. This crate
//! implements the paper's two refinement stages:
//!
//! 1. **Peephole pointer exposure** ([`expose_pointers`]) — the
//!    generalisation of Figure 5's three rules: every `inttoptr(e)` whose
//!    operand `e` is an integer add-tree rooted at a `ptrtoint`
//!    (rule 1/2) or at an integer parameter (rule 3) is rewritten into
//!    `bitcast`/`getelementptr i8` chains from the original pointer.
//! 2. **Pointer parameter promotion** ([`promote_pointer_params`]) — an
//!    `i64` parameter whose every use is an `inttoptr` becomes a typed
//!    pointer parameter (§5.2), updating all call sites.
//!
//! Both stages matter for fence placement: once an address chain bottoms
//! out at an `alloca` through only `bitcast`/`getelementptr`, the §8
//! stack-access analysis can prove the access private and skip its fences.

#![warn(missing_docs)]

use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{Callee, CastOp, InstId, InstKind, Operand};
use lasagne_lir::types::{Pointee, Ty};
use lasagne_lir::BlockId;
use lasagne_trace::{ArgVal, TraceCtx};

/// Which generalised Figure 5 peephole rule rewrote an `inttoptr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineRule {
    /// Rule 1 — `inttoptr(ptrtoint p)` with no added terms: pure cast.
    PointerCast,
    /// Rule 2 — add-tree rooted at a `ptrtoint` (stack/heap offset).
    PointerOffset,
    /// Rule 3 — add-tree rooted at an `i64` parameter.
    ParamOffset,
}

impl RefineRule {
    /// Stable name used in traces (`refine.rule.*` counters).
    pub fn name(self) -> &'static str {
        match self {
            RefineRule::PointerCast => "pointer-cast",
            RefineRule::PointerOffset => "pointer-offset",
            RefineRule::ParamOffset => "param-offset",
        }
    }

    /// The `refine.rule.*` counter incremented when this rule fires.
    pub fn counter(self) -> &'static str {
        match self {
            RefineRule::PointerCast => "refine.rule.pointer-cast",
            RefineRule::PointerOffset => "refine.rule.pointer-offset",
            RefineRule::ParamOffset => "refine.rule.param-offset",
        }
    }
}

/// Statistics from a refinement run (drives Figure 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// `inttoptr` instructions rewritten into pointer-typed chains.
    pub inttoptr_rewritten: usize,
    /// Integer parameters promoted to pointer types.
    pub params_promoted: usize,
}

/// A resolved address expression: a pointer root plus added integer terms.
struct Plan {
    root: Operand,
    /// Whether `root` is an i64 parameter that needs one `inttoptr` first
    /// (Figure 5, rule 3).
    root_is_int: bool,
    terms: Vec<Operand>,
}

/// Tries to express the integer value `x` as `pointer + Σ terms`.
fn resolve(f: &Function, x: &Operand, depth: u32) -> Option<Plan> {
    if depth > 32 {
        return None;
    }
    match x {
        Operand::Inst(id) => match &f.inst(*id).kind {
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val,
            } => Some(Plan {
                root: *val,
                root_is_int: false,
                terms: vec![],
            }),
            InstKind::Bin {
                op: lasagne_lir::inst::BinOp::Add,
                lhs,
                rhs,
            } => {
                // Prefer a genuine pointer root over a parameter root.
                if let Some(mut p) = resolve(f, lhs, depth + 1) {
                    if !p.root_is_int {
                        p.terms.push(*rhs);
                        return Some(p);
                    }
                }
                if let Some(mut p) = resolve(f, rhs, depth + 1) {
                    if !p.root_is_int {
                        p.terms.push(*lhs);
                        return Some(p);
                    }
                }
                // Fall back to a parameter root on either side.
                if let Some(mut p) = resolve(f, lhs, depth + 1) {
                    p.terms.push(*rhs);
                    return Some(p);
                }
                if let Some(mut p) = resolve(f, rhs, depth + 1) {
                    p.terms.push(*lhs);
                    return Some(p);
                }
                None
            }
            _ => None,
        },
        Operand::Param(i) => {
            if f.params[*i as usize] == Ty::I64 {
                Some(Plan {
                    root: Operand::Param(*i),
                    root_is_int: true,
                    terms: vec![],
                })
            } else if f.params[*i as usize].is_ptr() {
                Some(Plan {
                    root: Operand::Param(*i),
                    root_is_int: false,
                    terms: vec![],
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Position of an instruction in its function's layout.
fn position_of(f: &Function, id: InstId) -> Option<(BlockId, usize)> {
    for b in f.block_ids() {
        if let Some(pos) = f.block(b).insts.iter().position(|i| *i == id) {
            return Some((b, pos));
        }
    }
    None
}

/// Applies the generalised Figure 5 peephole rules to one function.
///
/// Returns the number of `inttoptr` instructions rewritten.
pub fn expose_pointers(m: &Module, f: &mut Function) -> usize {
    expose_pointers_traced(m, f, &TraceCtx::disabled())
}

/// [`expose_pointers`] recording each rule firing into `ctx`: one
/// `refine.rule.*` counter increment and (when tracing is enabled) a
/// `peephole` instant event per rewritten `inttoptr`. Produces the exact
/// same function as [`expose_pointers`].
pub fn expose_pointers_traced(m: &Module, f: &mut Function, ctx: &TraceCtx) -> usize {
    let mut rewritten = 0;
    // Snapshot the inttoptr instructions first; rewriting adds instructions.
    let targets: Vec<InstId> = f
        .iter_insts()
        .filter_map(|(_, id)| match &f.inst(id).kind {
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val,
            } => resolve(f, val, 0).is_some().then_some(id),
            _ => None,
        })
        .collect();

    for id in targets {
        let InstKind::Cast {
            op: CastOp::IntToPtr,
            val,
        } = f.inst(id).kind.clone()
        else {
            continue;
        };
        let Some(plan) = resolve(f, &val, 0) else {
            continue;
        };
        // Rule 3 only fires when there is something to rewrite; a parameter
        // with a direct inttoptr and no added terms is already in promotable
        // shape — leave it for parameter promotion.
        if plan.root_is_int && plan.terms.is_empty() {
            continue;
        }
        let Some((block, pos)) = position_of(f, id) else {
            continue;
        };
        let terms_count = plan.terms.len();
        let mut at = pos;
        // Root as an i8* value.
        let root_ty = m.operand_ty(f, &plan.root);
        let mut cur: Operand = if plan.root_is_int {
            let p = f.insert(
                block,
                at,
                Ty::Ptr(Pointee::I8),
                InstKind::Cast {
                    op: CastOp::IntToPtr,
                    val: plan.root,
                },
            );
            at += 1;
            Operand::Inst(p)
        } else if root_ty == Ty::Ptr(Pointee::I8) {
            plan.root
        } else {
            let p = f.insert(
                block,
                at,
                Ty::Ptr(Pointee::I8),
                InstKind::Cast {
                    op: CastOp::BitCast,
                    val: plan.root,
                },
            );
            at += 1;
            Operand::Inst(p)
        };
        for term in plan.terms {
            let g = f.insert(
                block,
                at,
                Ty::Ptr(Pointee::I8),
                InstKind::Gep {
                    base: cur,
                    offset: term,
                    elem_size: 1,
                },
            );
            at += 1;
            cur = Operand::Inst(g);
        }
        // The original inttoptr becomes a bitcast from the rebuilt chain.
        f.inst_mut(id).kind = InstKind::Cast {
            op: CastOp::BitCast,
            val: cur,
        };
        rewritten += 1;
        let rule = if plan.root_is_int {
            RefineRule::ParamOffset
        } else if terms_count == 0 {
            RefineRule::PointerCast
        } else {
            RefineRule::PointerOffset
        };
        ctx.add(rule.counter(), 1);
        if ctx.is_enabled() {
            ctx.instant(
                "refine",
                "peephole",
                vec![
                    ("func", ArgVal::from(f.name.as_str())),
                    ("rule", ArgVal::from(rule.name())),
                    ("terms", ArgVal::from(terms_count)),
                ],
            );
        }
    }
    rewritten
}

/// Promotes `i64` parameters used only as raw addresses to typed pointer
/// parameters (§5.2), rewriting all call sites in the module.
///
/// Returns the number of parameters promoted.
pub fn promote_pointer_params(m: &mut Module) -> usize {
    promote_pointer_params_traced(m, &TraceCtx::disabled())
}

/// [`promote_pointer_params`] recording each promotion into `ctx`: one
/// `refine.params.promoted` counter increment and (when tracing is enabled)
/// a `promote-param` instant event naming the function and parameter.
/// Produces the exact same module as [`promote_pointer_params`].
pub fn promote_pointer_params_traced(m: &mut Module, ctx: &TraceCtx) -> usize {
    let mut promoted = 0;
    for fi in 0..m.funcs.len() {
        let fid = lasagne_lir::FuncId(fi as u32);
        let nparams = m.funcs[fi].params.len();
        for pi in 0..nparams {
            if m.funcs[fi].params[pi] != Ty::I64 {
                continue;
            }
            // Collect uses of the parameter.
            let f = &m.funcs[fi];
            let mut all_inttoptr = true;
            let mut any_use = false;
            let mut dst_tys: Vec<Ty> = Vec::new();
            let mut user_ids: Vec<InstId> = Vec::new();
            for (_, id) in f.iter_insts() {
                let inst = f.inst(id);
                let mut used = false;
                inst.kind.for_each_operand(|op| {
                    if *op == Operand::Param(pi as u32) {
                        used = true;
                    }
                });
                if !used {
                    continue;
                }
                any_use = true;
                match &inst.kind {
                    InstKind::Cast {
                        op: CastOp::IntToPtr,
                        ..
                    } => {
                        dst_tys.push(inst.ty);
                        user_ids.push(id);
                    }
                    _ => {
                        all_inttoptr = false;
                        break;
                    }
                }
            }
            let mut term_use = false;
            for b in m.funcs[fi].block_ids() {
                m.funcs[fi].block(b).term.for_each_operand(|op| {
                    if *op == Operand::Param(pi as u32) {
                        term_use = true;
                    }
                });
            }
            if !any_use || !all_inttoptr || term_use {
                continue;
            }
            // Choose the promoted type: unanimous destination type, else i8*.
            let unanimous = dst_tys.windows(2).all(|w| w[0] == w[1]);
            let new_ty = if unanimous {
                dst_tys[0]
            } else {
                Ty::Ptr(Pointee::I8)
            };
            m.funcs[fi].params[pi] = new_ty;
            // Rewrite the inttoptr users: same type ⇒ replace uses directly;
            // otherwise turn the cast into a bitcast from the parameter.
            for id in user_ids {
                let f = &mut m.funcs[fi];
                if f.inst(id).ty == new_ty {
                    f.replace_all_uses(id, Operand::Param(pi as u32));
                    if let Some((b, pos)) = position_of(f, id) {
                        f.block_mut(b).insts.remove(pos);
                    }
                } else {
                    f.inst_mut(id).kind = InstKind::Cast {
                        op: CastOp::BitCast,
                        val: Operand::Param(pi as u32),
                    };
                }
            }
            // Fix every call site in the module.
            fix_call_sites(m, fid, pi, new_ty);
            promoted += 1;
            ctx.add("refine.params.promoted", 1);
            if ctx.is_enabled() {
                ctx.instant(
                    "refine",
                    "promote-param",
                    vec![
                        ("func", ArgVal::from(m.funcs[fi].name.as_str())),
                        ("param", ArgVal::from(pi)),
                        ("ty", ArgVal::from(format!("{new_ty:?}"))),
                    ],
                );
            }
        }
    }
    promoted
}

/// After promoting parameter `pi` of `callee` to `new_ty`, rewrites all call
/// sites: arguments that are `ptrtoint(P)` pass `P` (bitcast if needed);
/// anything else gets an explicit `inttoptr`.
fn fix_call_sites(m: &mut Module, callee: lasagne_lir::FuncId, pi: usize, new_ty: Ty) {
    for fi in 0..m.funcs.len() {
        let call_sites: Vec<InstId> = m.funcs[fi]
            .iter_insts()
            .filter(|(_, id)| {
                matches!(&m.funcs[fi].inst(*id).kind,
                    InstKind::Call { callee: Callee::Func(c), .. } if *c == callee)
            })
            .map(|(_, id)| id)
            .collect();
        for cs in call_sites {
            let InstKind::Call { args, .. } = &m.funcs[fi].inst(cs).kind else {
                continue;
            };
            let arg = args[pi];
            // If the argument is ptrtoint(P), pass P through (bitcast when
            // the pointee differs).
            let direct: Option<Operand> = match arg {
                Operand::Inst(aid) => match &m.funcs[fi].inst(aid).kind {
                    InstKind::Cast {
                        op: CastOp::PtrToInt,
                        val,
                    } => Some(*val),
                    _ => None,
                },
                _ => None,
            };
            let Some((b, pos)) = position_of(&m.funcs[fi], cs) else {
                continue;
            };
            let new_arg = match direct {
                Some(p) => {
                    let pty = m.operand_ty(&m.funcs[fi], &p);
                    if pty == new_ty {
                        p
                    } else {
                        let f = &mut m.funcs[fi];
                        Operand::Inst(f.insert(
                            b,
                            pos,
                            new_ty,
                            InstKind::Cast {
                                op: CastOp::BitCast,
                                val: p,
                            },
                        ))
                    }
                }
                None => {
                    let f = &mut m.funcs[fi];
                    Operand::Inst(f.insert(
                        b,
                        pos,
                        new_ty,
                        InstKind::Cast {
                            op: CastOp::IntToPtr,
                            val: arg,
                        },
                    ))
                }
            };
            let f = &mut m.funcs[fi];
            if let InstKind::Call { args, .. } = &mut f.inst_mut(cs).kind {
                args[pi] = new_arg;
            }
        }
    }
}

/// Removes dead *address arithmetic* (casts, adds, geps with no uses) from
/// a function, iterating to a fixpoint. Pointer exposure orphans the
/// integer address computations it rewrites; sweeping them is a
/// precondition for parameter promotion to see "only `inttoptr` uses".
///
/// Deliberately narrower than DCE: refinement must not do the optimizer's
/// job (the paper's Figure 17 measures each pass on the *refined* code),
/// so unrelated dead code — flag materialisation in particular — is left
/// for `dce`/`adce`.
pub fn sweep_dead(f: &mut Function) -> usize {
    let addr_arith = |k: &InstKind| {
        matches!(
            k,
            InstKind::Cast { .. }
                | InstKind::Gep { .. }
                | InstKind::Bin {
                    op: lasagne_lir::inst::BinOp::Add,
                    ..
                }
                | InstKind::Bin {
                    op: lasagne_lir::inst::BinOp::Mul,
                    ..
                }
        )
    };
    let mut removed = 0;
    loop {
        let uses = f.use_counts();
        let mut dead: Vec<InstId> = Vec::new();
        for (_, id) in f.iter_insts() {
            let inst = f.inst(id);
            if uses[id.0 as usize] == 0 && !inst.kind.has_side_effects() && addr_arith(&inst.kind) {
                dead.push(id);
            }
        }
        if dead.is_empty() {
            break;
        }
        removed += dead.len();
        for b in f.block_ids() {
            f.block_mut(b).insts.retain(|i| !dead.contains(i));
        }
    }
    removed
}

/// One per-function refinement step: pointer exposure ([`expose_pointers`])
/// followed by a dead-arithmetic sweep ([`sweep_dead`]). Returns the number
/// of `inttoptr` instructions rewritten.
///
/// This is the intraprocedural half of [`refine_module`], split out for the
/// pipeline driver: it mutates only `f` and reads `m` solely for operand
/// typing (never other function bodies), so distinct functions may be
/// refined concurrently with results identical to any serial order.
pub fn refine_function(m: &Module, f: &mut Function) -> usize {
    refine_function_traced(m, f, &TraceCtx::disabled())
}

/// [`refine_function`] with rule-firing tracing (see
/// [`expose_pointers_traced`]); also counts swept dead address arithmetic
/// into `refine.swept`.
pub fn refine_function_traced(m: &Module, f: &mut Function, ctx: &TraceCtx) -> usize {
    let n = expose_pointers_traced(m, f, ctx);
    let swept = sweep_dead(f);
    ctx.add("refine.swept", swept as u64);
    n
}

/// Runs the full refinement pipeline over a module: alternating pointer
/// exposure, dead-arithmetic sweeping, and parameter promotion until a
/// fixpoint (promotion exposes new `ptrtoint` roots in callers, so up to
/// three rounds run).
pub fn refine_module(m: &mut Module) -> RefineStats {
    let mut stats = RefineStats::default();
    for _ in 0..3 {
        let mut changed = 0;
        for fi in 0..m.funcs.len() {
            let mut f = std::mem::replace(&mut m.funcs[fi], Function::new("", vec![], Ty::Void));
            let n = refine_function(m, &mut f);
            m.funcs[fi] = f;
            changed += n;
            stats.inttoptr_rewritten += n;
        }
        let p = promote_pointer_params(m);
        for f in &mut m.funcs {
            sweep_dead(f);
        }
        stats.params_promoted += p;
        if changed == 0 && p == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{BinOp, InstKind, Operand, Ordering, Terminator};
    use lasagne_lir::types::{Pointee, Ty};
    use lasagne_lir::verify::verify_module;

    /// Figure 5, rule 1: `ptrtoint` immediately followed by `inttoptr`
    /// becomes a bitcast.
    #[test]
    fn rule1_pointer_casting() {
        let mut m = Module::new();
        let mut f = Function::new("r1", vec![], Ty::I32);
        let e = f.entry();
        let stack = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 64 });
        let i = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(stack),
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I32),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Inst(i),
            },
        );
        let l = f.push(
            e,
            Ty::I32,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        let n = expose_pointers(&m, &mut f);
        assert_eq!(n, 1);
        assert!(
            matches!(
                f.inst(p).kind,
                InstKind::Cast {
                    op: CastOp::BitCast,
                    ..
                }
            ),
            "inttoptr should have become a bitcast: {:?}",
            f.inst(p).kind
        );
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    /// Figure 5, rule 2: stack offset through integer add becomes a GEP.
    #[test]
    fn rule2_stack_offset() {
        let mut m = Module::new();
        let mut f = Function::new("r2", vec![], Ty::I32);
        let e = f.entry();
        let stack = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 64 });
        let tos = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(stack),
            },
        );
        let off = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(tos),
                rhs: Operand::i64(16),
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I32),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Inst(off),
            },
        );
        let l = f.push(
            e,
            Ty::I32,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        assert_eq!(expose_pointers(&m, &mut f), 1);
        // A GEP from the alloca must now exist and feed the bitcast.
        let has_gep = f.iter_insts().any(|(_, id)| {
            matches!(&f.inst(id).kind, InstKind::Gep { base, .. } if *base == Operand::Inst(stack))
        });
        assert!(has_gep);
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    /// Figure 5, rule 3 + §5.2: `i64` parameter offset and promotion.
    #[test]
    fn rule3_and_param_promotion() {
        let mut m = Module::new();
        let mut f = Function::new("r3", vec![Ty::I64], Ty::I32);
        let e = f.entry();
        let off = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(8),
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I32),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Inst(off),
            },
        );
        let l = f.push(
            e,
            Ty::I32,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        m.add_func(f);

        let stats = refine_module(&mut m);
        assert!(stats.inttoptr_rewritten >= 1);
        // After rule 3, the parameter's only use is a single inttoptr, so
        // promotion fires and the parameter becomes a pointer.
        assert_eq!(stats.params_promoted, 1);
        assert!(
            m.funcs[0].params[0].is_ptr(),
            "param should be promoted: {:?}",
            m.funcs[0].params
        );
        verify_module(&m).unwrap();
    }

    /// §5.2: all-inttoptr uses with a unanimous type promote to that type.
    #[test]
    fn unanimous_promotion_type() {
        let mut m = Module::new();
        let mut f = Function::new("u", vec![Ty::I64], Ty::F64);
        let e = f.entry();
        let p = f.push(
            e,
            Ty::Ptr(Pointee::F64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Param(0),
            },
        );
        let l = f.push(
            e,
            Ty::F64,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        m.add_func(f);
        assert_eq!(promote_pointer_params(&mut m), 1);
        assert_eq!(m.funcs[0].params[0], Ty::Ptr(Pointee::F64));
        verify_module(&m).unwrap();
    }

    /// A parameter used as a plain integer must not be promoted.
    #[test]
    fn integer_use_blocks_promotion() {
        let mut m = Module::new();
        let mut f = Function::new("n", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let v = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::i64(2),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(v)),
            },
        );
        m.add_func(f);
        assert_eq!(promote_pointer_params(&mut m), 0);
        assert_eq!(m.funcs[0].params[0], Ty::I64);
    }

    /// Call sites are rewritten when a callee parameter is promoted.
    #[test]
    fn call_site_rewrite() {
        let mut m = Module::new();
        // callee(p): load i64 through p
        let mut callee = Function::new("callee", vec![Ty::I64], Ty::I64);
        let e = callee.entry();
        let p = callee.push(
            e,
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Param(0),
            },
        );
        let l = callee.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        callee.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        let callee_id = m.add_func(callee);

        // caller: x = alloca; store 9; callee(ptrtoint x)
        let mut caller = Function::new("caller", vec![], Ty::I64);
        let e = caller.entry();
        let slot = caller.push(e, Ty::Ptr(Pointee::I64), InstKind::Alloca { size: 8 });
        caller.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(slot),
                val: Operand::i64(9),
                order: Ordering::NotAtomic,
            },
        );
        let raw = caller.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(slot),
            },
        );
        let call = caller.push(
            e,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(callee_id),
                args: vec![Operand::Inst(raw)],
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(call)),
            },
        );
        let caller_id = m.add_func(caller);

        refine_module(&mut m);
        verify_module(&m).unwrap();
        assert!(m.funcs[0].params[0].is_ptr());

        // Semantics preserved end-to-end.
        let mut machine = lasagne_lir::interp::Machine::new(&m);
        let r = machine.run(caller_id, &[]).unwrap();
        assert_eq!(r.ret, Some(lasagne_lir::interp::Val::B64(9)));
    }

    /// A multi-term indexed address — `stack + 4096 - 8 + i*8` — must
    /// refine into a gep chain rooted at the alloca (the generalised rule 2
    /// that loop bodies depend on).
    #[test]
    fn indexed_stack_address_refines() {
        let mut m = Module::new();
        let mut f = Function::new("ix", vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let stack = f.push(e, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 4096 });
        let tos = f.push(
            e,
            Ty::I64,
            InstKind::Cast {
                op: CastOp::PtrToInt,
                val: Operand::Inst(stack),
            },
        );
        let top = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(tos),
                rhs: Operand::i64(4096),
            },
        );
        let idx = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: Operand::Param(0),
                rhs: Operand::i64(8),
            },
        );
        let down = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(top),
                rhs: Operand::i64(-64),
            },
        );
        let addr = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Inst(down),
                rhs: Operand::Inst(idx),
            },
        );
        let p = f.push(
            e,
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Inst(addr),
            },
        );
        f.push(
            e,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Inst(p),
                val: Operand::i64(1),
                order: Ordering::NotAtomic,
            },
        );
        let l = f.push(
            e,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Inst(p),
                order: Ordering::NotAtomic,
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(l)),
            },
        );
        m.add_func(f);

        refine_module(&mut m);
        verify_module(&m).unwrap();
        let f = &m.funcs[0];
        // The store's pointer must now be stack-rooted through gep/bitcast.
        let rooted = f.iter_insts().any(|(_, id)| {
            matches!(&f.inst(id).kind, InstKind::Store { ptr, .. }
                if lasagne_fences_is_stack_like(f, ptr))
        });
        assert!(
            rooted,
            "indexed stack address not refined:\n{}",
            lasagne_lir::print::print_module(&m)
        );

        // Behaviour preserved.
        let id = m.func_by_name("ix").unwrap();
        let mut machine = lasagne_lir::interp::Machine::new(&m);
        assert_eq!(
            machine
                .run(id, &[lasagne_lir::interp::Val::B64(3)])
                .unwrap()
                .ret,
            Some(lasagne_lir::interp::Val::B64(1))
        );
    }

    /// Local re-implementation of the fence-placement stack walk (the
    /// refine crate must not depend on lasagne-fences).
    fn lasagne_fences_is_stack_like(f: &Function, ptr: &Operand) -> bool {
        let mut cur = *ptr;
        for _ in 0..64 {
            match cur {
                Operand::Inst(i) => match &f.inst(i).kind {
                    InstKind::Alloca { .. } => return true,
                    InstKind::Cast {
                        op: CastOp::BitCast,
                        val,
                    } => cur = *val,
                    InstKind::Gep { base, .. } => cur = *base,
                    _ => return false,
                },
                _ => return false,
            }
        }
        false
    }

    /// End to end: lifted stack traffic becomes alloca-rooted after
    /// refinement (the property fence placement relies on).
    #[test]
    fn lifted_stack_access_becomes_alloca_rooted() {
        use lasagne_x86::asm::Asm;
        use lasagne_x86::binary::BinaryBuilder;
        use lasagne_x86::inst::{Inst, MemRef, Rm};
        use lasagne_x86::reg::{Gpr, Width};

        let mut b = BinaryBuilder::new();
        let mut a = Asm::new();
        // [rsp-8] = rdi; rax = [rsp-8]
        a.push(Inst::MovRmR {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
            src: Gpr::Rdi,
        });
        a.push(Inst::MovRRm {
            w: Width::W64,
            dst: Gpr::Rax,
            src: Rm::Mem(MemRef::base_disp(Gpr::Rsp, -8)),
        });
        a.push(Inst::Ret);
        let addr = b.next_function_addr();
        b.add_function("f", a.finish(addr).unwrap());
        let mut m = lasagne_lifter::lift_binary(&b.finish()).unwrap();

        let stats = refine_module(&mut m);
        assert!(
            stats.inttoptr_rewritten >= 2,
            "both accesses refined: {stats:?}"
        );
        verify_module(&m).unwrap();

        // Trace the store's pointer: must reach an alloca through only
        // bitcast/gep.
        let f = &m.funcs[0];
        let mut found_rooted_store = false;
        for (_, id) in f.iter_insts() {
            if let InstKind::Store { ptr, .. } = &f.inst(id).kind {
                let mut cur = *ptr;
                loop {
                    match cur {
                        Operand::Inst(i) => match &f.inst(i).kind {
                            InstKind::Alloca { .. } => {
                                found_rooted_store = true;
                                break;
                            }
                            InstKind::Cast {
                                op: CastOp::BitCast,
                                val,
                            } => cur = *val,
                            InstKind::Gep { base, .. } => cur = *base,
                            _ => break,
                        },
                        _ => break,
                    }
                }
            }
        }
        assert!(
            found_rooted_store,
            "store pointer should be rooted at the stack alloca"
        );

        // Still computes the right value.
        let id = m.func_by_name("f").unwrap();
        let mut machine = lasagne_lir::interp::Machine::new(&m);
        assert_eq!(
            machine
                .run(id, &[lasagne_lir::interp::Val::B64(77)])
                .unwrap()
                .ret,
            Some(lasagne_lir::interp::Val::B64(77))
        );
    }
}
