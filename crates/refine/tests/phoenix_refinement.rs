//! IR-refinement invariants measured on the real lifted Phoenix modules
//! (the same programs Figure 13 is computed from):
//!
//! * refinement removes a substantial share of integer↔pointer casts;
//! * it promotes at least one pointer parameter per benchmark (each has a
//!   worker taking a context/array pointer passed as `i64`);
//! * it never changes the benchmark checksum;
//! * it reaches a fixpoint (re-running does nothing).

use lasagne_lir::interp::{Machine, Val};
use lasagne_lir::verify::verify_module;
use lasagne_lir::{Module, Ty};
use lasagne_phoenix::{all_benchmarks, Workload};
use lasagne_refine::refine_module;

fn casts(m: &Module) -> usize {
    m.count_insts(|i| i.kind.is_int_ptr_cast())
}

fn checksum(m: &Module, w: &Workload) -> u64 {
    let id = m.func_by_name("main").expect("main");
    let mut machine = Machine::new(m);
    for (addr, bytes) in &w.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let args: Vec<Val> = w.args.iter().map(|a| Val::B64(*a)).collect();
    machine
        .run(id, &args)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
        .ret
        .unwrap()
        .bits()
}

#[test]
fn refinement_removes_casts_and_preserves_checksums() {
    for b in all_benchmarks(48) {
        let mut m =
            lasagne_lifter::lift_binary(&b.binary).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let before = casts(&m);
        let stats = refine_module(&mut m);
        let after = casts(&m);
        verify_module(&m).unwrap_or_else(|e| panic!("{}: {e:?}", b.name));
        assert!(
            after < before,
            "{}: refinement removed no casts ({before} -> {after})",
            b.name
        );
        assert!(
            stats.inttoptr_rewritten > 0,
            "{}: no inttoptr rewritten despite cast reduction",
            b.name
        );
        assert_eq!(
            checksum(&m, &b.workload),
            b.workload.expected_ret,
            "{}",
            b.name
        );
    }
}

#[test]
fn worker_context_parameters_become_pointers() {
    for b in all_benchmarks(32) {
        let mut m = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let stats = refine_module(&mut m);
        assert!(
            stats.params_promoted > 0,
            "{}: every Phoenix worker takes a pointer argument; none promoted",
            b.name
        );
        let pointer_params = m
            .funcs
            .iter()
            .flat_map(|f| f.params.iter())
            .filter(|t| matches!(t, Ty::Ptr(_)))
            .count();
        assert!(
            pointer_params >= stats.params_promoted,
            "{}: promoted params must surface in signatures",
            b.name
        );
    }
}

#[test]
fn refinement_is_a_fixpoint() {
    for b in all_benchmarks(32) {
        let mut m = lasagne_lifter::lift_binary(&b.binary).unwrap();
        refine_module(&mut m);
        let casts_once = casts(&m);
        let insts_once = m.inst_count();
        let again = refine_module(&mut m);
        assert_eq!(
            again.inttoptr_rewritten, 0,
            "{}: second run rewrote more",
            b.name
        );
        assert_eq!(
            again.params_promoted, 0,
            "{}: second run promoted more",
            b.name
        );
        assert_eq!(casts(&m), casts_once, "{}: cast count drifted", b.name);
        assert_eq!(m.inst_count(), insts_once, "{}: inst count drifted", b.name);
    }
}
