//! `lasagne-cache` — content-addressed on-disk translation cache.
//!
//! The Figure 3 pipeline is deterministic per function given (a) the
//! function's machine-code bytes, (b) the pipeline `Version` and its pass
//! list, and (c) the interprocedural facts the function consumed (callee
//! signatures after parameter promotion, `ipsccp` constant substitutions).
//! That makes the fully-refined-and-optimized LIR of each function a pure
//! value keyed by a content hash — this crate stores those values on disk
//! so retranslating an unchanged binary skips `lift`/`refine`/`opt`
//! entirely and goes straight to Arm code generation.
//!
//! The pipeline computes the keys (it owns the pass schedule and the fact
//! digests); this crate owns the disk format:
//!
//! ```text
//! <cache-dir>/
//!   man-<modulekey>.bin     manifest: per-function artifact keys + stats
//!   obj/<funckey>.bin       one framed, serialized LIR function each
//!   tmp/                    staging for atomic renames
//! ```
//!
//! Every file is written to `tmp/` first and atomically renamed into
//! place, and every file carries a checksum [`frame`](ser::frame). A torn,
//! truncated, or bit-flipped entry therefore *reads as a miss* — the bad
//! file is deleted so the next store heals it — and is never an error.

#![warn(missing_docs)]

pub mod hash;
pub mod ser;

pub use hash::{fnv64, Fnv64};
pub use ser::Corrupt;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;

use lasagne_lir::func::{ExternDecl, Function, GlobalVar, Module};

/// Hit/miss/write counters for one cache handle.
///
/// `hits` and `misses` count *function artifacts* on the load path (a
/// failed module load is a single miss, since nothing per-function was
/// usable); `writes`/`unchanged` count artifacts on the store path;
/// `evicted` counts files removed by pruning; `saved_nanos` sums the
/// recorded cold-translation time of every artifact served from cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Function artifacts served from cache.
    pub hits: u64,
    /// Module loads that found no usable entry.
    pub misses: u64,
    /// New function artifacts written.
    pub writes: u64,
    /// Artifacts already present at store time (shared with a prior entry).
    pub unchanged: u64,
    /// Files removed by pruning.
    pub evicted: u64,
    /// Cold-path nanoseconds avoided by the hits.
    pub saved_nanos: u64,
}

/// Per-function metadata cached alongside the LIR artifact: the fence
/// placement statistics and the cold-path translation time the cached
/// entry stands in for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncMeta {
    /// Read-to-memory fences placed (`PlacementStats::frm`).
    pub frm: u64,
    /// Write-write fences placed (`PlacementStats::fww`).
    pub fww: u64,
    /// Placements skipped by the stack-locality analysis.
    pub skipped_stack: u64,
    /// Wall nanoseconds the cold lift/refine/fences/merge/opt path spent
    /// on this function.
    pub cold_nanos: u64,
}

/// One function's row in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Function name (must match the decoded artifact).
    pub name: String,
    /// Content key of the function artifact under `obj/`.
    pub key: u64,
    /// FNV-1a digest of the artifact *file bytes* under `obj/`, verified
    /// on load. The key names the artifact by its pipeline inputs; the
    /// digest pins its contents, so a file that is individually
    /// well-formed but belongs to a different translation (a botched
    /// rename, a foreign writer) is rejected instead of reassembled into
    /// the wrong module. Callers may leave it 0 —
    /// [`TranslationCache::store`] computes it from the bytes it frames.
    pub digest: u64,
    /// Cached per-function metadata.
    pub meta: FuncMeta,
}

/// The module-level cache entry: which artifacts make up the module, in
/// which order, plus everything needed to rebuild the `Translation`
/// without rerunning the pipeline.
///
/// Module-level stats are stored rather than recomputed because some of
/// them (`casts_final`) are sampled mid-pipeline — after refinement but
/// before optimization — and cannot be recovered from the final module.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// `Version::name()` the entry was translated under (informational;
    /// the version is already folded into the module key).
    pub version: String,
    /// The pipeline pass list (informational, as above).
    pub passes: String,
    /// `TranslationStats` as a fixed-order array: `[casts_lifted,
    /// casts_final, fences_naive, fences_placed, fences_final,
    /// insts_lifted, insts_final]`.
    pub module_stats: [u64; 7],
    /// Module globals, verbatim.
    pub globals: Vec<GlobalVar>,
    /// Module extern declarations, verbatim.
    pub externs: Vec<ExternDecl>,
    /// Per-function rows, in module function order.
    pub entries: Vec<ManifestEntry>,
}

/// A fully reassembled module loaded from cache.
#[derive(Debug, Clone)]
pub struct CachedModule {
    /// The post-`opt` LIR module, ready for Arm code generation.
    pub module: Module,
    /// Per-function metadata, parallel to `module.funcs`.
    pub metas: Vec<FuncMeta>,
    /// Module-level stats in [`Manifest::module_stats`] order.
    pub module_stats: [u64; 7],
}

/// Default number of module manifests retained by pruning.
pub const DEFAULT_KEEP: usize = 64;

/// A handle on one on-disk cache directory.
///
/// The handle is `Sync`; counters are internally locked. All I/O errors on
/// the load path degrade to misses and all I/O errors on the store path
/// are silently dropped (the cache is an accelerator, never a correctness
/// dependency) — only [`TranslationCache::open`] reports failure, since a
/// directory that cannot be created would make every operation a no-op.
#[derive(Debug)]
pub struct TranslationCache {
    root: PathBuf,
    keep: usize,
    stats: Mutex<CacheStats>,
}

/// Serializes store/prune critical sections across every cache handle in
/// this process. Concurrent cold translations sharing one cache
/// directory (the serve daemon opens a handle per request) would
/// otherwise race the prune: one handle's GC sweep can delete artifacts
/// another handle has written but not yet published a manifest for.
/// Cross-process stores remain safe without it — every write is
/// tempfile-plus-rename and a lost artifact is only ever a future miss.
static STORE_LOCK: Mutex<()> = Mutex::new(());

/// Process-wide tempfile sequence. Must not be per-handle: two handles
/// on the same directory would both start at zero and collide on
/// `tmp/{pid}-0.tmp`, renaming one store's bytes into the other's
/// content-addressed artifact path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl TranslationCache {
    /// Opens (creating if needed) the cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory layout cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<TranslationCache> {
        let root = root.into();
        fs::create_dir_all(root.join("obj"))?;
        fs::create_dir_all(root.join("tmp"))?;
        Ok(TranslationCache {
            root,
            keep: DEFAULT_KEEP,
            stats: Mutex::new(CacheStats::default()),
        })
    }

    /// Sets the number of module manifests pruning retains.
    pub fn with_keep(mut self, keep: usize) -> TranslationCache {
        self.keep = keep.max(1);
        self
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of this handle's counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().unwrap()
    }

    fn manifest_path(&self, module_key: u64) -> PathBuf {
        self.root.join(format!("man-{module_key:016x}.bin"))
    }

    fn artifact_path(&self, func_key: u64) -> PathBuf {
        self.root.join("obj").join(format!("{func_key:016x}.bin"))
    }

    /// Attempts to serve the whole module for `module_key` from cache.
    ///
    /// Returns `None` — counting one miss — if the manifest is absent, any
    /// file fails its checksum or decode, any artifact's bytes or name
    /// disagree with its manifest row (the row's digest pins the exact
    /// file contents the manifest was stored with), or the reassembled
    /// module fails the LIR verifier. Corrupt files encountered on the
    /// way are deleted so the next cold run rewrites them.
    pub fn load(&self, module_key: u64) -> Option<CachedModule> {
        match self.try_load(module_key) {
            Some(cached) => {
                let mut s = self.stats.lock().unwrap();
                s.hits += cached.module.funcs.len() as u64;
                s.saved_nanos += cached.metas.iter().map(|m| m.cold_nanos).sum::<u64>();
                Some(cached)
            }
            None => {
                self.stats.lock().unwrap().misses += 1;
                None
            }
        }
    }

    /// Reads and decodes the manifest for `module_key` without touching
    /// the artifacts or the counters. Intended for inspection (tests,
    /// tooling); returns `None` on absence or corruption.
    pub fn load_manifest(&self, module_key: u64) -> Option<Manifest> {
        decode_manifest(&fs::read(self.manifest_path(module_key)).ok()?).ok()
    }

    fn try_load(&self, module_key: u64) -> Option<CachedModule> {
        let man_path = self.manifest_path(module_key);
        let bytes = match fs::read(&man_path) {
            Ok(b) => b,
            Err(e) => {
                // Unreadable-but-present manifests (not plain absence) are
                // corrupt debris; remove them so the next store heals.
                if e.kind() != io::ErrorKind::NotFound {
                    let _ = fs::remove_file(&man_path);
                }
                return None;
            }
        };
        let manifest = match decode_manifest(&bytes) {
            Ok(m) => m,
            Err(Corrupt) => {
                let _ = fs::remove_file(&man_path);
                return None;
            }
        };
        let mut module = Module {
            funcs: Vec::with_capacity(manifest.entries.len()),
            globals: manifest.globals.clone(),
            externs: manifest.externs.clone(),
        };
        let mut metas = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            let path = self.artifact_path(entry.key);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    if e.kind() != io::ErrorKind::NotFound {
                        let _ = fs::remove_file(&path);
                    }
                    return None;
                }
            };
            if fnv64(&bytes) != entry.digest {
                // Well-formed bytes that are not the bytes this manifest
                // stored — a foreign or stale artifact at our path.
                let _ = fs::remove_file(&path);
                return None;
            }
            let func = match decode_function(&bytes) {
                Ok(f) => f,
                Err(Corrupt) => {
                    let _ = fs::remove_file(&path);
                    return None;
                }
            };
            if func.name != entry.name {
                let _ = fs::remove_file(&path);
                return None;
            }
            module.funcs.push(func);
            metas.push(entry.meta);
        }
        if lasagne_lir::verify::verify_module(&module).is_err() {
            // Individually well-formed functions that do not verify as a
            // module (dangling callee ids, say) mean the manifest groups
            // stale artifacts; drop the manifest, keep the artifacts.
            let _ = fs::remove_file(&man_path);
            return None;
        }
        Some(CachedModule {
            module,
            metas,
            module_stats: manifest.module_stats,
        })
    }

    /// Writes the module entry for `module_key`: every function artifact
    /// not already present, then the manifest, then a prune. All writes
    /// are tempfile-plus-rename; failures are ignored (the entry will
    /// simply miss next time).
    ///
    /// # Panics
    ///
    /// Panics if `manifest.entries` and `funcs` disagree in length — that
    /// is a caller bug, not a cache condition.
    pub fn store(&self, module_key: u64, manifest: &Manifest, funcs: &[Function]) {
        assert_eq!(manifest.entries.len(), funcs.len());
        let _guard = STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut man = manifest.clone();
        for (entry, func) in man.entries.iter_mut().zip(funcs) {
            // The digest is always recomputed from the bytes this store
            // frames: translation is deterministic per key, so an
            // artifact that is already present has these exact bytes.
            let mut w = ser::Writer::new();
            w.put_function(func);
            let framed = ser::frame(&w.finish());
            entry.digest = fnv64(&framed);
            let path = self.artifact_path(entry.key);
            if path.exists() {
                self.stats.lock().unwrap().unchanged += 1;
                continue;
            }
            if self.write_atomic(&path, &framed).is_ok() {
                self.stats.lock().unwrap().writes += 1;
            }
        }
        let bytes = ser::frame(&encode_manifest(&man));
        let _ = self.write_atomic(&self.manifest_path(module_key), &bytes);
        self.prune_locked();
    }

    fn write_atomic(&self, dst: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, dst).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    /// Retains the `keep` most-recently-modified manifests, deleting older
    /// ones and any `obj/` artifact no surviving manifest references.
    /// Called from [`TranslationCache::store`]; harmless to call directly.
    pub fn prune(&self) {
        let _guard = STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        self.prune_locked();
    }

    /// [`prune`](TranslationCache::prune) body; caller holds
    /// [`STORE_LOCK`].
    fn prune_locked(&self) {
        let Ok(dir) = fs::read_dir(&self.root) else {
            return;
        };
        let mut manifests: Vec<(std::time::SystemTime, PathBuf)> = dir
            .flatten()
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.starts_with("man-") && name.ends_with(".bin")
            })
            .filter_map(|e| {
                let mtime = e.metadata().ok()?.modified().ok()?;
                Some((mtime, e.path()))
            })
            .collect();
        if manifests.len() <= self.keep {
            return;
        }
        manifests.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let (kept, evict) = manifests.split_at(self.keep);
        let mut evicted = 0u64;
        for (_, path) in evict {
            if fs::remove_file(path).is_ok() {
                evicted += 1;
            }
        }
        // GC artifacts unreferenced by any surviving manifest.
        let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for (_, path) in kept {
            let Ok(bytes) = fs::read(path) else { continue };
            let Ok(man) = decode_manifest(&bytes) else {
                continue;
            };
            live.extend(man.entries.iter().map(|e| e.key));
        }
        if let Ok(objs) = fs::read_dir(self.root.join("obj")) {
            for e in objs.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                let key = name
                    .strip_suffix(".bin")
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                let dead = match key {
                    Some(k) => !live.contains(&k),
                    None => true,
                };
                if dead && fs::remove_file(e.path()).is_ok() {
                    evicted += 1;
                }
            }
        }
        self.stats.lock().unwrap().evicted += evicted;
    }
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = ser::Writer::new();
    w.put_str(&m.version);
    w.put_str(&m.passes);
    for v in m.module_stats {
        w.put_u64(v);
    }
    w.put_u64(m.globals.len() as u64);
    for g in &m.globals {
        w.put_global(g);
    }
    w.put_u64(m.externs.len() as u64);
    for e in &m.externs {
        w.put_extern(e);
    }
    w.put_u64(m.entries.len() as u64);
    for e in &m.entries {
        w.put_str(&e.name);
        w.put_u64(e.key);
        w.put_u64(e.digest);
        w.put_u64(e.meta.frm);
        w.put_u64(e.meta.fww);
        w.put_u64(e.meta.skipped_stack);
        w.put_u64(e.meta.cold_nanos);
    }
    w.finish()
}

fn decode_manifest(file_bytes: &[u8]) -> Result<Manifest, Corrupt> {
    let payload = ser::unframe(file_bytes)?;
    let mut r = ser::Reader::new(payload);
    let version = r.get_str()?;
    let passes = r.get_str()?;
    let mut module_stats = [0u64; 7];
    for v in &mut module_stats {
        *v = r.get_u64()?;
    }
    let nglobals = r.get_len()?;
    let mut globals = Vec::with_capacity(nglobals);
    for _ in 0..nglobals {
        globals.push(r.get_global()?);
    }
    let nexterns = r.get_len()?;
    let mut externs = Vec::with_capacity(nexterns);
    for _ in 0..nexterns {
        externs.push(r.get_extern()?);
    }
    let nentries = r.get_len()?;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        entries.push(ManifestEntry {
            name: r.get_str()?,
            key: r.get_u64()?,
            digest: r.get_u64()?,
            meta: FuncMeta {
                frm: r.get_u64()?,
                fww: r.get_u64()?,
                skipped_stack: r.get_u64()?,
                cold_nanos: r.get_u64()?,
            },
        });
    }
    r.expect_eof()?;
    Ok(Manifest {
        version,
        passes,
        module_stats,
        globals,
        externs,
        entries,
    })
}

fn decode_function(file_bytes: &[u8]) -> Result<Function, Corrupt> {
    let payload = ser::unframe(file_bytes)?;
    let mut r = ser::Reader::new(payload);
    let f = r.get_function()?;
    r.expect_eof()?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::inst::{InstKind, Operand, Terminator};
    use lasagne_lir::types::Ty;
    use std::sync::atomic::AtomicU32;

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_cache_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "lasagne-cache-test-{}-{}-{}",
            tag,
            std::process::id(),
            TEST_DIR_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ))
    }

    fn leaf(name: &str, k: i64) -> Function {
        let mut f = Function::new(name, vec![Ty::I64], Ty::I64);
        let e = f.entry();
        let add = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: lasagne_lir::inst::BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(k),
            },
        );
        f.set_term(
            e,
            Terminator::Ret {
                val: Some(Operand::Inst(add)),
            },
        );
        f
    }

    fn sample_manifest(funcs: &[Function]) -> Manifest {
        Manifest {
            version: "PPOpt".into(),
            passes: "lift,opt,armgen".into(),
            module_stats: [1, 2, 3, 4, 5, 6, 7],
            globals: vec![GlobalVar {
                name: "g".into(),
                size: 8,
                init: vec![0xff],
                addr: 0x60_0000,
            }],
            externs: vec![ExternDecl {
                name: "puts".into(),
                params: vec![Ty::Ptr(lasagne_lir::types::Pointee::I8)],
                ret: Ty::I32,
                variadic: false,
            }],
            entries: funcs
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut w = ser::Writer::new();
                    w.put_function(f);
                    ManifestEntry {
                        name: f.name.clone(),
                        key: fnv64(w.bytes()),
                        digest: 0,
                        meta: FuncMeta {
                            frm: i as u64,
                            fww: 1,
                            skipped_stack: 2,
                            cold_nanos: 1000 + i as u64,
                        },
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = temp_cache_dir("roundtrip");
        let cache = TranslationCache::open(&dir).unwrap();
        let funcs = vec![leaf("a", 3), leaf("b", 5)];
        let man = sample_manifest(&funcs);

        assert!(cache.load(0xdead).is_none());
        cache.store(0xdead, &man, &funcs);
        let got = cache.load(0xdead).expect("stored entry should load");
        assert_eq!(got.module.funcs, funcs);
        assert_eq!(got.module.globals, man.globals);
        assert_eq!(got.module.externs, man.externs);
        assert_eq!(got.module_stats, man.module_stats);
        assert_eq!(got.metas.len(), 2);
        assert_eq!(got.metas[1].cold_nanos, 1001);

        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.hits, 2);
        assert_eq!(s.saved_nanos, 2001);

        // A second store of the same content writes nothing new.
        cache.store(0xdead, &man, &funcs);
        assert_eq!(cache.stats().writes, 2);
        assert_eq!(cache.stats().unchanged, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_a_self_healing_miss() {
        let dir = temp_cache_dir("heal");
        let cache = TranslationCache::open(&dir).unwrap();
        let funcs = vec![leaf("a", 3)];
        let man = sample_manifest(&funcs);
        cache.store(1, &man, &funcs);

        let obj = cache.artifact_path(man.entries[0].key);
        let mut bytes = fs::read(&obj).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&obj, &bytes).unwrap();

        assert!(cache.load(1).is_none(), "torn artifact must miss");
        assert!(!obj.exists(), "torn artifact must be deleted");
        cache.store(1, &man, &funcs);
        assert!(cache.load(1).is_some(), "store after heal must hit");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_self_healing_miss() {
        let dir = temp_cache_dir("healman");
        let cache = TranslationCache::open(&dir).unwrap();
        let funcs = vec![leaf("a", 3)];
        let man = sample_manifest(&funcs);
        cache.store(2, &man, &funcs);

        let man_path = cache.manifest_path(2);
        let mut bytes = fs::read(&man_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&man_path, &bytes).unwrap();

        assert!(cache.load(2).is_none());
        assert!(!man_path.exists());
        cache.store(2, &man, &funcs);
        // Artifacts survived; only the manifest needed rewriting.
        assert_eq!(cache.stats().unchanged, 1);
        assert!(cache.load(2).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_handles_on_one_directory_do_not_cross_contaminate() {
        // The serve daemon opens a fresh handle per request; concurrent
        // cold stores into one directory must not mix artifacts (the
        // per-handle tempfile sequence once collided on `{pid}-0.tmp`).
        let dir = temp_cache_dir("concurrent");
        fs::create_dir_all(&dir).unwrap();
        let mods: Vec<(u64, Vec<Function>)> = (0..8u64)
            .map(|i| (i, vec![leaf("main", i as i64), leaf("helper", -(i as i64))]))
            .collect();
        std::thread::scope(|s| {
            for (key, funcs) in &mods {
                s.spawn(|| {
                    let cache = TranslationCache::open(&dir).unwrap();
                    cache.store(*key, &sample_manifest(funcs), funcs);
                });
            }
        });
        let cache = TranslationCache::open(&dir).unwrap();
        for (key, funcs) in &mods {
            let got = cache.load(*key).expect("stored module should load");
            assert_eq!(&got.module.funcs, funcs, "module {key} was contaminated");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_bytes_at_an_artifact_path_are_rejected_by_digest() {
        let dir = temp_cache_dir("digest");
        let cache = TranslationCache::open(&dir).unwrap();
        let funcs = vec![leaf("a", 3)];
        let man = sample_manifest(&funcs);
        cache.store(7, &man, &funcs);

        // Overwrite the artifact with a *well-formed* frame of a
        // different function that has the same name: only the digest
        // check can tell it apart.
        let imposter = leaf("a", 99);
        let mut w = ser::Writer::new();
        w.put_function(&imposter);
        let obj = cache.artifact_path(man.entries[0].key);
        fs::write(&obj, ser::frame(&w.finish())).unwrap();

        assert!(cache.load(7).is_none(), "foreign artifact must miss");
        assert!(!obj.exists(), "foreign artifact must be deleted");
        cache.store(7, &man, &funcs);
        assert!(cache.load(7).is_some(), "store after heal must hit");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_recent_manifests_and_gcs_orphans() {
        let dir = temp_cache_dir("prune");
        let cache = TranslationCache::open(&dir).unwrap().with_keep(2);
        for i in 0..5u64 {
            let funcs = vec![leaf(&format!("f{i}"), i as i64)];
            let man = sample_manifest(&funcs);
            cache.store(i, &man, &funcs);
        }
        let manifests = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("man-"))
            .count();
        assert_eq!(manifests, 2);
        let objs = fs::read_dir(dir.join("obj")).unwrap().flatten().count();
        assert!(objs <= 2, "orphan artifacts survived GC: {objs}");
        assert!(cache.stats().evicted >= 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
