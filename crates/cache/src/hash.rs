//! FNV-1a 64-bit hashing.
//!
//! Cache keys must be stable across runs, platforms, and `--jobs` values,
//! which rules out [`std::hash::Hasher`] implementations with per-process
//! seeds. FNV-1a is the simplest well-distributed stable hash; it joins the
//! splitmix64 family already used by `lasagne-qc` as the repo's second
//! deterministic hash primitive.

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// All multi-byte integers are folded in little-endian order so a key
/// computed on any host is byte-for-byte reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed string, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Folds a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefixing_separates_concatenations() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }
}
