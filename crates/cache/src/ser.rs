//! Hand-rolled binary (de)serialization for LIR functions and module
//! shells.
//!
//! Like the repo's JSON writers, this is deliberately dependency-free: a
//! tag byte per enum variant, little-endian fixed-width integers, and
//! length-prefixed strings/vectors. The format is *not* a public interface
//! — any layout change must bump [`SCHEMA`], which flows into every cache
//! key, so stale entries simply miss instead of misparsing.
//!
//! Entries on disk are wrapped in a [`frame`]: magic, schema, payload
//! length, and an FNV-1a checksum. [`unframe`] rejects torn or bit-flipped
//! files with [`Corrupt`]; the cache treats that as a miss, never an error.

use std::fmt;

use lasagne_lir::func::{Block, ExternDecl, Function, GlobalVar};
use lasagne_lir::inst::{
    BinOp, BlockId, Callee, CastOp, ExternId, FPred, FenceKind, FuncId, GlobalId, IPred, Inst,
    InstId, InstKind, Operand, Ordering, RmwOp, Terminator,
};
use lasagne_lir::types::{Pointee, Ty};

use crate::hash::fnv64;

/// Serialization format version. Part of every cache key: bumping it
/// invalidates all previously written entries.
pub const SCHEMA: u32 = 1;

/// File magic for framed cache entries.
pub const MAGIC: [u8; 4] = *b"LSGC";

/// Decode failure: the bytes do not form a well-framed, well-typed entry.
///
/// Carries no detail on purpose — every corruption, truncation, or schema
/// mismatch is handled identically (the cache deletes the file and reports
/// a miss), so there is nothing to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corrupt;

impl fmt::Display for Corrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt cache entry")
    }
}

impl std::error::Error for Corrupt {}

/// Wraps `payload` in the on-disk frame:
/// `MAGIC ‖ schema:u32 ‖ len:u64 ‖ fnv64(payload):u64 ‖ payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the frame and returns the payload slice.
///
/// # Errors
///
/// [`Corrupt`] on bad magic, schema mismatch, truncation, trailing bytes,
/// or checksum failure.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], Corrupt> {
    if bytes.len() < 24 || bytes[0..4] != MAGIC {
        return Err(Corrupt);
    }
    let schema = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if schema != SCHEMA {
        return Err(Corrupt);
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let sum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload.len() as u64 != len || fnv64(payload) != sum {
        return Err(Corrupt);
    }
    Ok(payload)
}

/// An append-only byte buffer with typed put methods.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, yielding the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a [`Pointee`] tag.
    pub fn put_pointee(&mut self, p: Pointee) {
        self.put_u8(match p {
            Pointee::I8 => 0,
            Pointee::I16 => 1,
            Pointee::I32 => 2,
            Pointee::I64 => 3,
            Pointee::F32 => 4,
            Pointee::F64 => 5,
            Pointee::V128 => 6,
            Pointee::Ptr => 7,
        });
    }

    /// Appends a [`Ty`].
    pub fn put_ty(&mut self, t: Ty) {
        match t {
            Ty::Void => self.put_u8(0),
            Ty::I1 => self.put_u8(1),
            Ty::I8 => self.put_u8(2),
            Ty::I16 => self.put_u8(3),
            Ty::I32 => self.put_u8(4),
            Ty::I64 => self.put_u8(5),
            Ty::F32 => self.put_u8(6),
            Ty::F64 => self.put_u8(7),
            Ty::V2F64 => self.put_u8(8),
            Ty::V4F32 => self.put_u8(9),
            Ty::V2I64 => self.put_u8(10),
            Ty::V4I32 => self.put_u8(11),
            Ty::Ptr(p) => {
                self.put_u8(12);
                self.put_pointee(p);
            }
        }
    }

    /// Appends an [`Operand`].
    pub fn put_operand(&mut self, op: &Operand) {
        match op {
            Operand::Inst(id) => {
                self.put_u8(0);
                self.put_u32(id.0);
            }
            Operand::Param(i) => {
                self.put_u8(1);
                self.put_u32(*i);
            }
            Operand::ConstInt { ty, val } => {
                self.put_u8(2);
                self.put_ty(*ty);
                self.put_u64(*val);
            }
            Operand::ConstF32(bits) => {
                self.put_u8(3);
                self.put_u32(*bits);
            }
            Operand::ConstF64(bits) => {
                self.put_u8(4);
                self.put_u64(*bits);
            }
            Operand::Global(id) => {
                self.put_u8(5);
                self.put_u32(id.0);
            }
            Operand::Func(id) => {
                self.put_u8(6);
                self.put_u32(id.0);
            }
            Operand::Undef(ty) => {
                self.put_u8(7);
                self.put_ty(*ty);
            }
        }
    }

    /// Appends a [`Callee`].
    pub fn put_callee(&mut self, c: &Callee) {
        match c {
            Callee::Func(id) => {
                self.put_u8(0);
                self.put_u32(id.0);
            }
            Callee::Extern(id) => {
                self.put_u8(1);
                self.put_u32(id.0);
            }
            Callee::Indirect(op) => {
                self.put_u8(2);
                self.put_operand(op);
            }
        }
    }

    /// Appends an [`InstKind`].
    pub fn put_inst_kind(&mut self, k: &InstKind) {
        match k {
            InstKind::Bin { op, lhs, rhs } => {
                self.put_u8(0);
                self.put_u8(bin_op_tag(*op));
                self.put_operand(lhs);
                self.put_operand(rhs);
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                self.put_u8(1);
                self.put_u8(ipred_tag(*pred));
                self.put_operand(lhs);
                self.put_operand(rhs);
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                self.put_u8(2);
                self.put_u8(fpred_tag(*pred));
                self.put_operand(lhs);
                self.put_operand(rhs);
            }
            InstKind::Load { ptr, order } => {
                self.put_u8(3);
                self.put_operand(ptr);
                self.put_u8(order_tag(*order));
            }
            InstKind::Store { ptr, val, order } => {
                self.put_u8(4);
                self.put_operand(ptr);
                self.put_operand(val);
                self.put_u8(order_tag(*order));
            }
            InstKind::Fence { kind } => {
                self.put_u8(5);
                self.put_u8(fence_tag(*kind));
            }
            InstKind::AtomicRmw { op, ptr, val } => {
                self.put_u8(6);
                self.put_u8(rmw_tag(*op));
                self.put_operand(ptr);
                self.put_operand(val);
            }
            InstKind::CmpXchg { ptr, expected, new } => {
                self.put_u8(7);
                self.put_operand(ptr);
                self.put_operand(expected);
                self.put_operand(new);
            }
            InstKind::Alloca { size } => {
                self.put_u8(8);
                self.put_u64(*size);
            }
            InstKind::Gep {
                base,
                offset,
                elem_size,
            } => {
                self.put_u8(9);
                self.put_operand(base);
                self.put_operand(offset);
                self.put_u64(*elem_size);
            }
            InstKind::Cast { op, val } => {
                self.put_u8(10);
                self.put_u8(cast_tag(*op));
                self.put_operand(val);
            }
            InstKind::Select {
                cond,
                if_true,
                if_false,
            } => {
                self.put_u8(11);
                self.put_operand(cond);
                self.put_operand(if_true);
                self.put_operand(if_false);
            }
            InstKind::Call { callee, args } => {
                self.put_u8(12);
                self.put_callee(callee);
                self.put_u64(args.len() as u64);
                for a in args {
                    self.put_operand(a);
                }
            }
            InstKind::Phi { incoming } => {
                self.put_u8(13);
                self.put_u64(incoming.len() as u64);
                for (b, v) in incoming {
                    self.put_u32(b.0);
                    self.put_operand(v);
                }
            }
            InstKind::ExtractElement { vec, idx } => {
                self.put_u8(14);
                self.put_operand(vec);
                self.put_u32(*idx);
            }
            InstKind::InsertElement { vec, elt, idx } => {
                self.put_u8(15);
                self.put_operand(vec);
                self.put_operand(elt);
                self.put_u32(*idx);
            }
        }
    }

    /// Appends a [`Terminator`].
    pub fn put_term(&mut self, t: &Terminator) {
        match t {
            Terminator::Br { dest } => {
                self.put_u8(0);
                self.put_u32(dest.0);
            }
            Terminator::CondBr {
                cond,
                if_true,
                if_false,
            } => {
                self.put_u8(1);
                self.put_operand(cond);
                self.put_u32(if_true.0);
                self.put_u32(if_false.0);
            }
            Terminator::Ret { val } => {
                self.put_u8(2);
                match val {
                    None => self.put_u8(0),
                    Some(v) => {
                        self.put_u8(1);
                        self.put_operand(v);
                    }
                }
            }
            Terminator::Unreachable => self.put_u8(3),
        }
    }

    /// Appends a whole [`Function`].
    pub fn put_function(&mut self, f: &Function) {
        self.put_str(&f.name);
        self.put_u64(f.params.len() as u64);
        for p in &f.params {
            self.put_ty(*p);
        }
        self.put_ty(f.ret);
        self.put_u64(f.insts.len() as u64);
        for inst in &f.insts {
            self.put_ty(inst.ty);
            self.put_inst_kind(&inst.kind);
        }
        self.put_u64(f.blocks.len() as u64);
        for b in &f.blocks {
            self.put_u64(b.insts.len() as u64);
            for id in &b.insts {
                self.put_u32(id.0);
            }
            self.put_term(&b.term);
        }
    }

    /// Appends a [`GlobalVar`].
    pub fn put_global(&mut self, g: &GlobalVar) {
        self.put_str(&g.name);
        self.put_u64(g.size);
        self.put_bytes(&g.init);
        self.put_u64(g.addr);
    }

    /// Appends an [`ExternDecl`].
    pub fn put_extern(&mut self, e: &ExternDecl) {
        self.put_str(&e.name);
        self.put_u64(e.params.len() as u64);
        for p in &e.params {
            self.put_ty(*p);
        }
        self.put_ty(e.ret);
        self.put_u8(u8::from(e.variadic));
    }
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::SDiv => 4,
        BinOp::URem => 5,
        BinOp::SRem => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Shl => 10,
        BinOp::LShr => 11,
        BinOp::AShr => 12,
        BinOp::FAdd => 13,
        BinOp::FSub => 14,
        BinOp::FMul => 15,
        BinOp::FDiv => 16,
        BinOp::FMin => 17,
        BinOp::FMax => 18,
    }
}

fn ipred_tag(p: IPred) -> u8 {
    match p {
        IPred::Eq => 0,
        IPred::Ne => 1,
        IPred::Ult => 2,
        IPred::Ule => 3,
        IPred::Ugt => 4,
        IPred::Uge => 5,
        IPred::Slt => 6,
        IPred::Sle => 7,
        IPred::Sgt => 8,
        IPred::Sge => 9,
    }
}

fn fpred_tag(p: FPred) -> u8 {
    match p {
        FPred::Oeq => 0,
        FPred::One => 1,
        FPred::Olt => 2,
        FPred::Ole => 3,
        FPred::Ogt => 4,
        FPred::Oge => 5,
        FPred::Une => 6,
        FPred::Uno => 7,
        FPred::Ord => 8,
    }
}

fn order_tag(o: Ordering) -> u8 {
    match o {
        Ordering::NotAtomic => 0,
        Ordering::SeqCst => 1,
    }
}

fn fence_tag(k: FenceKind) -> u8 {
    match k {
        FenceKind::Frm => 0,
        FenceKind::Fww => 1,
        FenceKind::Fsc => 2,
    }
}

fn rmw_tag(op: RmwOp) -> u8 {
    match op {
        RmwOp::Xchg => 0,
        RmwOp::Add => 1,
        RmwOp::Sub => 2,
        RmwOp::And => 3,
        RmwOp::Or => 4,
        RmwOp::Xor => 5,
    }
}

fn cast_tag(op: CastOp) -> u8 {
    match op {
        CastOp::Trunc => 0,
        CastOp::ZExt => 1,
        CastOp::SExt => 2,
        CastOp::FpToSi => 3,
        CastOp::SiToFp => 4,
        CastOp::FpExt => 5,
        CastOp::FpTrunc => 6,
        CastOp::BitCast => 7,
        CastOp::IntToPtr => 8,
        CastOp::PtrToInt => 9,
    }
}

/// A cursor over serialized bytes with typed get methods.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Fails unless every byte has been consumed.
    pub fn expect_eof(&self) -> Result<(), Corrupt> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Corrupt)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Corrupt> {
        let end = self.pos.checked_add(n).ok_or(Corrupt)?;
        if end > self.buf.len() {
            return Err(Corrupt);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, Corrupt> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, Corrupt> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, Corrupt> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length as `usize`, rejecting lengths beyond the remaining
    /// buffer (so corrupt lengths fail fast instead of allocating).
    pub fn get_len(&mut self) -> Result<usize, Corrupt> {
        let n = self.get_u64()?;
        let n = usize::try_from(n).map_err(|_| Corrupt)?;
        // Any legitimate n-element sequence needs at least n bytes.
        if n > self.buf.len() - self.pos {
            return Err(Corrupt);
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], Corrupt> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, Corrupt> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| Corrupt)
    }

    /// Reads a [`Pointee`].
    pub fn get_pointee(&mut self) -> Result<Pointee, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Pointee::I8,
            1 => Pointee::I16,
            2 => Pointee::I32,
            3 => Pointee::I64,
            4 => Pointee::F32,
            5 => Pointee::F64,
            6 => Pointee::V128,
            7 => Pointee::Ptr,
            _ => return Err(Corrupt),
        })
    }

    /// Reads a [`Ty`].
    pub fn get_ty(&mut self) -> Result<Ty, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Ty::Void,
            1 => Ty::I1,
            2 => Ty::I8,
            3 => Ty::I16,
            4 => Ty::I32,
            5 => Ty::I64,
            6 => Ty::F32,
            7 => Ty::F64,
            8 => Ty::V2F64,
            9 => Ty::V4F32,
            10 => Ty::V2I64,
            11 => Ty::V4I32,
            12 => Ty::Ptr(self.get_pointee()?),
            _ => return Err(Corrupt),
        })
    }

    /// Reads an [`Operand`].
    pub fn get_operand(&mut self) -> Result<Operand, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Operand::Inst(InstId(self.get_u32()?)),
            1 => Operand::Param(self.get_u32()?),
            2 => Operand::ConstInt {
                ty: self.get_ty()?,
                val: self.get_u64()?,
            },
            3 => Operand::ConstF32(self.get_u32()?),
            4 => Operand::ConstF64(self.get_u64()?),
            5 => Operand::Global(GlobalId(self.get_u32()?)),
            6 => Operand::Func(FuncId(self.get_u32()?)),
            7 => Operand::Undef(self.get_ty()?),
            _ => return Err(Corrupt),
        })
    }

    /// Reads a [`Callee`].
    pub fn get_callee(&mut self) -> Result<Callee, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Callee::Func(FuncId(self.get_u32()?)),
            1 => Callee::Extern(ExternId(self.get_u32()?)),
            2 => Callee::Indirect(self.get_operand()?),
            _ => return Err(Corrupt),
        })
    }

    /// Reads an [`InstKind`].
    pub fn get_inst_kind(&mut self) -> Result<InstKind, Corrupt> {
        Ok(match self.get_u8()? {
            0 => InstKind::Bin {
                op: self.get_bin_op()?,
                lhs: self.get_operand()?,
                rhs: self.get_operand()?,
            },
            1 => InstKind::ICmp {
                pred: self.get_ipred()?,
                lhs: self.get_operand()?,
                rhs: self.get_operand()?,
            },
            2 => InstKind::FCmp {
                pred: self.get_fpred()?,
                lhs: self.get_operand()?,
                rhs: self.get_operand()?,
            },
            3 => InstKind::Load {
                ptr: self.get_operand()?,
                order: self.get_order()?,
            },
            4 => InstKind::Store {
                ptr: self.get_operand()?,
                val: self.get_operand()?,
                order: self.get_order()?,
            },
            5 => InstKind::Fence {
                kind: self.get_fence()?,
            },
            6 => InstKind::AtomicRmw {
                op: self.get_rmw()?,
                ptr: self.get_operand()?,
                val: self.get_operand()?,
            },
            7 => InstKind::CmpXchg {
                ptr: self.get_operand()?,
                expected: self.get_operand()?,
                new: self.get_operand()?,
            },
            8 => InstKind::Alloca {
                size: self.get_u64()?,
            },
            9 => InstKind::Gep {
                base: self.get_operand()?,
                offset: self.get_operand()?,
                elem_size: self.get_u64()?,
            },
            10 => InstKind::Cast {
                op: self.get_cast()?,
                val: self.get_operand()?,
            },
            11 => InstKind::Select {
                cond: self.get_operand()?,
                if_true: self.get_operand()?,
                if_false: self.get_operand()?,
            },
            12 => {
                let callee = self.get_callee()?;
                let n = self.get_len()?;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.get_operand()?);
                }
                InstKind::Call { callee, args }
            }
            13 => {
                let n = self.get_len()?;
                let mut incoming = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = BlockId(self.get_u32()?);
                    incoming.push((b, self.get_operand()?));
                }
                InstKind::Phi { incoming }
            }
            14 => InstKind::ExtractElement {
                vec: self.get_operand()?,
                idx: self.get_u32()?,
            },
            15 => InstKind::InsertElement {
                vec: self.get_operand()?,
                elt: self.get_operand()?,
                idx: self.get_u32()?,
            },
            _ => return Err(Corrupt),
        })
    }

    /// Reads a [`Terminator`].
    pub fn get_term(&mut self) -> Result<Terminator, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Terminator::Br {
                dest: BlockId(self.get_u32()?),
            },
            1 => Terminator::CondBr {
                cond: self.get_operand()?,
                if_true: BlockId(self.get_u32()?),
                if_false: BlockId(self.get_u32()?),
            },
            2 => Terminator::Ret {
                val: match self.get_u8()? {
                    0 => None,
                    1 => Some(self.get_operand()?),
                    _ => return Err(Corrupt),
                },
            },
            3 => Terminator::Unreachable,
            _ => return Err(Corrupt),
        })
    }

    /// Reads a whole [`Function`].
    pub fn get_function(&mut self) -> Result<Function, Corrupt> {
        let name = self.get_str()?;
        let nparams = self.get_len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(self.get_ty()?);
        }
        let ret = self.get_ty()?;
        let ninsts = self.get_len()?;
        let mut insts = Vec::with_capacity(ninsts);
        for _ in 0..ninsts {
            let ty = self.get_ty()?;
            let kind = self.get_inst_kind()?;
            insts.push(Inst { ty, kind });
        }
        let nblocks = self.get_len()?;
        let mut blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            let nids = self.get_len()?;
            let mut ids = Vec::with_capacity(nids);
            for _ in 0..nids {
                let id = self.get_u32()?;
                if id as usize >= insts.len() {
                    return Err(Corrupt);
                }
                ids.push(InstId(id));
            }
            let term = self.get_term()?;
            blocks.push(Block { insts: ids, term });
        }
        if blocks.is_empty() {
            return Err(Corrupt);
        }
        let mut f = Function::new(&name, params, ret);
        f.insts = insts;
        f.blocks = blocks;
        Ok(f)
    }

    /// Reads a [`GlobalVar`].
    pub fn get_global(&mut self) -> Result<GlobalVar, Corrupt> {
        Ok(GlobalVar {
            name: self.get_str()?,
            size: self.get_u64()?,
            init: self.get_bytes()?.to_vec(),
            addr: self.get_u64()?,
        })
    }

    /// Reads an [`ExternDecl`].
    pub fn get_extern(&mut self) -> Result<ExternDecl, Corrupt> {
        let name = self.get_str()?;
        let nparams = self.get_len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(self.get_ty()?);
        }
        let ret = self.get_ty()?;
        let variadic = match self.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(Corrupt),
        };
        Ok(ExternDecl {
            name,
            params,
            ret,
            variadic,
        })
    }

    fn get_bin_op(&mut self) -> Result<BinOp, Corrupt> {
        Ok(match self.get_u8()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::UDiv,
            4 => BinOp::SDiv,
            5 => BinOp::URem,
            6 => BinOp::SRem,
            7 => BinOp::And,
            8 => BinOp::Or,
            9 => BinOp::Xor,
            10 => BinOp::Shl,
            11 => BinOp::LShr,
            12 => BinOp::AShr,
            13 => BinOp::FAdd,
            14 => BinOp::FSub,
            15 => BinOp::FMul,
            16 => BinOp::FDiv,
            17 => BinOp::FMin,
            18 => BinOp::FMax,
            _ => return Err(Corrupt),
        })
    }

    fn get_ipred(&mut self) -> Result<IPred, Corrupt> {
        Ok(match self.get_u8()? {
            0 => IPred::Eq,
            1 => IPred::Ne,
            2 => IPred::Ult,
            3 => IPred::Ule,
            4 => IPred::Ugt,
            5 => IPred::Uge,
            6 => IPred::Slt,
            7 => IPred::Sle,
            8 => IPred::Sgt,
            9 => IPred::Sge,
            _ => return Err(Corrupt),
        })
    }

    fn get_fpred(&mut self) -> Result<FPred, Corrupt> {
        Ok(match self.get_u8()? {
            0 => FPred::Oeq,
            1 => FPred::One,
            2 => FPred::Olt,
            3 => FPred::Ole,
            4 => FPred::Ogt,
            5 => FPred::Oge,
            6 => FPred::Une,
            7 => FPred::Uno,
            8 => FPred::Ord,
            _ => return Err(Corrupt),
        })
    }

    fn get_order(&mut self) -> Result<Ordering, Corrupt> {
        Ok(match self.get_u8()? {
            0 => Ordering::NotAtomic,
            1 => Ordering::SeqCst,
            _ => return Err(Corrupt),
        })
    }

    fn get_fence(&mut self) -> Result<FenceKind, Corrupt> {
        Ok(match self.get_u8()? {
            0 => FenceKind::Frm,
            1 => FenceKind::Fww,
            2 => FenceKind::Fsc,
            _ => return Err(Corrupt),
        })
    }

    fn get_rmw(&mut self) -> Result<RmwOp, Corrupt> {
        Ok(match self.get_u8()? {
            0 => RmwOp::Xchg,
            1 => RmwOp::Add,
            2 => RmwOp::Sub,
            3 => RmwOp::And,
            4 => RmwOp::Or,
            5 => RmwOp::Xor,
            _ => return Err(Corrupt),
        })
    }

    fn get_cast(&mut self) -> Result<CastOp, Corrupt> {
        Ok(match self.get_u8()? {
            0 => CastOp::Trunc,
            1 => CastOp::ZExt,
            2 => CastOp::SExt,
            3 => CastOp::FpToSi,
            4 => CastOp::SiToFp,
            5 => CastOp::FpExt,
            6 => CastOp::FpTrunc,
            7 => CastOp::BitCast,
            8 => CastOp::IntToPtr,
            9 => CastOp::PtrToInt,
            _ => return Err(Corrupt),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_lir::types::Pointee;

    /// A function exercising every instruction kind, terminator, operand
    /// shape, and type variant.
    fn kitchen_sink() -> Function {
        let mut f = Function::new(
            "sink",
            vec![Ty::I64, Ty::Ptr(Pointee::I64), Ty::F64, Ty::V4F32],
            Ty::I64,
        );
        let e = f.entry();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let add = f.push(
            e,
            Ty::I64,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: Operand::Param(0),
                rhs: Operand::i64(-7),
            },
        );
        let cmp = f.push(
            e,
            Ty::I1,
            InstKind::ICmp {
                pred: IPred::Slt,
                lhs: Operand::Inst(add),
                rhs: Operand::i64(100),
            },
        );
        f.push(
            e,
            Ty::I1,
            InstKind::FCmp {
                pred: FPred::Une,
                lhs: Operand::Param(2),
                rhs: Operand::f64(2.5),
            },
        );
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Inst(cmp),
                if_true: b1,
                if_false: b2,
            },
        );
        let ld = f.push(
            b1,
            Ty::I64,
            InstKind::Load {
                ptr: Operand::Param(1),
                order: Ordering::SeqCst,
            },
        );
        f.push(
            b1,
            Ty::Void,
            InstKind::Store {
                ptr: Operand::Param(1),
                val: Operand::Inst(ld),
                order: Ordering::NotAtomic,
            },
        );
        f.push(
            b1,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fww,
            },
        );
        f.push(
            b1,
            Ty::I64,
            InstKind::AtomicRmw {
                op: RmwOp::Xchg,
                ptr: Operand::Param(1),
                val: Operand::i64(1),
            },
        );
        f.push(
            b1,
            Ty::I64,
            InstKind::CmpXchg {
                ptr: Operand::Param(1),
                expected: Operand::i64(0),
                new: Operand::i64(1),
            },
        );
        let al = f.push(b1, Ty::Ptr(Pointee::I8), InstKind::Alloca { size: 16 });
        f.push(
            b1,
            Ty::Ptr(Pointee::I8),
            InstKind::Gep {
                base: Operand::Inst(al),
                offset: Operand::i64(2),
                elem_size: 8,
            },
        );
        f.push(
            b1,
            Ty::Ptr(Pointee::I64),
            InstKind::Cast {
                op: CastOp::IntToPtr,
                val: Operand::Param(0),
            },
        );
        f.push(
            b1,
            Ty::I64,
            InstKind::Select {
                cond: Operand::bool(true),
                if_true: Operand::Inst(ld),
                if_false: Operand::Undef(Ty::I64),
            },
        );
        f.push(
            b1,
            Ty::I64,
            InstKind::Call {
                callee: Callee::Func(FuncId(0)),
                args: vec![Operand::Global(GlobalId(1)), Operand::Func(FuncId(0))],
            },
        );
        f.push(
            b1,
            Ty::Void,
            InstKind::Call {
                callee: Callee::Indirect(Operand::Param(0)),
                args: vec![],
            },
        );
        f.push(
            b1,
            Ty::F32,
            InstKind::ExtractElement {
                vec: Operand::Param(3),
                idx: 2,
            },
        );
        f.push(
            b1,
            Ty::V4F32,
            InstKind::InsertElement {
                vec: Operand::Param(3),
                elt: Operand::f32(1.5),
                idx: 1,
            },
        );
        f.set_term(b1, Terminator::Br { dest: b2 });
        let phi = f.push(
            b2,
            Ty::I64,
            InstKind::Phi {
                incoming: vec![(e, Operand::Inst(add)), (b1, Operand::Inst(ld))],
            },
        );
        f.set_term(
            b2,
            Terminator::Ret {
                val: Some(Operand::Inst(phi)),
            },
        );
        f
    }

    #[test]
    fn function_roundtrip_is_identity() {
        let f = kitchen_sink();
        let mut w = Writer::new();
        w.put_function(&f);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let g = r.get_function().unwrap();
        r.expect_eof().unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn global_and_extern_roundtrip() {
        let g = GlobalVar {
            name: "counter".into(),
            size: 8,
            init: vec![1, 2, 3],
            addr: 0x60_0000,
        };
        let e = ExternDecl {
            name: "printf".into(),
            params: vec![Ty::Ptr(Pointee::I8)],
            ret: Ty::I32,
            variadic: true,
        };
        let mut w = Writer::new();
        w.put_global(&g);
        w.put_extern(&e);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_global().unwrap(), g);
        assert_eq!(r.get_extern().unwrap(), e);
        r.expect_eof().unwrap();
    }

    #[test]
    fn frame_roundtrip_and_corruption() {
        let payload = b"hello cache".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);

        // Truncation at every length is a clean Corrupt, never a panic.
        for cut in 0..framed.len() {
            assert_eq!(unframe(&framed[..cut]), Err(Corrupt));
        }
        // A single flipped bit anywhere breaks magic, header, or checksum.
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert_eq!(unframe(&bad), Err(Corrupt), "flip at byte {i} accepted");
        }
        // Trailing garbage is rejected too.
        let mut long = framed.clone();
        long.push(0);
        assert_eq!(unframe(&long), Err(Corrupt));
    }

    #[test]
    fn truncated_function_bytes_are_corrupt_not_panic() {
        let f = kitchen_sink();
        let mut w = Writer::new();
        w.put_function(&f);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let res = r.get_function().and_then(|g| {
                r.expect_eof()?;
                Ok(g)
            });
            assert!(res.is_err(), "truncation at {cut} decoded successfully");
        }
    }

    #[test]
    fn out_of_range_block_inst_id_is_corrupt() {
        let mut f = Function::new("t", vec![], Ty::Void);
        let e = f.entry();
        f.push(
            e,
            Ty::Void,
            InstKind::Fence {
                kind: FenceKind::Fsc,
            },
        );
        f.set_term(e, Terminator::Ret { val: None });
        let mut w = Writer::new();
        w.put_function(&f);
        let mut bytes = w.finish();
        // The single block references InstId(0); find its u32 slot by
        // re-encoding with a poisoned id and diffing.
        let mut w2 = Writer::new();
        f.blocks[0].insts[0] = InstId(7);
        w2.put_function(&f);
        let poisoned = w2.finish();
        let diff = bytes
            .iter()
            .zip(poisoned.iter())
            .position(|(a, b)| a != b)
            .unwrap();
        bytes[diff] = 7;
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_function().err(), Some(Corrupt));
    }
}
