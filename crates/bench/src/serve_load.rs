//! Load generator for the `lasagne serve` daemon.
//!
//! Replays the Phoenix suite against a running daemon at a configurable
//! concurrency and reports per-request latencies, the hot/disk/cold hit
//! split, shed/timeout/error counts, and an order-independent checksum
//! of every assembly response — so two replays (or a replay vs local
//! `lasagne translate` output) can be compared byte-for-byte. Shared by
//! `lasagne serve-bench` and `report -- serve` (BENCH_serve.json).

use std::sync::Mutex;
use std::time::Instant;

use lasagne::serve::client::Client;
use lasagne::serve::wire::{Response, Source};
use lasagne::Version;
use lasagne_cache::fnv64;
use lasagne_phoenix::all_benchmarks;
use lasagne_trace::{lock_clean, Histogram};

/// One replay's shape: where, what, how wide.
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// Daemon address (Unix socket path or TCP `host:port`).
    pub addr: String,
    /// Pipeline configurations requested, one full suite pass per
    /// entry. A benchmark's machine code is the same at every scale, so
    /// the suite has exactly seven distinct binaries — but the content
    /// key hashes the [`Version`] alongside the bytes, so each version
    /// widens the key space: `versions.len() × 7` unique requests per
    /// rep.
    pub versions: Vec<Version>,
    /// Client threads, each with its own connection.
    pub concurrency: usize,
    /// Workload scale the suite is synthesized at. Scale parameterizes
    /// the *workload* (which the daemon never runs), not the binary, so
    /// it does not affect content keys; it is plumbed through so the
    /// summary can record the effective `LASAGNE_BENCH_SCALE`.
    pub scale: usize,
    /// How many times to replay the whole request list.
    pub reps: usize,
    /// `--jobs` forwarded to the server (0 = server default).
    pub jobs: u32,
}

/// One request's outcome.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Client-observed round-trip latency.
    pub nanos: u128,
    /// `Some(source)` for an accepted translation, `None` otherwise.
    pub source: Option<Source>,
    /// Outcome bucket: `ok`, `shed`, `timeout`, or `error`.
    pub status: &'static str,
}

/// Aggregated outcome of one replay.
#[derive(Debug, Clone, Default)]
pub struct ReplaySummary {
    /// Per-request outcomes in request order (stable across runs).
    pub samples: Vec<Sample>,
    /// Wall time of the whole replay.
    pub wall_nanos: u128,
    /// Accepted-response hit split `[hot, coalesced, disk, cold]`.
    pub hits: [u64; 4],
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests that hit the server-side deadline.
    pub timeouts: u64,
    /// Failed requests (translation or transport).
    pub errors: u64,
    /// Order-independent FNV-1a fold over `(request index, assembly)`
    /// of every accepted response; two replays of the same list match
    /// iff every response's bytes match.
    pub checksum: u64,
}

impl ReplaySummary {
    /// Sorted latencies of accepted (Ok) responses, in nanoseconds.
    pub fn ok_latencies(&self) -> Vec<u128> {
        let mut v: Vec<u128> = self
            .samples
            .iter()
            .filter(|s| s.status == "ok")
            .map(|s| s.nanos)
            .collect();
        v.sort_unstable();
        v
    }

    /// Client-observed Ok latencies folded into a histogram with the
    /// server's own bucket bounds ([`lasagne::serve::LATENCY_BOUNDS`]),
    /// so client-side percentiles can be derived by the same
    /// [`Histogram::percentile`] estimator the daemon applies
    /// server-side — one implementation on both ends of the socket,
    /// comparable bucket-for-bucket.
    pub fn ok_histogram(&self) -> Histogram {
        let mut h = Histogram::new(&lasagne::serve::LATENCY_BOUNDS);
        for s in self.samples.iter().filter(|s| s.status == "ok") {
            h.record(u64::try_from(s.nanos).unwrap_or(u64::MAX));
        }
        h
    }

    /// Requests per second over the replay wall time (accepted only).
    pub fn throughput_rps(&self) -> f64 {
        let ok = self.samples.iter().filter(|s| s.status == "ok").count();
        ok as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }
}

/// The `p`-th percentile (0–100) of an ascending latency slice, by the
/// nearest-rank method. Zero for an empty slice.
pub fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays the suite per `opts`. Requests are assigned to client
/// threads round-robin by index, so the assignment (and the summary's
/// request order) is deterministic at any concurrency.
///
/// # Panics
///
/// Panics if a client cannot connect to `opts.addr`.
pub fn replay(opts: &LoadOpts) -> ReplaySummary {
    // Build the deterministic request list once; binaries are reused
    // across reps (same content keys — that is the point).
    let mut images = Vec::new();
    for &version in &opts.versions {
        for b in all_benchmarks(opts.scale) {
            images.push((b.abbrev, version, b.binary));
        }
    }
    let total = images.len() * opts.reps;
    let width = opts.concurrency.max(1);
    let results: Mutex<Vec<Option<Sample>>> = Mutex::new(vec![None; total]);
    let checksum = Mutex::new(0u64);

    let wall = Instant::now();
    std::thread::scope(|s| {
        for worker in 0..width {
            let images = &images;
            let results = &results;
            let checksum = &checksum;
            s.spawn(move || {
                let mut client =
                    Client::connect_with_retry(&opts.addr, std::time::Duration::from_secs(5))
                        .unwrap_or_else(|e| panic!("connect {}: {e}", opts.addr));
                for idx in (worker..total).step_by(width) {
                    let (_, version, bin) = &images[idx % images.len()];
                    let t0 = Instant::now();
                    let resp = client.translate(bin, *version, opts.jobs);
                    let nanos = t0.elapsed().as_nanos();
                    let sample = match resp {
                        Ok(Response::Ok { source, asm, .. }) => {
                            // Fold (index, bytes) commutatively so the
                            // checksum is independent of completion
                            // order but pinned to request identity.
                            let h =
                                fnv64(&[&(idx as u64).to_le_bytes()[..], asm.as_bytes()].concat());
                            *lock_clean(checksum) ^= h;
                            Sample {
                                nanos,
                                source: Some(source),
                                status: "ok",
                            }
                        }
                        Ok(Response::Shed) => Sample {
                            nanos,
                            source: None,
                            status: "shed",
                        },
                        Ok(Response::Timeout) => Sample {
                            nanos,
                            source: None,
                            status: "timeout",
                        },
                        Ok(_) | Err(_) => Sample {
                            nanos,
                            source: None,
                            status: "error",
                        },
                    };
                    lock_clean(results)[idx] = Some(sample);
                }
            });
        }
    });
    let wall_nanos = wall.elapsed().as_nanos();

    let samples: Vec<Sample> = lock_clean(&results)
        .iter()
        .map(|s| s.clone().expect("request left unserved"))
        .collect();
    let mut summary = ReplaySummary {
        wall_nanos,
        checksum: *lock_clean(&checksum),
        ..Default::default()
    };
    for s in &samples {
        match (s.status, s.source) {
            (_, Some(Source::Hot)) => summary.hits[0] += 1,
            (_, Some(Source::Coalesced)) => summary.hits[1] += 1,
            (_, Some(Source::Disk)) => summary.hits[2] += 1,
            (_, Some(Source::Cold)) => summary.hits[3] += 1,
            ("shed", None) => summary.shed += 1,
            ("timeout", None) => summary.timeouts += 1,
            (_, None) => summary.errors += 1,
        }
    }
    summary.samples = samples;
    summary
}
