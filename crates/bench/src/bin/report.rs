//! Regenerates every table and figure of the paper's evaluation (§9).
//!
//! Usage: `cargo run -p lasagne-bench --bin report [--release] -- [section]`
//! where `section` ∈ `table1 | fig12 | fig13 | fig14 | fig15 | fig16 |
//! fig17 | litmus | ablations | timings | fences | bench | diff | serve |
//! all` (default `all`). The `bench`, `diff`, and `serve` sections are
//! not part of `all`: `bench` re-translates the suite several times at
//! `--jobs 1` and `--jobs N` and writes the `BENCH_pipeline.json`
//! perf-trajectory artifact (see [`bench()`]); `diff` runs the three-way
//! differential sweep and writes `BENCH_diff.json` (see [`diff()`]);
//! `serve` hosts in-process `lasagne serve` daemons, replays the suite
//! through the load generator across cold / warm-disk / warm-hot
//! phases, and writes `BENCH_serve.json` (see [`serve()`]).
//!
//! Figures 12/13/14/16 and the timings section all consume the same four
//! translations per benchmark (one per [`Version`]); a memoizing [`Sweep`]
//! guarantees each benchmark is translated exactly once per version no
//! matter which sections run. Set `LASAGNE_CACHE_DIR` to additionally back
//! those translations with the on-disk content-addressed cache, making
//! repeat report runs warm (the cache counters appear in the timings
//! section).

use std::rc::Rc;

use lasagne::{Pipeline, PipelineReport, Translation, Version};
use lasagne_bench::{
    gmean, measure_fence_only, measure_native, measure_version_cached, measure_version_traced,
    FenceOnly, RunMetrics,
};
use lasagne_phoenix::{all_benchmarks, Benchmark};
use lasagne_trace::TraceCtx;

// Raised from 192 once the content-addressed cache and the fused opt
// schedule absorbed the extra translations of the 7-benchmark suite.
const DEFAULT_SCALE: usize = 256;

/// Workload scale for every section: `LASAGNE_BENCH_SCALE` when set (the
/// CI bench gate pins 192 so its numbers are comparable with the
/// committed `BENCH_pipeline.json` trajectory), else [`DEFAULT_SCALE`].
fn scale() -> usize {
    std::env::var("LASAGNE_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Worker threads for the instrumented translations (the output is
/// byte-identical for any value; only the timings section's wall-clock
/// shares depend on it).
const JOBS: usize = 4;

/// One benchmark translated and run under one [`Version`].
struct Measured {
    t: Translation,
    m: RunMetrics,
    report: PipelineReport,
}

/// Lazily translates each benchmark at most once per [`Version`] and
/// shares the result across every section that asks for it.
struct Sweep {
    benches: Vec<Benchmark>,
    cache_dir: Option<std::path::PathBuf>,
    memo: Vec<[Option<Rc<Measured>>; 4]>,
}

impl Sweep {
    fn new(benches: Vec<Benchmark>) -> Sweep {
        let cache_dir = std::env::var_os("LASAGNE_CACHE_DIR")
            .filter(|s| !s.is_empty())
            .map(std::path::PathBuf::from);
        let memo = benches.iter().map(|_| [None, None, None, None]).collect();
        Sweep {
            benches,
            cache_dir,
            memo,
        }
    }

    fn measured(&mut self, bi: usize, v: Version) -> Rc<Measured> {
        let vi = Version::ALL.iter().position(|x| *x == v).unwrap();
        if let Some(m) = &self.memo[bi][vi] {
            return Rc::clone(m);
        }
        let (t, m, report) =
            measure_version_cached(&self.benches[bi], v, JOBS, self.cache_dir.as_deref());
        let rc = Rc::new(Measured { t, m, report });
        self.memo[bi][vi] = Some(Rc::clone(&rc));
        rc
    }
}

fn main() {
    let section = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let mut sweep = Sweep::new(all_benchmarks(scale()));
    match section.as_str() {
        "table1" => table1(&sweep.benches),
        "fig12" => fig12(&mut sweep),
        "fig13" => fig13(&mut sweep),
        "fig14" => fig14(&mut sweep),
        "fig15" => fig15(&sweep.benches),
        "fig16" => fig16(&mut sweep),
        "fig17" => fig17(),
        "litmus" => litmus(),
        "ablations" => ablations(&sweep.benches),
        "timings" => timings(&mut sweep),
        "fences" => fences(&sweep.benches),
        "bench" => bench(&sweep.benches),
        "diff" => diff(),
        "serve" => serve(),
        "all" => {
            table1(&sweep.benches);
            fig12(&mut sweep);
            fig13(&mut sweep);
            fig14(&mut sweep);
            fig15(&sweep.benches);
            fig16(&mut sweep);
            fig17();
            litmus();
            ablations(&sweep.benches);
            timings(&mut sweep);
            fences(&sweep.benches);
        }
        other => {
            eprintln!(
                "unknown section `{other}`; use \
                 table1|fig12..fig17|litmus|ablations|timings|fences|bench|diff|serve|all"
            );
            std::process::exit(2);
        }
    }
}

fn table1(benches: &[Benchmark]) {
    println!("== Table 1: Phoenix multi-threaded benchmark suite ==");
    println!(
        "{:<20} {:>6} {:>12} {:>14}",
        "Benchmark", "Abbrv", "# Functions", "x86 insts"
    );
    for b in benches {
        let insts: usize = b
            .binary
            .functions
            .iter()
            .map(|f| {
                lasagne_x86::decode_all(b.binary.code_of(f), f.addr)
                    .unwrap()
                    .len()
            })
            .sum();
        println!(
            "{:<20} {:>6} {:>12} {:>14}",
            b.name,
            b.abbrev,
            b.binary.functions.len(),
            insts
        );
    }
    println!();
}

fn fig12(sweep: &mut Sweep) {
    println!("== Figure 12: normalized runtime w.r.t. Native (lower is better) ==");
    println!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Benchmark", "Native", "Lifted", "Opt", "POpt", "PPOpt"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for bi in 0..sweep.benches.len() {
        let native = measure_native(&sweep.benches[bi]).runtime_cycles as f64;
        let mut row = format!("{:<20} {:>9.2}", sweep.benches[bi].name, 1.0);
        for (vi, v) in Version::ALL.iter().enumerate() {
            let m = sweep.measured(bi, *v);
            let norm = m.m.runtime_cycles as f64 / native;
            cols[vi].push(norm);
            row.push_str(&format!(" {norm:>9.2}"));
        }
        println!("{row}");
    }
    println!(
        "{:<20} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        "GMean",
        1.0,
        gmean(&cols[0]),
        gmean(&cols[1]),
        gmean(&cols[2]),
        gmean(&cols[3]),
    );
    println!("(paper: GMean 1.0 / 2.89 / 1.67 / 1.62 / 1.51)\n");
}

fn fig13(sweep: &mut Sweep) {
    println!("== Figure 13: % integer-pointer casts removed by IR refinement ==");
    println!(
        "{:<20} {:>8} {:>8} {:>12}",
        "Benchmark", "before", "after", "removed (%)"
    );
    let mut pcts = Vec::new();
    for bi in 0..sweep.benches.len() {
        let me = sweep.measured(bi, Version::PPOpt);
        let pct = me.t.stats.cast_reduction_pct();
        pcts.push(pct);
        println!(
            "{:<20} {:>8} {:>8} {:>11.1}%",
            sweep.benches[bi].name, me.t.stats.casts_lifted, me.t.stats.casts_final, pct
        );
    }
    println!("{:<20} {:>30.1}%", "GMean", gmean(&pcts));
    println!("(paper: 51.1% average)\n");
}

fn fig14(sweep: &mut Sweep) {
    println!("== Figure 14: % fence reduction vs naive placement ==");
    println!(
        "{:<20} {:>8} {:>10} {:>10}",
        "Benchmark", "naive", "POpt (%)", "PPOpt (%)"
    );
    let mut popt_pcts = Vec::new();
    let mut ppopt_pcts = Vec::new();
    for bi in 0..sweep.benches.len() {
        let tp = sweep.measured(bi, Version::POpt);
        let tpp = sweep.measured(bi, Version::PPOpt);
        popt_pcts.push(tp.t.stats.fence_reduction_pct().max(0.1));
        ppopt_pcts.push(tpp.t.stats.fence_reduction_pct().max(0.1));
        println!(
            "{:<20} {:>8} {:>9.1}% {:>9.1}%",
            sweep.benches[bi].name,
            tp.t.stats.fences_naive,
            tp.t.stats.fence_reduction_pct(),
            tpp.t.stats.fence_reduction_pct()
        );
    }
    println!(
        "{:<20} {:>8} {:>9.1}% {:>9.1}%",
        "GMean",
        "",
        gmean(&popt_pcts),
        gmean(&ppopt_pcts)
    );
    println!("(paper: POpt 6.3%, PPOpt 45.5% average; up to ~65%)\n");
}

fn fig15(benches: &[Benchmark]) {
    println!("== Figure 15: runtime reduction from fence reduction alone ==");
    println!("(unoptimized lifted code; no LLVM-style optimizations applied)");
    println!("{:<20} {:>10} {:>10}", "Benchmark", "POpt (%)", "PPOpt (%)");
    let mut p = Vec::new();
    let mut pp = Vec::new();
    for b in benches {
        let base = measure_fence_only(b, &FenceOnly::Baseline).runtime_cycles as f64;
        let merged = measure_fence_only(b, &FenceOnly::MergeOnly).runtime_cycles as f64;
        let refined = measure_fence_only(b, &FenceOnly::RefineAndMerge).runtime_cycles as f64;
        let rp = 100.0 * (base - merged) / base;
        let rpp = 100.0 * (base - refined) / base;
        p.push(rp.max(0.01));
        pp.push(rpp.max(0.01));
        println!("{:<20} {:>9.2}% {:>9.2}%", b.name, rp, rpp);
    }
    println!("{:<20} {:>9.2}% {:>9.2}%", "GMean", gmean(&p), gmean(&pp));
    println!("(paper: POpt 2.65%, PPOpt 5.63% average)\n");
}

fn fig16(sweep: &mut Sweep) {
    println!("== Figure 16: code size increase vs native (LIR instructions) ==");
    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "Benchmark", "native", "Lifted", "Opt", "POpt", "PPOpt"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for bi in 0..sweep.benches.len() {
        let native = sweep.benches[bi].native.inst_count() as f64;
        let mut row = format!("{:<20} {:>8}", sweep.benches[bi].name, native);
        for (vi, v) in Version::ALL.iter().enumerate() {
            let me = sweep.measured(bi, *v);
            let pct = 100.0 * (me.t.stats.insts_final as f64 / native - 1.0);
            cols[vi].push((pct / 100.0 + 1.0).max(0.01));
            row.push_str(&format!(" {pct:>8.1}%"));
        }
        println!("{row}");
    }
    println!(
        "{:<20} {:>8} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
        "GMean",
        "",
        (gmean(&cols[0]) - 1.0) * 100.0,
        (gmean(&cols[1]) - 1.0) * 100.0,
        (gmean(&cols[2]) - 1.0) * 100.0,
        (gmean(&cols[3]) - 1.0) * 100.0,
    );
    println!("(paper: Lifted 337.8%, Opt 85.7%, POpt 84.4%, PPOpt 68.2% average)\n");
}

fn fig17() {
    println!("== Figure 17: per-pass code reduction on kmeans (each in isolation) ==");
    let b = all_benchmarks(scale())
        .into_iter()
        .find(|b| b.abbrev == "KM")
        .unwrap();
    // Prepare: lift + refinement + optimized fence placement (the paper's
    // baseline for this figure).
    let mut base = lasagne_lifter::lift_binary(&b.binary).unwrap();
    lasagne_refine::refine_module(&mut base);
    lasagne_fences::place_fences_module(&mut base, lasagne_fences::Strategy::StackAware);
    lasagne_fences::merge_fences_module(&mut base);
    let before = base.inst_count() as f64;
    println!("{:<14} {:>16}", "pass", "reduction (%)");
    for pass in lasagne_opt::PassKind::ALL {
        let mut m = base.clone();
        lasagne_opt::run_pass(pass, &mut m);
        // A pass may orphan arena entries; count live instructions.
        let after = m.inst_count() as f64;
        let pct = 100.0 * (before - after) / before;
        println!("{:<14} {:>15.1}%", pass.name(), pct);
    }
    println!("(paper: instcombine/dce/adce/licm are the top reducers, jointly ≥35%)\n");
}

/// Design-choice ablations called out in DESIGN.md: placement strategy
/// (truly-naive vs stack-aware) and merging on/off, as static fence counts.
fn ablations(benches: &[Benchmark]) {
    println!("== Ablations: placement strategy × merging (static fences) ==");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "Benchmark", "naive", "stack-aware", "sa+merge", "refine+sa+merge"
    );
    for b in benches {
        let lifted = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let count = |m: &lasagne_lir::Module| {
            let (a, b, c) = lasagne_fences::count_fences(m);
            a + b + c
        };
        let mut naive = lifted.clone();
        lasagne_fences::place_fences_module(&mut naive, lasagne_fences::Strategy::Naive);
        let mut sa = lifted.clone();
        lasagne_fences::place_fences_module(&mut sa, lasagne_fences::Strategy::StackAware);
        let mut sam = sa.clone();
        lasagne_fences::merge_fences_module(&mut sam);
        let mut rsam = lifted.clone();
        lasagne_refine::refine_module(&mut rsam);
        lasagne_fences::place_fences_module(&mut rsam, lasagne_fences::Strategy::StackAware);
        lasagne_fences::merge_fences_module(&mut rsam);
        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            b.name,
            count(&naive),
            count(&sa),
            count(&sam),
            count(&rsam)
        );
    }
    println!();

    println!("== Ablation: frame-slot peephole (backend store-to-load forwarding) ==");
    println!(
        "{:<20} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "Benchmark", "raw insts", "peep insts", "removed%", "raw cycles", "peep cycles"
    );
    for b in benches {
        let t = lasagne::translate(&b.binary, Version::PPOpt).unwrap();
        let raw = lasagne_armgen::lower_module_raw(&t.module);
        let mut peep = raw.clone();
        lasagne_armgen::peephole_module(&mut peep);
        let raw_cycles = lasagne_bench::run_arm(&raw, &b.workload).runtime_cycles;
        let peep_cycles = lasagne_bench::run_arm(&peep, &b.workload).runtime_cycles;
        println!(
            "{:<20} {:>12} {:>12} {:>9.1}% {:>14} {:>14}",
            b.name,
            raw.inst_count(),
            peep.inst_count(),
            100.0 * (raw.inst_count() - peep.inst_count()) as f64 / raw.inst_count() as f64,
            raw_cycles,
            peep_cycles
        );
    }
    println!();
}

/// Translation-time breakdown from the instrumented pipeline: per-stage
/// share of PPOpt translation wall time, with 4 worker threads, plus the
/// translation-cache counters when `LASAGNE_CACHE_DIR` is set.
fn timings(sweep: &mut Sweep) {
    println!("== Translation timings: per-stage share of PPOpt pipeline (jobs=4) ==");
    println!(
        "{:<20} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}  {}",
        "Benchmark", "total ms", "lift", "refine", "fences", "merge", "opt", "armgen", "cache"
    );
    for bi in 0..sweep.benches.len() {
        let me = sweep.measured(bi, Version::PPOpt);
        let report = &me.report;
        let total = report.total_nanos.max(1) as f64;
        let mut row = format!(
            "{:<20} {:>9.2}",
            sweep.benches[bi].name,
            report.total_nanos as f64 / 1e6
        );
        for st in &report.stages {
            row.push_str(&format!(" {:>7.1}%", 100.0 * st.nanos as f64 / total));
        }
        match &report.cache {
            None => row.push_str("  off"),
            Some(c) => row.push_str(&format!(
                "  {} ({} hit, {} miss, {} written)",
                if c.warm { "warm" } else { "cold" },
                c.hits,
                c.misses,
                c.writes
            )),
        }
        println!("{row}");
    }
    println!("(percentages need not sum to 100: stages overlap across worker threads)\n");
}

/// Acceptance band for the suite-wide mean PPOpt fence reduction, pinned
/// to what this reproduction currently measures at default scale over the full
/// seven-benchmark suite (50.3% gmean with word_count and pca included,
/// vs 50.2% over the original five; the paper's Figure 14 reports a
/// 45.5% average, inside the band). A placement, merging, or refinement
/// regression moves the mean out of the band and fails this section.
const FENCE_REDUCTION_BAND: (f64, f64) = (45.0, 55.5);

/// Fence-reduction section driven by the tracing layer's provenance
/// counters instead of `TranslationStats` — the two are asserted equal
/// per benchmark, so this doubles as an end-to-end check that the
/// counters mean what they claim.
fn fences(benches: &[Benchmark]) {
    println!("== Fence provenance: reduction from placement counters (PPOpt) ==");
    println!(
        "{:<20} {:>7} {:>6} {:>6} {:>7} {:>7} {:>6} {:>11}",
        "Benchmark", "naive", "frm", "fww", "elided", "merged", "final", "reduction"
    );
    let mut pcts = Vec::new();
    for b in benches {
        let (t, _, report) =
            measure_version_traced(b, Version::PPOpt, JOBS, TraceCtx::collecting());
        let m = report.metrics.expect("traced run carries metrics");
        let frm = m.counter("fences.placed.frm");
        let fww = m.counter("fences.placed.fww");
        let elided = m.counter("fences.elided.stack");
        let merged = m.counter("fences.merged");
        let naive = m.counter("fences.naive");
        assert_eq!((frm + fww) as usize, t.stats.fences_placed, "{}", b.name);
        assert_eq!(naive as usize, t.stats.fences_naive, "{}", b.name);
        assert_eq!(
            (frm + fww - merged) as usize,
            t.stats.fences_final,
            "{}",
            b.name
        );
        let fin = frm + fww - merged;
        let pct = 100.0 * (naive - fin) as f64 / naive.max(1) as f64;
        pcts.push(pct.max(0.1));
        println!(
            "{:<20} {:>7} {:>6} {:>6} {:>7} {:>7} {:>6} {:>10.1}%",
            b.name, naive, frm, fww, elided, merged, fin, pct
        );
    }
    let mean = gmean(&pcts);
    let (lo, hi) = FENCE_REDUCTION_BAND;
    assert!(
        (lo..=hi).contains(&mean),
        "suite mean fence reduction {mean:.1}% left the pinned band {lo:.1}%..{hi:.1}%"
    );
    println!(
        "{:<20} {:>53.1}%  (band {lo:.1}%..{hi:.1}% OK; paper mean 45.5%)\n",
        "GMean", mean
    );
}

/// Repetitions per jobs value in the [`bench()`] section; the
/// minimum-total-wall repetition is kept, which shaves scheduler noise
/// off these millisecond-scale sweeps.
const BENCH_REPS: usize = 5;

/// Pipeline stages in report order (`PipelineReport::stages` always
/// carries all six, in this order).
const STAGE_NAMES: [&str; 6] = ["lift", "refine", "fences", "merge", "opt", "armgen"];

/// Index of the `opt` stage in [`STAGE_NAMES`].
const OPT: usize = 4;

/// Suite aggregates of the pre-fusion build (commit `bd1e36b`: eleven
/// module-wide opt sweeps behind serial barriers, serial `ipsccp`),
/// measured on the same container: scale 192, PPOpt, five demos, best
/// (minimum suite wall) of five repetitions. That build's `--timings`
/// had no per-stage wall field, so its stage walls were taken as the
/// span extents of each stage's track in a `--trace-out` capture — the
/// same strictly-sequential stage regions `wall_nanos` now times
/// directly. Kept in-source so every regenerated `BENCH_pipeline.json`
/// carries the before/after pair the opt-stage trajectory is judged
/// against.
const BASELINE_JSON: &str = concat!(
    "{\"commit\":\"bd1e36b\",\"schedule\":\"serial per-pass sweeps\",",
    "\"method\":\"chrome-trace stage extents, best of 5\",",
    "\"jobs1\":{\"total_nanos\":13319547,\"stage_walls\":{\"lift\":4438842,",
    "\"refine\":1066586,\"fences\":1377840,\"merge\":29925,\"opt\":6934870,",
    "\"armgen\":491092},\"opt_wall_share_pct\":48.4},",
    "\"jobsN\":{\"total_nanos\":25271577,\"stage_walls\":{\"lift\":5878873,",
    "\"refine\":2341743,\"fences\":3397600,\"merge\":38262,\"opt\":14456296,",
    "\"armgen\":497889},\"opt_wall_share_pct\":54.3}}"
);

/// Suite aggregates of the pre-pool build (commit `e979fce`: fused opt
/// rounds and the ipSCCP superstep, but every parallel section still
/// spawned scoped threads and every stage crossed a module-wide
/// barrier), rebuilt and remeasured on the same single-core container as
/// the current numbers — seven benchmarks, scale 192, best of 5. This is
/// the 0.71× jobs=4 pathology (19.2 ms of barrier wait) the persistent
/// pool + per-function fusion was built to fix, kept in-source so
/// regenerated artifacts always carry the comparison.
const PREPOOL_JSON: &str = concat!(
    "{\"commit\":\"e979fce\",\"schedule\":\"fused opt, scoped threads per section\",",
    "\"method\":\"rebuilt on the same container, scale 192, best of 5\",",
    "\"jobs1\":{\"total_nanos\":34673043,\"stage_walls\":{\"lift\":11117241,",
    "\"refine\":2671311,\"fences\":547690,\"merge\":105852,\"opt\":19008384,",
    "\"armgen\":1173011}},",
    "\"jobs4\":{\"total_nanos\":48666386,\"stage_walls\":{\"lift\":12207311,",
    "\"refine\":6315653,\"fences\":2096228,\"merge\":734846,\"opt\":24850210,",
    "\"armgen\":2415067},\"barrier_wait_nanos\":19230473},",
    "\"speedup_jobs4_vs_jobs1\":0.712}"
);

/// Suite aggregates of the pre-scheduler build (commit `8b9709c`: the
/// persistent pool and fused per-function schedule, but a *blind* opt
/// fixpoint — all 13 slots over every function every round, per-pass
/// analyses rebuilt from scratch), measured on the same container: seven
/// benchmarks, scale 192, best of 5 (the artifact's previous `"current"`
/// block). The headline number is the jobs=1 opt stage wall
/// (15.58 ms); the change-driven scheduler's CI gate is a floor on
/// `opt_speedup_jobs1_vs_presched` against exactly this figure.
const PRESCHED_JSON: &str = concat!(
    "{\"commit\":\"8b9709c\",\"schedule\":\"blind fixpoint, 13 slots x all funcs x 3 rounds\",",
    "\"method\":\"same container, scale 192, best of 5\",",
    "\"jobs1\":{\"total_nanos\":28326535,\"opt_wall_nanos\":15576449,",
    "\"opt_wall_share_pct\":55.0},",
    "\"jobs4\":{\"total_nanos\":28616859,\"opt_wall_nanos\":15094999,",
    "\"opt_wall_share_pct\":52.8}}"
);

/// Per-stage suite aggregates for one PPOpt sweep at a fixed jobs value:
/// wall time per stage (the orchestrator's `wall_nanos` — disjoint under
/// timing schema 5: a fused region's wall is apportioned across its
/// member stages by in-region CPU, so stage walls partition the total
/// again; schema-4 builds charged the whole region to every member),
/// CPU time per stage (`nanos + module_nanos`, summed across
/// overlapping workers), and the shared pool's activity attributed to
/// the sweep's runs.
struct SuiteSample {
    total_nanos: u128,
    stage_walls: [u128; 6],
    stage_cpu: [u128; 6],
    barrier_wait_nanos: u128,
    opt_parallel_sections: u64,
    fused_sections: u64,
    fused_wall_nanos: u128,
    pool_submitted: u64,
    pool_executed: u64,
    pool_steals: u64,
    pool_parks: u64,
    /// Change-driven opt scheduler counters summed over the suite
    /// (schema-6 timing reports); jobs-invariant by construction, which
    /// [`bench()`] asserts across its jobs levels.
    sched_ran: u64,
    sched_skipped: u64,
    sched_retired: u64,
    sched_rounds: u64,
    sched_compact_skipped: u64,
}

impl SuiteSample {
    /// The opt stage's share of suite stage wall time, in percent.
    fn opt_wall_share_pct(&self) -> f64 {
        let wall: u128 = self.stage_walls.iter().sum();
        100.0 * self.stage_walls[OPT] as f64 / wall.max(1) as f64
    }

    /// Fraction of blind-driver pass slots the scheduler skipped.
    fn sched_skip_ratio(&self) -> f64 {
        self.sched_skipped as f64 / (self.sched_ran + self.sched_skipped).max(1) as f64
    }

    /// The scheduler counters, as compared for jobs-invariance.
    fn sched_key(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.sched_ran,
            self.sched_skipped,
            self.sched_retired,
            self.sched_rounds,
            self.sched_compact_skipped,
        )
    }

    fn json(&self) -> String {
        let obj = |vals: &[u128; 6]| {
            STAGE_NAMES
                .iter()
                .zip(vals.iter())
                .map(|(n, v)| format!("\"{n}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!(
            "{{\"total_nanos\":{},\"stage_walls\":{{{}}},\"stage_cpu\":{{{}}},\
             \"opt_wall_share_pct\":{:.1},\"barrier_wait_nanos\":{},\
             \"opt_parallel_sections\":{},\
             \"fused\":{{\"sections\":{},\"wall_nanos\":{}}},\
             \"opt_sched\":{{\"ran\":{},\"skipped\":{},\"retired\":{},\
             \"rounds\":{},\"compact_skipped\":{},\"skip_ratio\":{:.3}}},\
             \"pool\":{{\"submitted\":{},\"executed\":{},\"steals\":{},\
             \"parks\":{}}}}}",
            self.total_nanos,
            obj(&self.stage_walls),
            obj(&self.stage_cpu),
            self.opt_wall_share_pct(),
            self.barrier_wait_nanos,
            self.opt_parallel_sections,
            self.fused_sections,
            self.fused_wall_nanos,
            self.sched_ran,
            self.sched_skipped,
            self.sched_retired,
            self.sched_rounds,
            self.sched_compact_skipped,
            self.sched_skip_ratio(),
            self.pool_submitted,
            self.pool_executed,
            self.pool_steals,
            self.pool_parks,
        )
    }
}

/// Translates the whole suite once (uncached, PPOpt) at `jobs` workers
/// and aggregates the timing reports.
fn bench_sweep(benches: &[Benchmark], jobs: usize) -> SuiteSample {
    let mut s = SuiteSample {
        total_nanos: 0,
        stage_walls: [0; 6],
        stage_cpu: [0; 6],
        barrier_wait_nanos: 0,
        opt_parallel_sections: 0,
        fused_sections: 0,
        fused_wall_nanos: 0,
        pool_submitted: 0,
        pool_executed: 0,
        pool_steals: 0,
        pool_parks: 0,
        sched_ran: 0,
        sched_skipped: 0,
        sched_retired: 0,
        sched_rounds: 0,
        sched_compact_skipped: 0,
    };
    for b in benches {
        let (_t, report) = Pipeline::new(Version::PPOpt)
            .with_jobs(jobs)
            .run(&b.binary)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        s.total_nanos += report.total_nanos;
        for (i, st) in report.stages.iter().enumerate() {
            s.stage_walls[i] += st.wall_nanos;
            s.stage_cpu[i] += st.nanos + st.module_nanos;
        }
        s.barrier_wait_nanos += report.barrier_wait_nanos.iter().sum::<u128>();
        s.opt_parallel_sections += report.stages[OPT].parallel_sections;
        s.fused_sections += report.fused_sections;
        s.fused_wall_nanos += report.fused_wall_nanos;
        if let Some(p) = &report.pool {
            s.pool_submitted += p.submitted;
            s.pool_executed += p.executed;
            s.pool_steals += p.steals;
            s.pool_parks += p.parks;
        }
        let sc = report
            .opt_sched
            .unwrap_or_else(|| panic!("{}: cold PPOpt run without opt_sched", b.name));
        s.sched_ran += sc.ran;
        s.sched_skipped += sc.skipped;
        s.sched_retired += sc.retired;
        s.sched_rounds += sc.rounds;
        s.sched_compact_skipped += sc.compact_skipped;
    }
    s
}

/// Best (minimum suite wall total) of [`BENCH_REPS`] sweeps.
fn bench_best(benches: &[Benchmark], jobs: usize) -> SuiteSample {
    let mut best: Option<SuiteSample> = None;
    for _ in 0..BENCH_REPS {
        let s = bench_sweep(benches, jobs);
        if best.as_ref().is_none_or(|b| s.total_nanos < b.total_nanos) {
            best = Some(s);
        }
    }
    best.expect("BENCH_REPS > 0")
}

/// Writes `BENCH_pipeline.json` (schema 3): per-stage suite wall times,
/// opt-stage share, fused-section, pool, and change-driven opt-scheduler
/// counters at `jobs = 1, 2, 4` for the current build, next to the
/// recorded pre-fusion [`BASELINE_JSON`], pre-pool [`PREPOOL_JSON`], and
/// pre-scheduler [`PRESCHED_JSON`] snapshots, so the pipeline's perf
/// trajectory is tracked across PRs by diffing the committed artifact.
///
/// Schema 3 adds the `"presched"` snapshot, an `"opt_sched"` object per
/// jobs level (`ran`/`skipped`/`retired`/`rounds`/`compact_skipped`/
/// `skip_ratio`, summed over the suite), and
/// `"opt_speedup_jobs1_vs_presched"` — the pre-scheduler build's jobs=1
/// opt wall divided by the current one. The scheduler counters are
/// asserted jobs-invariant across the three levels before the artifact
/// is written.
///
/// The artifact also records `host_cpus`
/// ([`std::thread::available_parallelism`]): the ≥ 2× jobs=4 speedup
/// target is only physically reachable when the host grants the process
/// that many cores — on a single-core container the meaningful number is
/// jobs=4 *parity* with jobs=1 (the pre-pool build was 0.68×), and the
/// CI gate keys off `host_cpus` accordingly.
fn bench(benches: &[Benchmark]) {
    let scale = scale();
    println!(
        "== Bench: suite translation wall, jobs=1/2/{JOBS} \
         (PPOpt, scale {scale}, best of {BENCH_REPS}) =="
    );
    let jobs_list = [1usize, 2, JOBS];
    let samples: Vec<(usize, SuiteSample)> = jobs_list
        .iter()
        .map(|&j| (j, bench_best(benches, j)))
        .collect();
    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "jobs", "total ms", "lift", "refine", "fences", "merge", "opt", "armgen", "opt share"
    );
    for (jobs, s) in &samples {
        let mut row = format!("{:<8} {:>10.2}", jobs, s.total_nanos as f64 / 1e6);
        for v in s.stage_walls {
            row.push_str(&format!(" {:>8.2}", v as f64 / 1e6));
        }
        row.push_str(&format!(" {:>9.1}%", s.opt_wall_share_pct()));
        println!("{row}");
    }
    let s1 = &samples[0].1;
    let sn = &samples[samples.len() - 1].1;
    let speedup = s1.total_nanos as f64 / sn.total_nanos.max(1) as f64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "speedup jobs={JOBS} vs jobs=1: {speedup:.2}x (host cpus: {host_cpus}); \
         pool at jobs={JOBS}: {} executed, {} stolen, {} parks; \
         barrier wait {:.2} ms",
        sn.pool_executed,
        sn.pool_steals,
        sn.pool_parks,
        sn.barrier_wait_nanos as f64 / 1e6
    );
    // Opt-scheduling breakdown. The counters must not depend on the
    // worker count — scheduling decisions are per-function and
    // deterministic — so any divergence across levels is a bug, not
    // noise, and fails the section.
    for (jobs, s) in &samples {
        assert_eq!(
            s.sched_key(),
            s1.sched_key(),
            "opt scheduler counters diverged between jobs=1 and jobs={jobs}"
        );
    }
    assert!(
        s1.sched_skipped > 0,
        "change-driven scheduler skipped nothing across the whole suite"
    );
    let presched_opt_jobs1 = 15_576_449u128; // PRESCHED_JSON jobs1 opt_wall_nanos
    let opt_speedup = presched_opt_jobs1 as f64 / s1.stage_walls[OPT].max(1) as f64;
    println!(
        "opt scheduling: {} slots ran, {} skipped ({:.1}% of the blind driver's \
         {}), {} func-rounds retired, {} rounds, {} compactions skipped \
         [jobs-invariant]",
        s1.sched_ran,
        s1.sched_skipped,
        100.0 * s1.sched_skip_ratio(),
        s1.sched_ran + s1.sched_skipped,
        s1.sched_retired,
        s1.sched_rounds,
        s1.sched_compact_skipped,
    );
    println!(
        "opt wall jobs=1: {:.2} ms vs pre-scheduler {:.2} ms — {opt_speedup:.2}x",
        s1.stage_walls[OPT] as f64 / 1e6,
        presched_opt_jobs1 as f64 / 1e6
    );
    let current = samples
        .iter()
        .map(|(j, s)| format!("\"jobs{j}\":{}", s.json()))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"schema\":3,\"scale\":{scale},\"jobs\":[1,2,{JOBS}],\"reps\":{BENCH_REPS},\
         \"host_cpus\":{host_cpus},\n \
         \"baseline\":{BASELINE_JSON},\n \
         \"prepool\":{PREPOOL_JSON},\n \
         \"presched\":{PRESCHED_JSON},\n \
         \"current\":{{{current}}},\n \
         \"speedup_jobs{JOBS}_vs_jobs1\":{speedup:.3},\"speedup_target\":2.0,\
         \"opt_speedup_jobs1_vs_presched\":{opt_speedup:.3},\
         \"opt_speedup_target\":1.5}}\n",
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json\n");
}

/// Runs the three-way differential sweep (`lasagne::difftest`): qc-driven
/// random functions plus the whole Phoenix suite, each checked
/// x86-interp ≡ LIR-interp ≡ ArmMachine across 4 Versions × cold/warm
/// cache × jobs 1/4, and writes the `BENCH_diff.json` artifact. Like
/// `bench`, this section is not part of `all`; it exits non-zero if any
/// divergence is found.
fn diff() {
    use lasagne::difftest::{run_difftest, DiffOptions};
    println!("== Diff: three-way differential sweep (x86-interp ≡ LIR ≡ Arm) ==");
    let cache = std::env::temp_dir().join("lasagne-report-diff-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let opts = DiffOptions {
        scale: scale() / 2,
        cache_dir: cache.clone(),
        ..DiffOptions::default()
    };
    let s = run_difftest(&opts);
    let _ = std::fs::remove_dir_all(&cache);
    println!(
        "qc functions {} | phoenix {} benchmarks / {} functions | \
         executions {} | divergences {} | {} ms",
        s.qc_functions,
        s.phoenix_benchmarks,
        s.phoenix_functions,
        s.executions,
        s.divergences,
        s.wall_ms
    );
    if let Some(cx) = &s.counterexample {
        eprintln!("counterexample: {cx}");
    }
    let json = format!(
        "{{\"schema\":1,\"cases\":{},\"seed\":\"{:016x}\",\"scale\":{},\n \
         \"qc_functions\":{},\"phoenix_benchmarks\":{},\"phoenix_functions\":{},\n \
         \"executions\":{},\"divergences\":{},\"wall_ms\":{}}}\n",
        opts.cases,
        opts.seed,
        opts.scale,
        s.qc_functions,
        s.phoenix_benchmarks,
        s.phoenix_functions,
        s.executions,
        s.divergences,
        s.wall_ms
    );
    std::fs::write("BENCH_diff.json", &json).expect("write BENCH_diff.json");
    println!("wrote BENCH_diff.json\n");
    if !s.clean() {
        std::process::exit(1);
    }
}

/// One serve phase measured by the load generator, plus the shared
/// pool's activity delta attributed to it.
struct ServePhase {
    name: &'static str,
    summary: lasagne_bench::serve_load::ReplaySummary,
    pool: lasagne::pipeline::pool::PoolStats,
    /// In-daemon `serve.latency.*` histogram deltas over the phase
    /// (rung name → interval histogram), read straight off the server's
    /// metrics registry — the other side of the socket from `summary`.
    server: std::collections::BTreeMap<String, lasagne_trace::Histogram>,
}

impl ServePhase {
    fn p(&self, pct: f64) -> u128 {
        lasagne_bench::serve_load::percentile(&self.summary.ok_latencies(), pct)
    }

    fn json(&self) -> String {
        let s = &self.summary;
        let server = self
            .server
            .iter()
            .map(|(name, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"p50_nanos\":{},\"p99_nanos\":{},\
                     \"p999_nanos\":{}}}",
                    name.trim_start_matches("serve.latency."),
                    h.total(),
                    h.percentile(50.0),
                    h.percentile(99.0),
                    h.percentile(99.9),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"requests\":{},\"hits\":{{\"hot\":{},\"coalesced\":{},\
             \"disk\":{},\"cold\":{}}},\"shed\":{},\"timeouts\":{},\
             \"errors\":{},\"p50_nanos\":{},\"p99_nanos\":{},\
             \"p999_nanos\":{},\"throughput_rps\":{:.1},\"wall_nanos\":{},\
             \"pool\":{{\"submitted\":{},\"executed\":{},\"steals\":{},\
             \"parks\":{}}},\"server\":{{{server}}},\"checksum\":\"{:016x}\"}}",
            s.samples.len(),
            s.hits[0],
            s.hits[1],
            s.hits[2],
            s.hits[3],
            s.shed,
            s.timeouts,
            s.errors,
            self.p(50.0),
            self.p(99.0),
            self.p(99.9),
            s.throughput_rps(),
            s.wall_nanos,
            self.pool.submitted,
            self.pool.executed,
            self.pool.steals,
            self.pool.parks,
            s.checksum,
        )
    }
}

/// Replays `opts` against the daemon behind `handle`, attributing the
/// shared pool's activity and the daemon's per-rung latency histogram
/// growth over the replay to the phase.
fn serve_phase(
    name: &'static str,
    handle: &lasagne::serve::ServerHandle,
    opts: &lasagne_bench::serve_load::LoadOpts,
) -> ServePhase {
    use lasagne::pipeline::pool::Pool;
    let before = Pool::shared().stats();
    let server_before = handle.metrics();
    let summary = lasagne_bench::serve_load::replay(opts);
    let server_after = handle.metrics();
    let pool = Pool::shared().stats().since(&before);
    let server = server_after
        .histos
        .iter()
        .filter(|(k, _)| k.starts_with("serve.latency."))
        .map(|(k, h)| {
            let d = match server_before.histos.get(k) {
                Some(b) => h.diff(b),
                None => h.clone(),
            };
            (k.clone(), d)
        })
        .filter(|(_, d)| d.total() > 0)
        .collect();
    ServePhase {
        name,
        summary,
        pool,
        server,
    }
}

/// Measures the `lasagne serve` daemon's three-rung lookup ladder and
/// writes `BENCH_serve.json`.
///
/// For each client concurrency level, three phases replay the same
/// deterministic request list (the suite under all four [`Version`]s —
/// 28 distinct content keys, since the key hashes the version alongside
/// the binary bytes) through the load generator:
///
/// * **cold** — fresh daemon, fresh cache directory: every request is a
///   full pipeline run;
/// * **warm_disk** — the daemon restarted on the same cache directory
///   (hot tier empty): every request replays the on-disk manifest;
/// * **warm_hot** — the same daemon again (the warm-disk replay
///   populated the hot tier): every request is answered from memory.
///
/// All three phases must produce the same response-byte checksum — the
/// daemon's determinism claim — and the artifact (schema 2) records
/// per-phase p50/p99/p999 latency, throughput, the
/// hot/coalesced/disk/cold split, shed/timeout/error counts, the shared
/// pool's activity delta, and the daemon's own per-rung latency
/// histogram deltas (`server`), cross-checked against the client view:
/// per-rung counts must reconcile exactly, and the dominant rung's
/// server-side p50 must sit within tolerance of the client-side p50. A
/// final shed probe (queue depth 1, no caches, over-wide client) records
/// that overload degrades into explicit `Shed` responses, not queueing.
fn serve() {
    use lasagne::serve::{Config, Server};
    use lasagne_bench::serve_load::LoadOpts;

    let scale = scale();
    let versions = Version::ALL.to_vec();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let root = std::env::temp_dir().join("lasagne-report-serve");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("serve scratch dir");

    println!(
        "== Serve: daemon latency ladder (all versions, scale {scale}, \
         jobs {JOBS}, host cpus {host_cpus}) =="
    );
    let concurrency = [1usize, 4];
    let mut levels = Vec::new();
    for &width in &concurrency {
        let cache = root.join(format!("cache-c{width}"));
        let sock = |tag: &str| {
            root.join(format!("c{width}-{tag}.sock"))
                .to_string_lossy()
                .into_owned()
        };
        let cfg = |addr: String| Config {
            addr,
            jobs: JOBS,
            cache_dir: Some(cache.clone()),
            ..Config::default()
        };
        let opts = LoadOpts {
            addr: String::new(),
            versions: versions.clone(),
            concurrency: width,
            scale,
            reps: 1,
            jobs: 0,
        };

        // Cold: fresh daemon, fresh cache.
        let daemon = Server::spawn(cfg(sock("cold"))).expect("spawn cold daemon");
        let cold = serve_phase(
            "cold",
            &daemon,
            &LoadOpts {
                addr: daemon.addr().to_string(),
                ..opts.clone()
            },
        );
        daemon.stop();

        // Warm disk: restarted daemon (hot tier empty), same cache dir.
        let daemon = Server::spawn(cfg(sock("warm"))).expect("spawn warm daemon");
        let warm_opts = LoadOpts {
            addr: daemon.addr().to_string(),
            ..opts
        };
        let warm_disk = serve_phase("warm_disk", &daemon, &warm_opts);
        // Warm hot: same daemon — the previous replay filled the tier.
        let warm_hot = serve_phase("warm_hot", &daemon, &warm_opts);
        daemon.stop();

        for ph in [&cold, &warm_disk, &warm_hot] {
            let s = &ph.summary;
            assert_eq!(
                s.shed + s.timeouts + s.errors,
                0,
                "serve c{width} {}: degraded responses in an unloaded run",
                ph.name
            );
            assert_eq!(
                s.checksum, cold.summary.checksum,
                "serve c{width} {}: response bytes diverged from the cold run",
                ph.name
            );
            // Both sides of the socket must agree. Counts reconcile
            // exactly: the daemon's per-rung latency histogram growth
            // over the phase equals the client-observed hit split.
            for (i, rung) in ["hot", "coalesced", "disk", "cold"].iter().enumerate() {
                let server_count = ph
                    .server
                    .get(&format!("serve.latency.{rung}"))
                    .map_or(0, lasagne_trace::Histogram::total);
                assert_eq!(
                    server_count, s.hits[i],
                    "serve c{width} {}: daemon counted {server_count} {rung} \
                     responses, client saw {}",
                    ph.name, s.hits[i]
                );
            }
            // Latency cross-check: per request, server-side service time
            // is a subset of the client RTT, so the server's p50 is
            // stochastically dominated by the client's. Compare through
            // the shared bucket-estimating percentile (same bounds, same
            // estimator on both ends) with a 2x + 1 ms band for bucket
            // granularity on near-instant hot hits.
            let client_p50 = ph.summary.ok_histogram().percentile(50.0);
            for (rung, h) in &ph.server {
                if h.total() * 2 < s.samples.len() as u64 {
                    continue; // only the dominant rung pins the p50
                }
                let server_p50 = h.percentile(50.0);
                assert!(
                    server_p50 <= client_p50 * 2 + 1_000_000,
                    "serve c{width} {}: daemon {rung} p50 {server_p50}ns \
                     exceeds client p50 {client_p50}ns beyond tolerance",
                    ph.name
                );
            }
            println!(
                "c{width} {:<10} p50 {:>8.3} ms  p99 {:>8.3} ms  {:>7.1} req/s  \
                 hot/coal/disk/cold {}/{}/{}/{}",
                ph.name,
                ph.p(50.0) as f64 / 1e6,
                ph.p(99.0) as f64 / 1e6,
                s.throughput_rps(),
                s.hits[0],
                s.hits[1],
                s.hits[2],
                s.hits[3],
            );
        }
        let speedup = cold.p(50.0) as f64 / warm_hot.p(50.0).max(1) as f64;
        println!("c{width} hot-tier p50 speedup vs cold: {speedup:.1}x");
        levels.push(format!(
            "\"c{width}\":{{\"cold\":{},\n   \"warm_disk\":{},\n   \
             \"warm_hot\":{},\n   \"hot_speedup_p50\":{speedup:.1}}}",
            cold.json(),
            warm_disk.json(),
            warm_hot.json(),
        ));
    }

    // Shed probe: a queue of one and no caches under an over-wide client
    // must shed explicitly rather than queue or fail.
    let daemon = Server::spawn(Config {
        addr: root.join("shed.sock").to_string_lossy().into_owned(),
        jobs: JOBS,
        hot_bytes: 0,
        queue: 1,
        cache_dir: None,
        ..Config::default()
    })
    .expect("spawn shed daemon");
    let shed = serve_phase(
        "shed_probe",
        &daemon,
        &LoadOpts {
            addr: daemon.addr().to_string(),
            versions: vec![Version::PPOpt],
            concurrency: 8,
            scale,
            reps: 2,
            jobs: 0,
        },
    );
    daemon.stop();
    let s = &shed.summary;
    assert!(
        s.shed > 0,
        "shed probe: queue=1 at concurrency 8 never shed a request"
    );
    assert_eq!(s.errors, 0, "shed probe: hard failures instead of sheds");
    println!(
        "shed probe (queue 1, concurrency 8): {} requests, {} served cold, {} shed",
        s.samples.len(),
        s.hits[3],
        s.shed
    );

    let version_names = versions
        .iter()
        .map(|v| format!("\"{}\"", v.name()))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\"schema\":2,\"scale\":{scale},\"versions\":[{version_names}],\"reps\":1,\
         \"jobs\":{JOBS},\"host_cpus\":{host_cpus},\
         \"concurrency\":[1,4],\n \"levels\":{{{}}},\n \
         \"shed_probe\":{{\"queue\":1,\"concurrency\":8,\"version\":\"PPOpt\",\"reps\":2,\
         \"requests\":{},\"cold\":{},\"shed\":{},\"errors\":{}}}}}\n",
        levels.join(",\n  "),
        s.samples.len(),
        s.hits[3],
        s.shed,
        s.errors,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    let _ = std::fs::remove_dir_all(&root);
    println!("wrote BENCH_serve.json\n");
}

fn litmus() {
    println!("== Litmus validation (Figures 1, 2, 9, 10; Theorems 7.3/7.4) ==");
    for row in lasagne_memmodel::sweep_suite(JOBS) {
        let chain = match &row.chain {
            Ok(()) => "mapping OK",
            Err(_) => "MAPPING BUG",
        };
        println!(
            "{:<16} outcomes: x86 {:>2} | LIMM {:>2} | Arm {:>2}   x86→IR→Arm: {chain}",
            row.name, row.x86_outcomes, row.limm_outcomes, row.arm_outcomes
        );
    }
    println!();
}
