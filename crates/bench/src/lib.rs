//! Measurement harness shared by the `report` binary (which regenerates
//! every table and figure of the paper's evaluation) and the in-tree
//! bench harness.

#![warn(missing_docs)]

pub mod serve_load;

use lasagne::{translate, Pipeline, PipelineReport, Translation, Version};
use lasagne_armgen::machine::ArmMachine;
use lasagne_armgen::AModule;
use lasagne_phoenix::{Benchmark, Workload};

/// Simulated run metrics for one module on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMetrics {
    /// Returned checksum.
    pub checksum: u64,
    /// Total cycles across all simulated threads.
    pub total_cycles: u64,
    /// Fork–join critical-path cycles (the "runtime").
    pub runtime_cycles: u64,
    /// Dynamic barrier executions `(ishld, ishst, ish)`.
    pub dmbs: (u64, u64, u64),
}

/// Runs an Arm module's `main` on a workload.
///
/// # Panics
///
/// Panics if the module has no `main` or the run traps.
pub fn run_arm(arm: &AModule, w: &Workload) -> RunMetrics {
    let idx = arm.func_by_name("main").expect("main");
    let mut machine = ArmMachine::new(arm);
    for (addr, bytes) in &w.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let r = machine
        .run(idx, &w.args, &[])
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    RunMetrics {
        checksum: r.ret,
        total_cycles: r.stats.cycles,
        runtime_cycles: r.critical_path_cycles(),
        dmbs: r.stats.dmbs,
    }
}

/// Translates and runs one version, asserting the checksum.
///
/// # Panics
///
/// Panics on translation failure or checksum mismatch.
pub fn measure_version(b: &Benchmark, v: Version) -> (Translation, RunMetrics) {
    let t = translate(&b.binary, v).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let m = run_arm(&t.arm, &b.workload);
    assert_eq!(
        m.checksum,
        b.workload.expected_ret,
        "{} under {}",
        b.name,
        v.name()
    );
    (t, m)
}

/// Like [`measure_version`], but translates through the instrumented
/// [`Pipeline`] with `jobs` worker threads and also returns the per-pass
/// timing report. The translation (and therefore the metrics) is
/// byte-identical to [`measure_version`] for every `jobs` value; only the
/// wall-clock numbers in the report differ.
///
/// # Panics
///
/// Panics on translation failure or checksum mismatch.
pub fn measure_version_instrumented(
    b: &Benchmark,
    v: Version,
    jobs: usize,
) -> (Translation, RunMetrics, PipelineReport) {
    measure_version_cached(b, v, jobs, None)
}

/// Like [`measure_version_instrumented`], but optionally backed by an
/// on-disk content-addressed translation cache rooted at `cache_dir`.
/// A warm run skips every lift/refine/fence/opt pass and replays the
/// cached LIR straight into code generation; the output is byte-identical
/// either way (see `PipelineReport::cache` for the hit/miss counters).
///
/// # Panics
///
/// Panics on translation failure or checksum mismatch.
pub fn measure_version_cached(
    b: &Benchmark,
    v: Version,
    jobs: usize,
    cache_dir: Option<&std::path::Path>,
) -> (Translation, RunMetrics, PipelineReport) {
    let mut pipeline = Pipeline::new(v).with_jobs(jobs);
    if let Some(dir) = cache_dir {
        pipeline = pipeline.with_cache(dir);
    }
    let (t, report) = pipeline
        .run(&b.binary)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let m = run_arm(&t.arm, &b.workload);
    assert_eq!(
        m.checksum,
        b.workload.expected_ret,
        "{} under {}",
        b.name,
        v.name()
    );
    (t, m, report)
}

/// Like [`measure_version_instrumented`], but records spans, events, and
/// counters into `trace` (see `lasagne_trace`). Uncached by design: the
/// fence-provenance counters describe placement decisions, which only the
/// cold path makes from scratch (a warm cache run replays them from
/// manifest metadata instead). The translation is still byte-identical.
///
/// # Panics
///
/// Panics on translation failure or checksum mismatch.
pub fn measure_version_traced(
    b: &Benchmark,
    v: Version,
    jobs: usize,
    trace: lasagne_trace::TraceCtx,
) -> (Translation, RunMetrics, PipelineReport) {
    let (t, report) = Pipeline::new(v)
        .with_jobs(jobs)
        .with_trace(trace)
        .run(&b.binary)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let m = run_arm(&t.arm, &b.workload);
    assert_eq!(
        m.checksum,
        b.workload.expected_ret,
        "{} under {}",
        b.name,
        v.name()
    );
    (t, m, report)
}

/// Lowers and runs the native baseline.
///
/// # Panics
///
/// Panics on checksum mismatch.
pub fn measure_native(b: &Benchmark) -> RunMetrics {
    let arm = lasagne_armgen::lower_module(&b.native);
    let m = run_arm(&arm, &b.workload);
    assert_eq!(m.checksum, b.workload.expected_ret, "{} native", b.name);
    m
}

/// Figure 15's special configurations. To isolate the effect of the fence
/// count alone ("excluding the impact of reducing the number of fences on
/// other LLVM optimizations", §9.3), all three variants share *identical*
/// computation code — the lifted-and-refined module, never optimized — and
/// differ only in fence treatment:
///
/// * [`FenceOnly::Baseline`]: naive placement (fence every access);
/// * [`FenceOnly::MergeOnly`]: naive placement + the §7.2 merging rules
///   (POpt's fence mechanism);
/// * [`FenceOnly::RefineAndMerge`]: the §8 stack-aware placement + merging
///   (PPOpt's fence mechanism, enabled by the refinement).
pub enum FenceOnly {
    /// Naive placement: fence every access.
    Baseline,
    /// Naive placement + fence merging.
    MergeOnly,
    /// Stack-aware placement + merging.
    RefineAndMerge,
}

/// Builds the Figure 15 module variants.
///
/// # Panics
///
/// Panics if lifting fails.
pub fn fence_only_module(b: &Benchmark, mode: &FenceOnly) -> lasagne_lir::Module {
    let mut m = lasagne_lifter::lift_binary(&b.binary).unwrap();
    lasagne_refine::refine_module(&mut m);
    match mode {
        FenceOnly::Baseline => {
            lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::Naive);
        }
        FenceOnly::MergeOnly => {
            lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::Naive);
            lasagne_fences::merge_fences_module(&mut m);
        }
        FenceOnly::RefineAndMerge => {
            lasagne_fences::place_fences_module(&mut m, lasagne_fences::Strategy::StackAware);
            lasagne_fences::merge_fences_module(&mut m);
        }
    }
    m
}

/// Runs a Figure 15 variant.
///
/// # Panics
///
/// Panics on checksum mismatch.
pub fn measure_fence_only(b: &Benchmark, mode: &FenceOnly) -> RunMetrics {
    let m = fence_only_module(b, mode);
    let arm = lasagne_armgen::lower_module(&m);
    let r = run_arm(&arm, &b.workload);
    assert_eq!(r.checksum, b.workload.expected_ret, "{} fence-only", b.name);
    r
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fence_only_ladder_on_histogram() {
        let b = &lasagne_phoenix::all_benchmarks(64)[0];
        let base = measure_fence_only(b, &FenceOnly::Baseline);
        let merged = measure_fence_only(b, &FenceOnly::MergeOnly);
        let refined = measure_fence_only(b, &FenceOnly::RefineAndMerge);
        assert!(merged.runtime_cycles <= base.runtime_cycles);
        assert!(refined.runtime_cycles <= merged.runtime_cycles);
    }
}
