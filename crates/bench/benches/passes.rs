//! Figure 17 bench: each optimization pass in isolation on the lifted,
//! refined, fence-placed kmeans module (reduction percentages are printed
//! by `report -- fig17`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne_opt::PassKind;
use lasagne_phoenix::all_benchmarks;

fn bench_passes(c: &mut Criterion) {
    let b = all_benchmarks(64).into_iter().find(|b| b.abbrev == "KM").unwrap();
    let mut base = lasagne_lifter::lift_binary(&b.binary).unwrap();
    lasagne_refine::refine_module(&mut base);
    lasagne_fences::place_fences_module(&mut base, lasagne_fences::Strategy::StackAware);
    lasagne_fences::merge_fences_module(&mut base);

    let mut group = c.benchmark_group("fig17_passes");
    for pass in PassKind::ALL {
        group.bench_with_input(BenchmarkId::new("kmeans", pass.name()), &base, |bch, m| {
            bch.iter(|| {
                let mut m = m.clone();
                lasagne_opt::run_pass(pass, &mut m)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_passes
}
criterion_main!(benches);
