//! Figure 17 bench: each optimization pass in isolation on the lifted,
//! refined, fence-placed kmeans module (reduction percentages are printed
//! by `report -- fig17`).

use lasagne_opt::PassKind;
use lasagne_phoenix::all_benchmarks;
use lasagne_qc::bench::Runner;

fn main() {
    let b = all_benchmarks(64)
        .into_iter()
        .find(|b| b.abbrev == "KM")
        .unwrap();
    let mut base = lasagne_lifter::lift_binary(&b.binary).unwrap();
    lasagne_refine::refine_module(&mut base);
    lasagne_fences::place_fences_module(&mut base, lasagne_fences::Strategy::StackAware);
    lasagne_fences::merge_fences_module(&mut base);

    let mut group = Runner::new("fig17_passes");
    for pass in PassKind::ALL {
        group.bench(&format!("kmeans/{}", pass.name()), || {
            let mut m = base.clone();
            lasagne_opt::run_pass(pass, &mut m)
        });
    }
    group.finish();
}
