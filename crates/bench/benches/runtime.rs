//! Figure 12 / Figure 15 bench: simulated runtime of each translation
//! version (and the native baseline) on the Phoenix suite, measured as the
//! wall time of the cost-model simulation (the simulated cycle counts are
//! printed by `report -- fig12`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne::Version;
use lasagne_bench::{measure_native, measure_version, run_arm};
use lasagne_phoenix::all_benchmarks;

fn bench_runtime(c: &mut Criterion) {
    let benches = all_benchmarks(64);
    let mut group = c.benchmark_group("fig12_runtime");
    for b in &benches {
        // Pre-translate outside the timed region; the measured quantity is
        // the simulated execution.
        let native_arm = lasagne_armgen::lower_module(&b.native);
        group.bench_with_input(BenchmarkId::new("native", b.abbrev), b, |bch, b| {
            bch.iter(|| run_arm(&native_arm, &b.workload))
        });
        for v in Version::ALL {
            let (t, _) = measure_version(b, v);
            group.bench_with_input(BenchmarkId::new(v.name(), b.abbrev), b, |bch, b| {
                bch.iter(|| run_arm(&t.arm, &b.workload))
            });
        }
    }
    group.finish();

    // Sanity inside the bench binary: native really is fastest in cycles.
    for b in &benches {
        let native = measure_native(b);
        let (_, lifted) = measure_version(b, Version::Lifted);
        assert!(native.runtime_cycles < lifted.runtime_cycles);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_runtime
}
criterion_main!(benches);
