//! Figure 12 / Figure 15 bench: simulated runtime of each translation
//! version (and the native baseline) on the Phoenix suite, measured as the
//! wall time of the cost-model simulation (the simulated cycle counts are
//! printed by `report -- fig12`).
//!
//! Set `LASAGNE_CACHE_DIR` to back the (untimed) translations with the
//! on-disk cache; the aggregate hit/miss counters are emitted under
//! `"meta"` in the JSON summary either way.

use lasagne::Version;
use lasagne_bench::{measure_native, measure_version_cached, run_arm};
use lasagne_phoenix::all_benchmarks;
use lasagne_qc::bench::Runner;

fn main() {
    let cache_dir = std::env::var_os("LASAGNE_CACHE_DIR")
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from);
    let benches = all_benchmarks(64);
    let mut group = Runner::new("fig12_runtime");
    let (mut hits, mut misses) = (0u64, 0u64);
    for b in &benches {
        // Pre-translate outside the timed region; the measured quantity is
        // the simulated execution.
        let native_arm = lasagne_armgen::lower_module(&b.native);
        group.bench(&format!("native/{}", b.abbrev), || {
            run_arm(&native_arm, &b.workload)
        });
        for v in Version::ALL {
            let (t, _, report) = measure_version_cached(b, v, 1, cache_dir.as_deref());
            if let Some(c) = &report.cache {
                hits += c.hits;
                misses += c.misses;
            }
            group.bench(&format!("{}/{}", v.name(), b.abbrev), || {
                run_arm(&t.arm, &b.workload)
            });
        }
    }
    group.note("cache_hits", hits);
    group.note("cache_misses", misses);

    // Sanity inside the bench binary: native really is fastest in cycles.
    for b in &benches {
        let native = measure_native(b);
        let (_, lifted, _) = measure_version_cached(b, Version::Lifted, 1, cache_dir.as_deref());
        assert!(native.runtime_cycles < lifted.runtime_cycles);
    }
    group.finish();
}
