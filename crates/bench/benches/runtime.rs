//! Figure 12 / Figure 15 bench: simulated runtime of each translation
//! version (and the native baseline) on the Phoenix suite, measured as the
//! wall time of the cost-model simulation (the simulated cycle counts are
//! printed by `report -- fig12`).

use lasagne::Version;
use lasagne_bench::{measure_native, measure_version, run_arm};
use lasagne_phoenix::all_benchmarks;
use lasagne_qc::bench::Runner;

fn main() {
    let benches = all_benchmarks(64);
    let mut group = Runner::new("fig12_runtime");
    for b in &benches {
        // Pre-translate outside the timed region; the measured quantity is
        // the simulated execution.
        let native_arm = lasagne_armgen::lower_module(&b.native);
        group.bench(&format!("native/{}", b.abbrev), || {
            run_arm(&native_arm, &b.workload)
        });
        for v in Version::ALL {
            let (t, _) = measure_version(b, v);
            group.bench(&format!("{}/{}", v.name(), b.abbrev), || {
                run_arm(&t.arm, &b.workload)
            });
        }
    }

    // Sanity inside the bench binary: native really is fastest in cycles.
    for b in &benches {
        let native = measure_native(b);
        let (_, lifted) = measure_version(b, Version::Lifted);
        assert!(native.runtime_cycles < lifted.runtime_cycles);
    }
    group.finish();
}
