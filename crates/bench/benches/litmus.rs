//! Figures 1/2/9/10 bench: litmus-test model checking throughput — the
//! exhaustive enumeration + consistency filtering behind the mapping
//! theorems (outcome sets are printed by `report -- litmus`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne_memmodel::mapping::check_chain;
use lasagne_memmodel::{litmus, outcomes, Model};

fn bench_litmus(c: &mut Criterion) {
    let mut group = c.benchmark_group("litmus_models");
    for (name, p) in litmus::paper_suite() {
        for model in [Model::X86, Model::Arm, Model::Limm] {
            group.bench_with_input(
                BenchmarkId::new(format!("{model:?}"), name),
                &p,
                |bch, p| bch.iter(|| outcomes(model, p)),
            );
        }
        group.bench_with_input(BenchmarkId::new("chain_check", name), &p, |bch, p| {
            bch.iter(|| check_chain(p).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_litmus
}
criterion_main!(benches);
