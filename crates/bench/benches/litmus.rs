//! Figures 1/2/9/10 bench: litmus-test model checking throughput — the
//! exhaustive enumeration + consistency filtering behind the mapping
//! theorems (outcome sets are printed by `report -- litmus`).

use lasagne_memmodel::mapping::check_chain;
use lasagne_memmodel::{litmus, outcomes, Model};
use lasagne_qc::bench::Runner;

fn main() {
    let mut group = Runner::new("litmus_models");
    for (name, p) in litmus::paper_suite() {
        for model in [Model::X86, Model::Arm, Model::Limm] {
            group.bench(&format!("{model:?}/{name}"), || outcomes(model, &p));
        }
        group.bench(&format!("chain_check/{name}"), || check_chain(&p).unwrap());
    }
    group.finish();
}
