//! Figure 14 bench: fence placement + merging throughput, and the static
//! fence-count reductions (printed by `report -- fig14`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne_fences::Strategy;
use lasagne_phoenix::all_benchmarks;

fn bench_fences(c: &mut Criterion) {
    let benches = all_benchmarks(64);
    let mut group = c.benchmark_group("fig14_fences");
    for b in &benches {
        let lifted = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let mut refined = lifted.clone();
        lasagne_refine::refine_module(&mut refined);

        group.bench_with_input(BenchmarkId::new("place_naive", b.abbrev), &lifted, |bch, m| {
            bch.iter(|| {
                let mut m = m.clone();
                lasagne_fences::place_fences_module(&mut m, Strategy::Naive)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("place_stack_aware", b.abbrev),
            &refined,
            |bch, m| {
                bch.iter(|| {
                    let mut m = m.clone();
                    lasagne_fences::place_fences_module(&mut m, Strategy::StackAware)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("merge", b.abbrev), &refined, |bch, m| {
            bch.iter(|| {
                let mut m = m.clone();
                lasagne_fences::place_fences_module(&mut m, Strategy::StackAware);
                lasagne_fences::merge_fences_module(&mut m)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fences
}
criterion_main!(benches);
