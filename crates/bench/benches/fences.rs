//! Figure 14 bench: fence placement + merging throughput, and the static
//! fence-count reductions (printed by `report -- fig14`).

use lasagne_fences::Strategy;
use lasagne_phoenix::all_benchmarks;
use lasagne_qc::bench::Runner;

fn main() {
    let mut group = Runner::new("fig14_fences");
    for b in &all_benchmarks(64) {
        let lifted = lasagne_lifter::lift_binary(&b.binary).unwrap();
        let mut refined = lifted.clone();
        lasagne_refine::refine_module(&mut refined);

        group.bench(&format!("place_naive/{}", b.abbrev), || {
            let mut m = lifted.clone();
            lasagne_fences::place_fences_module(&mut m, Strategy::Naive)
        });
        group.bench(&format!("place_stack_aware/{}", b.abbrev), || {
            let mut m = refined.clone();
            lasagne_fences::place_fences_module(&mut m, Strategy::StackAware)
        });
        group.bench(&format!("merge/{}", b.abbrev), || {
            let mut m = refined.clone();
            lasagne_fences::place_fences_module(&mut m, Strategy::StackAware);
            lasagne_fences::merge_fences_module(&mut m)
        });
    }
    group.finish();
}
