//! Figure 16 bench: full-pipeline translation cost per version (the code
//! size ratios themselves are printed by `report -- fig16`).

use lasagne::Version;
use lasagne_phoenix::all_benchmarks;
use lasagne_qc::bench::Runner;

fn main() {
    let mut group = Runner::new("fig16_translate");
    for b in &all_benchmarks(64) {
        for v in Version::ALL {
            group.bench(&format!("{}/{}", v.name(), b.abbrev), || {
                lasagne::translate(&b.binary, v).unwrap()
            });
        }
    }
    group.finish();
}
