//! Figure 16 bench: full-pipeline translation cost per version (the code
//! size ratios themselves are printed by `report -- fig16`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lasagne::Version;
use lasagne_phoenix::all_benchmarks;

fn bench_codesize(c: &mut Criterion) {
    let benches = all_benchmarks(64);
    let mut group = c.benchmark_group("fig16_translate");
    for b in &benches {
        for v in Version::ALL {
            group.bench_with_input(
                BenchmarkId::new(v.name(), b.abbrev),
                &(b, v),
                |bch, (b, v)| bch.iter(|| lasagne::translate(&b.binary, *v).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_codesize
}
criterion_main!(benches);
