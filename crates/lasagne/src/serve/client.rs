//! Blocking client for the `lasagne serve` daemon.
//!
//! One [`Client`] owns one connection and issues framed requests in
//! sequence; the load generator opens one client per worker thread.
//! Address syntax matches the server: a parseable `host:port` connects
//! over TCP, anything else is a Unix socket path.

use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use lasagne_x86::binary::Binary;

use super::wire::{self, Request, Response, WireError};
use crate::Version;

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or speaking to the server failed.
    Io(io::Error),
    /// The server sent a frame this client cannot parse.
    Protocol,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve connection error: {e}"),
            ClientError::Protocol => write!(f, "serve protocol error"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<lasagne_cache::Corrupt> for ClientError {
    fn from(_: lasagne_cache::Corrupt) -> ClientError {
        ClientError::Protocol
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            WireError::Closed => ClientError::Io(io::ErrorKind::UnexpectedEof.into()),
            _ => ClientError::Protocol,
        }
    }
}

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// One connection to a serve daemon.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to `addr` (TCP `host:port` or a Unix socket path).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = if addr.parse::<std::net::SocketAddr>().is_ok() {
            Stream::Tcp(TcpStream::connect(addr)?)
        } else {
            Stream::Unix(UnixStream::connect(addr)?)
        };
        Ok(Client { stream })
    }

    /// As [`Client::connect`], retrying for up to `patience` while the
    /// server is still binding (connection refused / socket missing).
    ///
    /// # Errors
    ///
    /// The last connect failure once patience runs out.
    pub fn connect_with_retry(addr: &str, patience: Duration) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = wire::encode_request(req);
        let resp = match &mut self.stream {
            Stream::Unix(s) => {
                wire::write_frame(s, &payload)?;
                wire::read_frame(s)?
            }
            Stream::Tcp(s) => {
                wire::write_frame(s, &payload)?;
                wire::read_frame(s)?
            }
        };
        Ok(wire::decode_response(&resp)?)
    }

    /// Translates `bin` under `version`. `jobs = 0` uses the server's
    /// configured parallelism. Returns the full server response —
    /// including `Shed`/`Timeout`/`Error`, which are protocol-level
    /// *answers*, not client errors.
    ///
    /// # Errors
    ///
    /// Transport or framing failures only.
    pub fn translate(
        &mut self,
        bin: &Binary,
        version: Version,
        jobs: u32,
    ) -> Result<Response, ClientError> {
        self.call(&Request::Translate {
            version,
            jobs,
            bin: bin.clone(),
        })
    }

    /// Fetches the server's counters as JSON.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or a non-stats reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Fetches the server's metrics registry as `(json, prometheus)`
    /// bodies — the JSON snapshot with derived percentiles, and the
    /// Prometheus-style text exposition.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or a non-metrics reply (e.g. a
    /// schema-1 daemon that predates the Metrics frame).
    pub fn metrics(&mut self) -> Result<(String, String), ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { json, prom } => Ok((json, prom)),
            _ => Err(ClientError::Protocol),
        }
    }

    /// Asks the server to shut down and drain.
    ///
    /// # Errors
    ///
    /// Transport/framing failures, or a non-ack reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Protocol),
        }
    }
}
