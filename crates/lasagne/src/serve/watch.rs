//! Delta math and rendering for `lasagne serve-watch`.
//!
//! The watch view polls the daemon's Stats and Metrics bodies, parses
//! them with the in-tree JSON reader, and reports what happened in the
//! *interval* — requests per second, rung hit ratios, shed/timeout
//! rates, and interval latency percentiles — rather than lifetime
//! totals. Both counters and histograms are monotone, so an interval is
//! the pointwise difference of two snapshots ([`Histogram::diff`] for
//! the buckets), and interval percentiles come from the same
//! [`Histogram::percentile`] estimator the server uses for lifetime
//! ones. Elapsed time is the difference of the *server's*
//! `uptime_nanos`, so the math never mixes the client's clock into a
//! server-side rate.

use std::collections::BTreeMap;

use lasagne_trace::json::{self, Json};
use lasagne_trace::Histogram;

/// One parsed poll of the daemon: the flattened Stats counters plus
/// every metrics histogram.
#[derive(Debug, Clone, Default)]
pub struct WatchSnapshot {
    /// Stats counters by field name; the nested `hot_tier` object is
    /// flattened to `hot_tier.entries` / `.bytes` / `.evictions`.
    pub stats: BTreeMap<String, u64>,
    /// Metrics histograms by registry name.
    pub histos: BTreeMap<String, Histogram>,
}

fn histogram_from_json(v: &Json) -> Option<Histogram> {
    let bounds: Vec<u64> = v
        .get("bounds")?
        .as_arr()?
        .iter()
        .map(|b| b.as_u64())
        .collect::<Option<_>>()?;
    let counts: Vec<u64> = v
        .get("counts")?
        .as_arr()?
        .iter()
        .map(|c| c.as_u64())
        .collect::<Option<_>>()?;
    if counts.len() != bounds.len() + 1 {
        return None;
    }
    let mut h = Histogram::new(&bounds);
    h.counts = counts;
    h.sum = v.get("sum")?.as_u64()?;
    h.total = v.get("total")?.as_u64()?;
    Some(h)
}

impl WatchSnapshot {
    /// Parses one poll from the Stats response body and the Metrics
    /// response's JSON body.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed or schema-incompatible
    /// input.
    pub fn parse(stats_json: &str, metrics_json: &str) -> Result<WatchSnapshot, String> {
        let sv = json::parse(stats_json).map_err(|e| format!("stats body: {e}"))?;
        let mut stats = BTreeMap::new();
        let Json::Obj(fields) = &sv else {
            return Err("stats body is not an object".into());
        };
        for (k, v) in fields {
            match v {
                Json::Num(_) => {
                    stats.insert(k.clone(), v.as_u64().unwrap_or(0));
                }
                Json::Obj(nested) => {
                    for (nk, nv) in nested {
                        stats.insert(format!("{k}.{nk}"), nv.as_u64().unwrap_or(0));
                    }
                }
                _ => {}
            }
        }
        if !stats.contains_key("uptime_nanos") {
            return Err("stats body lacks uptime_nanos (daemon too old?)".into());
        }
        let mv = json::parse(metrics_json).map_err(|e| format!("metrics body: {e}"))?;
        let mut histos = BTreeMap::new();
        if let Some(Json::Obj(hs)) = mv.get("metrics").and_then(|m| m.get("histograms")) {
            for (name, hv) in hs {
                let h = histogram_from_json(hv)
                    .ok_or_else(|| format!("malformed histogram {name:?}"))?;
                histos.insert(name.clone(), h);
            }
        }
        Ok(WatchSnapshot { stats, histos })
    }

    /// A Stats counter (0 when absent).
    pub fn stat(&self, name: &str) -> u64 {
        self.stats.get(name).copied().unwrap_or(0)
    }
}

/// One rung's interval figures.
#[derive(Debug, Clone, PartialEq)]
pub struct RungDelta {
    /// Rung name (`hot` / `coalesced` / `disk` / `cold`).
    pub name: &'static str,
    /// Hits in the interval.
    pub hits: u64,
    /// Interval p50 service latency in nanos (0 when no hits).
    pub p50: u64,
    /// Interval p99 service latency in nanos (0 when no hits).
    pub p99: u64,
}

/// What happened between two polls.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchDelta {
    /// Server-side elapsed time (difference of `uptime_nanos`).
    pub elapsed_nanos: u64,
    /// Translation requests received in the interval.
    pub requests: u64,
    /// Requests shed in the interval.
    pub shed: u64,
    /// Requests timed out in the interval.
    pub timeouts: u64,
    /// Requests errored in the interval.
    pub errors: u64,
    /// Per-rung hits and interval percentiles, ladder order.
    pub rungs: Vec<RungDelta>,
}

/// The four ladder rungs in lookup order.
pub const RUNGS: [&str; 4] = ["hot", "coalesced", "disk", "cold"];

impl WatchDelta {
    /// The interval between `earlier` and `later`. Counters are
    /// saturating differences, so a daemon restart between polls
    /// degrades to zeros instead of wrapping.
    pub fn between(earlier: &WatchSnapshot, later: &WatchSnapshot) -> WatchDelta {
        let d = |name: &str| later.stat(name).saturating_sub(earlier.stat(name));
        let empty_like = |h: &Histogram| Histogram::new(&h.bounds);
        let rungs = RUNGS
            .iter()
            .map(|&name| {
                let hname = format!("serve.latency.{name}");
                let (p50, p99) = match later.histos.get(&hname) {
                    Some(l) => {
                        let base = earlier.histos.get(&hname).cloned();
                        let diff = l.diff(&base.unwrap_or_else(|| empty_like(l)));
                        (diff.percentile(50.0), diff.percentile(99.0))
                    }
                    None => (0, 0),
                };
                RungDelta {
                    name,
                    hits: d(name),
                    p50,
                    p99,
                }
            })
            .collect();
        WatchDelta {
            elapsed_nanos: d("uptime_nanos"),
            requests: d("requests"),
            shed: d("shed"),
            timeouts: d("timeouts"),
            errors: d("errors"),
            rungs,
        }
    }

    /// Interval requests per second (0 when the interval is empty).
    pub fn rps(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.requests as f64 * 1e9 / self.elapsed_nanos as f64
        }
    }

    /// A rung's share of the interval's requests, in [0, 1].
    pub fn hit_ratio(&self, rung: &RungDelta) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            rung.hits as f64 / self.requests as f64
        }
    }

    /// Renders the interval as a fixed-width terminal table; `totals`
    /// is the later snapshot, used for the lifetime/hot-tier footer.
    pub fn render(&self, totals: &WatchSnapshot) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "interval {:>8}   uptime {:>8}   lifetime requests {}\n",
            fmt_nanos(self.elapsed_nanos),
            fmt_nanos(totals.stat("uptime_nanos")),
            totals.stat("requests"),
        ));
        s.push_str(&format!(
            "requests {:>6}   {:>8.1} rps   shed {}   timeouts {}   errors {}\n",
            self.requests,
            self.rps(),
            self.shed,
            self.timeouts,
            self.errors,
        ));
        s.push_str(&format!(
            "{:<10} {:>6} {:>7} {:>10} {:>10}\n",
            "rung", "hits", "ratio", "p50", "p99"
        ));
        for rung in &self.rungs {
            let (p50, p99) = if rung.hits == 0 {
                ("-".to_string(), "-".to_string())
            } else {
                (fmt_nanos(rung.p50), fmt_nanos(rung.p99))
            };
            s.push_str(&format!(
                "{:<10} {:>6} {:>6.1}% {:>10} {:>10}\n",
                rung.name,
                rung.hits,
                self.hit_ratio(rung) * 100.0,
                p50,
                p99,
            ));
        }
        s.push_str(&format!(
            "hot tier: {} entries, {} bytes, {} evictions\n",
            totals.stat("hot_tier.entries"),
            totals.stat("hot_tier.bytes"),
            totals.stat("hot_tier.evictions"),
        ));
        s
    }
}

/// `1234` → `"1.23µs"`-style human nanoseconds.
pub fn fmt_nanos(n: u64) -> String {
    let n = n as f64;
    if n >= 1e9 {
        format!("{:.2}s", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.2}ms", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.2}µs", n / 1e3)
    } else {
        format!("{n:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the two JSON bodies the daemon would return for a known
    /// counter state, with one latency histogram.
    fn bodies(
        requests: u64,
        hot: u64,
        cold: u64,
        shed: u64,
        uptime: u64,
        cold_counts: &[u64; 4],
    ) -> (String, String) {
        let stats = format!(
            "{{\"schema\":2,\"requests\":{requests},\"hot\":{hot},\"coalesced\":0,\
             \"disk\":0,\"cold\":{cold},\"shed\":{shed},\"timeouts\":0,\"errors\":0,\
             \"hot_tier\":{{\"entries\":2,\"bytes\":100,\"evictions\":1}},\
             \"uptime_nanos\":{uptime}}}"
        );
        let total: u64 = cold_counts.iter().sum();
        let sum: u64 = cold_counts
            .iter()
            .enumerate()
            .map(|(i, c)| c * [500u64, 1500, 2500, 4000][i])
            .sum();
        let metrics = format!(
            "{{\"schema\":2,\"stats\":{stats},\"metrics\":{{\"counters\":{{}},\
             \"histograms\":{{\"serve.latency.cold\":{{\"bounds\":[1000,2000,3000],\
             \"counts\":[{},{},{},{}],\"sum\":{sum},\"total\":{total}}}}}}},\
             \"percentiles\":{{}}}}",
            cold_counts[0], cold_counts[1], cold_counts[2], cold_counts[3],
        );
        (stats, metrics)
    }

    #[test]
    fn parse_flattens_stats_and_reads_histograms() {
        let (s, m) = bodies(10, 6, 4, 1, 5_000_000_000, &[2, 1, 1, 0]);
        let snap = WatchSnapshot::parse(&s, &m).unwrap();
        assert_eq!(snap.stat("requests"), 10);
        assert_eq!(snap.stat("hot_tier.entries"), 2);
        assert_eq!(snap.stat("uptime_nanos"), 5_000_000_000);
        let h = &snap.histos["serve.latency.cold"];
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts, vec![2, 1, 1, 0]);
    }

    #[test]
    fn parse_rejects_garbage_and_old_bodies() {
        assert!(WatchSnapshot::parse("not json", "{}").is_err());
        // A pre-schema-2 stats body has no uptime_nanos → explicit error.
        assert!(WatchSnapshot::parse("{\"requests\":1}", "{}").is_err());
    }

    #[test]
    fn delta_math_on_synthetic_snapshots() {
        let (s1, m1) = bodies(10, 6, 4, 1, 5_000_000_000, &[4, 0, 0, 0]);
        let (s2, m2) = bodies(30, 18, 12, 3, 7_000_000_000, &[4, 8, 0, 0]);
        let a = WatchSnapshot::parse(&s1, &m1).unwrap();
        let b = WatchSnapshot::parse(&s2, &m2).unwrap();
        let d = WatchDelta::between(&a, &b);
        assert_eq!(d.elapsed_nanos, 2_000_000_000);
        assert_eq!(d.requests, 20);
        assert_eq!(d.shed, 2);
        assert!((d.rps() - 10.0).abs() < 1e-9, "rps {}", d.rps());

        let hot = &d.rungs[0];
        assert_eq!((hot.name, hot.hits), ("hot", 12));
        assert!((d.hit_ratio(hot) - 0.6).abs() < 1e-9);
        // No interval histogram for hot → percentiles degrade to 0.
        assert_eq!((hot.p50, hot.p99), (0, 0));

        let cold = &d.rungs[3];
        assert_eq!((cold.name, cold.hits), ("cold", 8));
        // Interval cold histogram: 8 observations, all in (1000, 2000].
        // p50 interpolates inside that bucket; exact: rank 4 of 8 → halfway.
        assert_eq!(cold.p50, 1500);
        assert_eq!(cold.p99, 2000);

        // The render mentions every rung and the interval rps.
        let table = d.render(&b);
        for rung in RUNGS {
            assert!(table.contains(rung), "missing {rung} in:\n{table}");
        }
        assert!(table.contains("10.0 rps"), "table:\n{table}");
    }

    #[test]
    fn restart_between_polls_degrades_to_zeros() {
        let (s1, m1) = bodies(30, 18, 12, 3, 7_000_000_000, &[4, 8, 0, 0]);
        let (s2, m2) = bodies(2, 1, 1, 0, 100, &[1, 0, 0, 0]);
        let a = WatchSnapshot::parse(&s1, &m1).unwrap();
        let b = WatchSnapshot::parse(&s2, &m2).unwrap();
        let d = WatchDelta::between(&a, &b);
        assert_eq!(d.requests, 0);
        assert_eq!(d.elapsed_nanos, 0);
        assert_eq!(d.rps(), 0.0);
    }
}
