//! The sharded in-memory hot tier above the on-disk translation cache.
//!
//! Keys are the pipeline's content keys ([`crate::pipeline::module_key`]):
//! identical images under the same version hash to the same key, so a
//! hit can be served without touching the pipeline at all. The design
//! follows `trace::Collector`'s lock striping — 16 shards, key-hashed —
//! so concurrent requests for *different* keys never contend on one
//! lock, while requests for the *same* key are coalesced single-flight:
//! the first becomes the leader and translates, every other waits on
//! the shard condvar and gets the leader's bytes. A leader that fails
//! or panics removes its in-flight marker on the way out (drop guard),
//! so waiters wake, observe the vacancy, and retry as leaders — a
//! poisoned translation can never wedge a key.
//!
//! The tier is bounded by bytes: inserting past the budget evicts the
//! globally least-recently-used entries (a monotone tick per access)
//! until the tier fits again. A budget of zero disables the tier —
//! every request translates, nothing is retained or coalesced.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lasagne_trace::lock_clean;
use lasagne_trace::metrics::MetricsRegistry;

use super::wire::Source;

/// Shard count; matches `trace::Collector`'s `EVENT_STRIPES`.
const SHARDS: usize = 16;

/// One cached or in-flight translation.
enum Slot {
    /// A leader is translating this key right now.
    InFlight,
    /// The finished assembly, with the last-access tick for LRU.
    Ready { asm: Arc<String>, tick: u64 },
}

#[derive(Default)]
struct Shard {
    slots: HashMap<u64, Slot>,
}

/// Why [`HotTier::get_or_translate`] did not produce assembly.
#[derive(Debug)]
pub enum TierError {
    /// Waited on another request's translation past the deadline.
    Timeout,
    /// The underlying translation reported an error.
    Failed(String),
}

/// Counters describing the tier's current shape and lifetime activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierStats {
    /// Ready entries currently resident.
    pub entries: u64,
    /// Bytes of assembly currently resident.
    pub bytes: u64,
    /// Entries evicted to stay under the byte budget, ever.
    pub evictions: u64,
}

/// The sharded, byte-bounded, single-flight hot tier.
pub struct HotTier {
    shards: Vec<(Mutex<Shard>, Condvar)>,
    budget: u64,
    used: AtomicU64,
    tick: AtomicU64,
    evictions: AtomicU64,
    metrics: Option<Arc<MetricsRegistry>>,
}

/// Condvar wait that shrugs off poisoning the same way [`lock_clean`]
/// does: a panicking peer already propagated its panic, and shard data
/// (a plain map) is valid at every instruction boundary.
fn wait_clean<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(p) => {
            let (g, t) = p.into_inner();
            (g, t.timed_out())
        }
    }
}

impl HotTier {
    /// A tier bounded at `budget` bytes of assembly (0 = disabled).
    pub fn new(budget: u64) -> HotTier {
        HotTier {
            shards: (0..SHARDS).map(|_| Default::default()).collect(),
            budget,
            used: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Publishes eviction churn into `registry`: each eviction bumps the
    /// `serve.hot.evictions` counter and records the evicted entry's
    /// size into the `serve.hot.evicted_bytes` histogram.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> HotTier {
        self.metrics = Some(registry);
        self
    }

    fn shard(&self, key: u64) -> &(Mutex<Shard>, Condvar) {
        // Low bits feed the HashMap; take high bits for the stripe so
        // the two partitions stay independent.
        &self.shards[(key >> 48) as usize % SHARDS]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Serves `key` from the tier, or runs `translate` exactly once per
    /// key across all concurrent callers. `translate` returns the
    /// assembly plus where it actually came from (disk cache or cold
    /// run); callers that coalesce onto another request's flight get
    /// [`Source::Coalesced`], and tier residents [`Source::Hot`].
    ///
    /// # Errors
    ///
    /// [`TierError::Timeout`] if waiting on a flight exceeds `timeout`;
    /// [`TierError::Failed`] if `translate` errors. A panicking
    /// `translate` propagates to this caller after the in-flight marker
    /// is cleaned up — waiters retry as leaders.
    pub fn get_or_translate(
        &self,
        key: u64,
        timeout: Duration,
        translate: impl FnOnce() -> Result<(Arc<String>, Source), String>,
    ) -> Result<(Arc<String>, Source), TierError> {
        if self.budget == 0 {
            return translate().map_err(TierError::Failed);
        }
        let deadline = Instant::now() + timeout;
        let (lock, cv) = self.shard(key);
        let mut g = lock_clean(lock);
        loop {
            match g.slots.get_mut(&key) {
                Some(Slot::Ready { asm, tick }) => {
                    *tick = self.next_tick();
                    return Ok((asm.clone(), Source::Hot));
                }
                Some(Slot::InFlight) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(TierError::Timeout);
                    }
                    let (g2, _) = wait_clean(cv, g, remaining);
                    g = g2;
                    // Re-inspect: Ready → coalesced hit; vacant → the
                    // leader failed, loop around and claim leadership;
                    // still InFlight → keep waiting until the deadline.
                    if let Some(Slot::Ready { asm, tick }) = g.slots.get_mut(&key) {
                        *tick = self.next_tick();
                        return Ok((asm.clone(), Source::Coalesced));
                    }
                }
                None => {
                    g.slots.insert(key, Slot::InFlight);
                    drop(g);
                    return self.lead(key, translate);
                }
            }
        }
    }

    /// Runs the translation as the key's flight leader. The guard
    /// removes the in-flight marker and wakes waiters on *every* exit —
    /// success, error, or unwind.
    fn lead(
        &self,
        key: u64,
        translate: impl FnOnce() -> Result<(Arc<String>, Source), String>,
    ) -> Result<(Arc<String>, Source), TierError> {
        struct Flight<'a> {
            tier: &'a HotTier,
            key: u64,
            done: bool,
        }
        impl Drop for Flight<'_> {
            fn drop(&mut self) {
                if self.done {
                    return;
                }
                let (lock, cv) = self.tier.shard(self.key);
                let mut g = lock_clean(lock);
                if matches!(g.slots.get(&self.key), Some(Slot::InFlight)) {
                    g.slots.remove(&self.key);
                }
                cv.notify_all();
            }
        }
        let mut flight = Flight {
            tier: self,
            key,
            done: false,
        };
        let (asm, source) = translate().map_err(TierError::Failed)?;
        let (lock, cv) = self.shard(key);
        {
            let mut g = lock_clean(lock);
            g.slots.insert(
                key,
                Slot::Ready {
                    asm: asm.clone(),
                    tick: self.next_tick(),
                },
            );
            self.used.fetch_add(asm.len() as u64, Ordering::Relaxed);
            cv.notify_all();
        }
        flight.done = true;
        self.evict_to_budget();
        Ok((asm, source))
    }

    /// Evicts least-recently-used entries until the tier fits its byte
    /// budget. Locks one shard at a time: scan all shards for the
    /// minimum tick, then re-lock that shard and remove the entry if it
    /// has not been touched since — a raced bump simply retries.
    fn evict_to_budget(&self) {
        while self.used.load(Ordering::Relaxed) > self.budget {
            let mut min: Option<(usize, u64, u64)> = None;
            for (si, (lock, _)) in self.shards.iter().enumerate() {
                let g = lock_clean(lock);
                for (k, slot) in &g.slots {
                    if let Slot::Ready { tick, .. } = slot {
                        if min.map_or(true, |(_, _, t)| *tick < t) {
                            min = Some((si, *k, *tick));
                        }
                    }
                }
            }
            let Some((si, k, t)) = min else {
                // Nothing evictable (all remaining slots are in flight).
                return;
            };
            let (lock, _) = &self.shards[si];
            let mut g = lock_clean(lock);
            let evict = matches!(g.slots.get(&k), Some(Slot::Ready { tick, .. }) if *tick == t);
            if evict {
                if let Some(Slot::Ready { asm, .. }) = g.slots.remove(&k) {
                    self.used.fetch_sub(asm.len() as u64, Ordering::Relaxed);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    drop(g);
                    if let Some(m) = &self.metrics {
                        m.add(0, "serve.hot.evictions", 1);
                        m.observe(
                            "serve.hot.evicted_bytes",
                            &super::SIZE_BOUNDS,
                            asm.len() as u64,
                        );
                    }
                }
            }
        }
    }

    /// Current shape and lifetime counters.
    pub fn stats(&self) -> TierStats {
        let mut entries = 0u64;
        for (lock, _) in &self.shards {
            let g = lock_clean(lock);
            entries += g
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count() as u64;
        }
        TierStats {
            entries,
            bytes: self.used.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Whether `key` is resident (Ready) right now. Test hook.
    pub fn contains(&self, key: u64) -> bool {
        let (lock, _) = self.shard(key);
        matches!(lock_clean(lock).slots.get(&key), Some(Slot::Ready { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    const LONG: Duration = Duration::from_secs(30);

    fn tier(budget: u64) -> HotTier {
        HotTier::new(budget)
    }

    /// N concurrent callers for one key: exactly one translation runs,
    /// every caller gets the same bytes, and the source split is one
    /// cold + (N-1) hot/coalesced.
    #[test]
    fn single_flight_coalesces_concurrent_callers() {
        let t = tier(1 << 20);
        let runs = AtomicUsize::new(0);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        t.get_or_translate(42, LONG, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Give siblings time to pile onto the flight.
                            std::thread::sleep(Duration::from_millis(20));
                            Ok((Arc::new("asm-bytes".to_string()), Source::Cold))
                        })
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "translation ran more than once"
        );
        let colds = results.iter().filter(|(_, s)| *s == Source::Cold).count();
        assert_eq!(colds, 1, "exactly one caller should lead");
        for (asm, _) in &results {
            assert_eq!(asm.as_str(), "asm-bytes");
        }
        assert_eq!(t.stats().entries, 1);
    }

    /// A tiny byte budget keeps the tier bounded: inserting N entries
    /// of `len` bytes with budget for two retains at most two, evicts
    /// the least recently used first, and the accounting stays exact.
    #[test]
    fn eviction_under_tiny_budget_is_lru_and_exact() {
        let t = tier(20); // two 10-byte entries
        for key in 0..5u64 {
            let (asm, src) = t
                .get_or_translate(key << 48 | key, LONG, || {
                    Ok((Arc::new(format!("{key:010}")), Source::Cold))
                })
                .unwrap();
            assert_eq!(src, Source::Cold);
            assert_eq!(asm.len(), 10);
        }
        let st = t.stats();
        assert!(
            st.bytes <= 20,
            "budget exceeded: {} bytes resident",
            st.bytes
        );
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 3);
        // The most recent keys survive; key 0 was evicted first.
        assert!(t.contains(4 << 48 | 4));
        assert!(!t.contains(0));

        // A hit refreshes recency: touch key 3, insert key 5 → key 4
        // (now the oldest) goes, key 3 stays.
        t.get_or_translate(3 << 48 | 3, LONG, || {
            unreachable!("resident key re-translated")
        })
        .unwrap();
        t.get_or_translate(5 << 48 | 5, LONG, || {
            Ok((Arc::new("5555555555".to_string()), Source::Cold))
        })
        .unwrap();
        assert!(t.contains(3 << 48 | 3));
        assert!(!t.contains(4 << 48 | 4));
    }

    /// With a metrics registry attached, eviction churn shows up as a
    /// counter + size histogram that reconcile exactly with `stats()`.
    #[test]
    fn eviction_churn_is_published_to_metrics() {
        let registry = Arc::new(MetricsRegistry::new());
        let t = tier(20).with_metrics(registry.clone());
        for key in 0..5u64 {
            t.get_or_translate(key << 48 | key, LONG, || {
                Ok((Arc::new(format!("{key:010}")), Source::Cold))
            })
            .unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.hot.evictions"), t.stats().evictions);
        let h = &snap.histos["serve.hot.evicted_bytes"];
        assert_eq!(h.total(), t.stats().evictions);
        assert_eq!(h.sum(), 10 * t.stats().evictions);
    }

    /// A leader that panics must not wedge waiters: the drop guard
    /// clears the in-flight marker, waiters wake and retry as leaders,
    /// and the key still ends up served.
    #[test]
    fn panicked_translation_does_not_wedge_waiters() {
        let t = tier(1 << 20);
        let attempts = AtomicUsize::new(0);
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            t.get_or_translate(7, LONG, || {
                                let n = attempts.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(10));
                                if n == 0 {
                                    panic!("injected translation panic");
                                }
                                Ok((Arc::new("recovered".to_string()), Source::Cold))
                            })
                        }));
                        r.map(|inner| inner.unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one caller saw the panic; everyone else got bytes.
        let panicked = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(panicked, 1, "exactly the first leader should panic");
        for r in results.iter().filter(|r| r.is_ok()) {
            let (asm, _) = r.as_ref().unwrap();
            assert_eq!(asm.as_str(), "recovered");
        }
        // And the tier still serves the key as a plain hit afterwards.
        let (asm, src) = t
            .get_or_translate(7, LONG, || unreachable!("should be resident"))
            .unwrap();
        assert_eq!(asm.as_str(), "recovered");
        assert_eq!(src, Source::Hot);
    }

    /// A failing (non-panicking) leader reports the error to itself
    /// only; a retry translates again and succeeds.
    #[test]
    fn failed_translation_clears_the_flight() {
        let t = tier(1 << 20);
        let err = t.get_or_translate(9, LONG, || Err("lift error".to_string()));
        assert!(matches!(err, Err(TierError::Failed(m)) if m == "lift error"));
        let (asm, src) = t
            .get_or_translate(9, LONG, || Ok((Arc::new("ok".to_string()), Source::Disk)))
            .unwrap();
        assert_eq!(asm.as_str(), "ok");
        assert_eq!(src, Source::Disk);
    }

    /// Budget 0 disables the tier: every call translates, nothing is
    /// retained.
    #[test]
    fn zero_budget_bypasses_the_tier() {
        let t = tier(0);
        let runs = AtomicUsize::new(0);
        for _ in 0..3 {
            let (_, src) = t
                .get_or_translate(1, LONG, || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    Ok((Arc::new("x".to_string()), Source::Cold))
                })
                .unwrap();
            assert_eq!(src, Source::Cold);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        assert_eq!(t.stats().entries, 0);
    }
}
