//! The `lasagne serve` wire protocol: length-prefixed, checksummed
//! frames in the spirit of the cache's on-disk format
//! (`crates/cache/src/ser.rs`), carrying translation requests and
//! responses over a byte stream.
//!
//! Every message is one frame:
//!
//! ```text
//! MAGIC "LSRV" ‖ schema:u32 ‖ len:u64 ‖ fnv64(payload):u64 ‖ payload
//! ```
//!
//! and the payload is a tag-byte dispatch encoded with the cache's
//! [`Writer`]/[`Reader`] primitives (little-endian fixed-width ints,
//! length-prefixed strings). Like the cache format this is *not* a
//! public interface: any layout change bumps [`SCHEMA`], and a peer
//! with a different schema is rejected at the frame boundary — never
//! misparsed. A torn, truncated, or bit-flipped frame decodes to
//! [`Corrupt`]; the server answers with an error response and drops
//! the connection rather than guessing.

use std::io::{self, Read, Write};

use lasagne_cache::fnv64;
use lasagne_cache::ser::{Reader, Writer};
use lasagne_cache::Corrupt;
use lasagne_x86::binary::{Binary, ExternSym, FuncSym, Global};

use crate::Version;

/// Wire format version written on every outgoing frame. Schema 2 added
/// the [`Request::Metrics`]/[`Response::Metrics`] pair; schema 1 frames
/// (whose payload tags are a strict subset) are still accepted on read —
/// see [`MIN_SCHEMA`].
pub const SCHEMA: u32 = 2;

/// Oldest schema accepted on read. Schema 2 only *adds* payload tags, so
/// a schema-1 peer's frames decode unchanged; anything outside
/// `MIN_SCHEMA..=SCHEMA` is rejected at the frame boundary, never
/// misparsed.
pub const MIN_SCHEMA: u32 = 1;

/// Frame magic for serve messages (the cache uses `LSGC`).
pub const MAGIC: [u8; 4] = *b"LSRV";

/// Frame header size: magic + schema + len + checksum.
pub const HEADER: usize = 4 + 4 + 8 + 8;

/// Upper bound on a frame payload. Requests carry whole binary images
/// and responses whole assembly listings, but anything beyond this is a
/// protocol error, not a workload.
pub const MAX_FRAME: usize = 64 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Translate a binary image under `version`; `jobs = 0` asks for
    /// the server's configured default.
    Translate {
        /// Pipeline configuration to translate under.
        version: Version,
        /// Requested worker threads; 0 = server default.
        jobs: u32,
        /// The binary image to translate.
        bin: Binary,
    },
    /// Ask for the server's counters as a JSON document.
    Stats,
    /// Ask the server to stop accepting work, drain, and exit.
    Shutdown,
    /// Ask for the server's metrics registry — latency histograms,
    /// derived percentiles, payload-size and queue-wait distributions —
    /// as both a JSON snapshot and a Prometheus-style text exposition.
    /// New in schema 2.
    Metrics,
}

/// Where an accepted translation's bytes came from, in lookup-ladder
/// order: sharded in-memory hot tier, a single-flight wait on another
/// request's in-flight translation, the on-disk cache, or a cold run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Resident in the in-memory hot tier.
    Hot,
    /// Coalesced onto another request's in-flight translation.
    Coalesced,
    /// Replayed through the on-disk cache's warm path.
    Disk,
    /// A full cold pipeline run.
    Cold,
}

impl Source {
    /// Stable lowercase name (used in stats JSON and bench output).
    pub fn name(self) -> &'static str {
        match self {
            Source::Hot => "hot",
            Source::Coalesced => "coalesced",
            Source::Disk => "disk",
            Source::Cold => "cold",
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The translation succeeded. `nanos` is the server-side service
    /// time (lookup ladder included); `asm` is byte-identical to
    /// `lasagne translate` output for the same image and version.
    Ok {
        /// Which rung of the lookup ladder served the bytes.
        source: Source,
        /// Server-side service time in nanoseconds.
        nanos: u64,
        /// The AArch64 assembly listing.
        asm: String,
    },
    /// The admission queue is full: explicit backpressure, try later.
    Shed,
    /// The request exceeded the server's per-request time budget.
    Timeout,
    /// The translation failed (or panicked); shared state is intact.
    Error {
        /// Human-readable failure description.
        msg: String,
    },
    /// Counters snapshot for a [`Request::Stats`].
    Stats {
        /// The counters as one JSON object.
        json: String,
    },
    /// Acknowledges a [`Request::Shutdown`]; no further requests will
    /// be accepted on any connection.
    ShuttingDown,
    /// Metrics snapshot for a [`Request::Metrics`]. New in schema 2.
    Metrics {
        /// The registry as one JSON object (schema-tagged; includes
        /// derived p50/p99/p999 per histogram).
        json: String,
        /// The same registry as Prometheus text exposition lines.
        prom: String,
    },
}

fn put_version(w: &mut Writer, v: Version) {
    w.put_u8(match v {
        Version::Lifted => 0,
        Version::Opt => 1,
        Version::POpt => 2,
        Version::PPOpt => 3,
    });
}

fn get_version(r: &mut Reader) -> Result<Version, Corrupt> {
    Ok(match r.get_u8()? {
        0 => Version::Lifted,
        1 => Version::Opt,
        2 => Version::POpt,
        3 => Version::PPOpt,
        _ => return Err(Corrupt),
    })
}

fn put_binary(w: &mut Writer, b: &Binary) {
    w.put_u64(b.text_base);
    w.put_bytes(&b.text);
    w.put_u64(b.functions.len() as u64);
    for f in &b.functions {
        w.put_str(&f.name);
        w.put_u64(f.addr);
        w.put_u64(f.size);
    }
    w.put_u64(b.globals.len() as u64);
    for g in &b.globals {
        w.put_str(&g.name);
        w.put_u64(g.addr);
        w.put_u64(g.size);
        w.put_bytes(&g.init);
    }
    w.put_u64(b.externs.len() as u64);
    for e in &b.externs {
        w.put_str(&e.name);
        w.put_u64(e.addr);
    }
}

fn get_binary(r: &mut Reader) -> Result<Binary, Corrupt> {
    let text_base = r.get_u64()?;
    let text = r.get_bytes()?.to_vec();
    let nfuncs = r.get_len()?;
    let mut functions = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        functions.push(FuncSym {
            name: r.get_str()?,
            addr: r.get_u64()?,
            size: r.get_u64()?,
        });
    }
    let nglobals = r.get_len()?;
    let mut globals = Vec::with_capacity(nglobals);
    for _ in 0..nglobals {
        globals.push(Global {
            name: r.get_str()?,
            addr: r.get_u64()?,
            size: r.get_u64()?,
            init: r.get_bytes()?.to_vec(),
        });
    }
    let nexterns = r.get_len()?;
    let mut externs = Vec::with_capacity(nexterns);
    for _ in 0..nexterns {
        externs.push(ExternSym {
            name: r.get_str()?,
            addr: r.get_u64()?,
        });
    }
    Ok(Binary {
        text_base,
        text,
        functions,
        globals,
        externs,
    })
}

/// Encodes a request payload (unframed).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Translate { version, jobs, bin } => {
            w.put_u8(0);
            put_version(&mut w, *version);
            w.put_u32(*jobs);
            put_binary(&mut w, bin);
        }
        Request::Stats => w.put_u8(1),
        Request::Shutdown => w.put_u8(2),
        Request::Metrics => w.put_u8(3),
    }
    w.finish()
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`Corrupt`] on an unknown tag or malformed body.
pub fn decode_request(payload: &[u8]) -> Result<Request, Corrupt> {
    let mut r = Reader::new(payload);
    let req = match r.get_u8()? {
        0 => Request::Translate {
            version: get_version(&mut r)?,
            jobs: r.get_u32()?,
            bin: get_binary(&mut r)?,
        },
        1 => Request::Stats,
        2 => Request::Shutdown,
        3 => Request::Metrics,
        _ => return Err(Corrupt),
    };
    r.expect_eof()?;
    Ok(req)
}

/// Encodes a response payload (unframed).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::Ok { source, nanos, asm } => {
            w.put_u8(0);
            w.put_u8(match source {
                Source::Hot => 0,
                Source::Coalesced => 1,
                Source::Disk => 2,
                Source::Cold => 3,
            });
            w.put_u64(*nanos);
            w.put_str(asm);
        }
        Response::Shed => w.put_u8(1),
        Response::Timeout => w.put_u8(2),
        Response::Error { msg } => {
            w.put_u8(3);
            w.put_str(msg);
        }
        Response::Stats { json } => {
            w.put_u8(4);
            w.put_str(json);
        }
        Response::ShuttingDown => w.put_u8(5),
        Response::Metrics { json, prom } => {
            w.put_u8(6);
            w.put_str(json);
            w.put_str(prom);
        }
    }
    w.finish()
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`Corrupt`] on an unknown tag or malformed body.
pub fn decode_response(payload: &[u8]) -> Result<Response, Corrupt> {
    let mut r = Reader::new(payload);
    let resp = match r.get_u8()? {
        0 => Response::Ok {
            source: match r.get_u8()? {
                0 => Source::Hot,
                1 => Source::Coalesced,
                2 => Source::Disk,
                3 => Source::Cold,
                _ => return Err(Corrupt),
            },
            nanos: r.get_u64()?,
            asm: r.get_str()?,
        },
        1 => Response::Shed,
        2 => Response::Timeout,
        3 => Response::Error { msg: r.get_str()? },
        4 => Response::Stats { json: r.get_str()? },
        5 => Response::ShuttingDown,
        6 => Response::Metrics {
            json: r.get_str()?,
            prom: r.get_str()?,
        },
        _ => return Err(Corrupt),
    };
    r.expect_eof()?;
    Ok(resp)
}

/// Why reading a frame from a stream failed.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the stream at a frame boundary (normal EOF).
    Closed,
    /// The stream died mid-frame or another I/O error occurred.
    Io(io::Error),
    /// Bad magic, schema mismatch, oversized frame, or checksum failure.
    Corrupt,
    /// The caller's stop predicate fired while waiting for bytes.
    Stopped,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Corrupt => write!(f, "corrupt frame"),
            WireError::Stopped => write!(f, "server stopping"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<Corrupt> for WireError {
    fn from(_: Corrupt) -> WireError {
        WireError::Corrupt
    }
}

/// Writes `payload` to `w` as one frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; HEADER];
    head[0..4].copy_from_slice(&MAGIC);
    head[4..8].copy_from_slice(&SCHEMA.to_le_bytes());
    head[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    head[16..24].copy_from_slice(&fnv64(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Fills `buf` from `r`, surviving read timeouts: a `WouldBlock` or
/// `TimedOut` between bytes re-checks `stop` and keeps the partial
/// prefix, so a frame split across timeout windows is never torn.
/// `at_boundary` marks whether the very first byte is still pending —
/// EOF there is a clean close, EOF mid-buffer is an error.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    WireError::Closed
                } else {
                    WireError::Io(io::ErrorKind::UnexpectedEof.into())
                });
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Only bail between frames: once a header byte has
                // arrived the peer is mid-message and deserves the
                // frame to complete even while the server drains.
                if stop() && at_boundary && filled == 0 {
                    return Err(WireError::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame's payload from `r`, polling `stop` while the stream
/// is idle (requires a read timeout on the underlying socket for the
/// polling to be live).
///
/// # Errors
///
/// [`WireError::Closed`] on EOF at a frame boundary, [`WireError::Stopped`]
/// when `stop` fires while idle, [`WireError::Corrupt`] on a malformed
/// frame, [`WireError::Io`] otherwise.
pub fn read_frame_poll(r: &mut impl Read, stop: &dyn Fn() -> bool) -> Result<Vec<u8>, WireError> {
    let mut head = [0u8; HEADER];
    read_full(r, &mut head, stop, true)?;
    if head[0..4] != MAGIC {
        return Err(WireError::Corrupt);
    }
    let schema = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if !(MIN_SCHEMA..=SCHEMA).contains(&schema) {
        return Err(WireError::Corrupt);
    }
    let len = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let sum = u64::from_le_bytes(head[16..24].try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| WireError::Corrupt)?;
    if len > MAX_FRAME {
        return Err(WireError::Corrupt);
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, stop, false)?;
    if fnv64(&payload) != sum {
        return Err(WireError::Corrupt);
    }
    Ok(payload)
}

/// Reads one frame with no stop predicate (client side, blocking).
///
/// # Errors
///
/// As [`read_frame_poll`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    read_frame_poll(r, &|| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_x86::binary::BinaryBuilder;

    fn demo_binary() -> Binary {
        let b = BinaryBuilder::new();
        b.finish()
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Translate {
                version: Version::PPOpt,
                jobs: 4,
                bin: demo_binary(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
        ];
        for req in &reqs {
            let payload = encode_request(req);
            assert_eq!(&decode_request(&payload).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Ok {
                source: Source::Coalesced,
                nanos: 12345,
                asm: "mov x0, #1\n".into(),
            },
            Response::Shed,
            Response::Timeout,
            Response::Error { msg: "boom".into() },
            Response::Stats { json: "{}".into() },
            Response::ShuttingDown,
            Response::Metrics {
                json: "{\"schema\":1}".into(),
                prom: "lasagne_serve_requests_total 1\n".into(),
            },
        ];
        for resp in &resps {
            let payload = encode_response(resp);
            assert_eq!(&decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn frames_survive_the_stream_and_reject_corruption() {
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), payload);

        // Bit flip anywhere → Corrupt, never a misparse.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let mut r = &bad[..];
            assert!(
                matches!(
                    read_frame(&mut r),
                    Err(WireError::Corrupt) | Err(WireError::Io(_))
                ),
                "flipped byte {i} was accepted"
            );
        }

        // Truncation mid-frame → Io(UnexpectedEof); empty stream → Closed.
        let mut r = &buf[..buf.len() - 1];
        assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
        let mut r = &buf[..0];
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn old_schema_frames_still_decode_and_future_ones_are_rejected() {
        // A schema-1 peer only ever sends schema-1 payload tags; its
        // frames must decode unchanged under the schema-2 reader.
        let payload = encode_request(&Request::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        for (schema, ok) in [(0u32, false), (1, true), (2, true), (3, false)] {
            let mut frame = buf.clone();
            frame[4..8].copy_from_slice(&schema.to_le_bytes());
            let mut r = &frame[..];
            let got = read_frame(&mut r);
            if ok {
                assert_eq!(got.unwrap(), payload, "schema {schema} rejected");
            } else {
                assert!(
                    matches!(got, Err(WireError::Corrupt)),
                    "schema {schema} accepted"
                );
            }
        }
    }

    #[test]
    fn binary_payload_round_trips_bytes_exactly() {
        let mut bin = demo_binary();
        bin.text_base = 0x40_1000;
        bin.text = (0..255u8).collect();
        bin.functions.push(FuncSym {
            name: "main".into(),
            addr: 0x40_1000,
            size: 255,
        });
        bin.globals.push(Global {
            name: "g".into(),
            addr: 0x60_0000,
            size: 16,
            init: vec![1, 2, 3],
        });
        bin.externs.push(ExternSym {
            name: "printf".into(),
            addr: 0x50_0000,
        });
        let req = Request::Translate {
            version: Version::Opt,
            jobs: 0,
            bin,
        };
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }
}
