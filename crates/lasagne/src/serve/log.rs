//! The daemon's sampled structured request log.
//!
//! One JSON line per sampled request — enough to reconstruct what the
//! server did for a request without replaying a trace: the request id,
//! outcome, rung, payload sizes, and the admission-wait/service split.
//! The format is line-delimited JSON so standard tooling (`grep`,
//! `jq`-alikes, the in-tree [`lasagne_trace::json`] parser) consumes it
//! directly.
//!
//! Sampling is deterministic: with `sample = N`, exactly the requests
//! whose monotone id is a multiple of N are written (N ≤ 1 logs every
//! request). The file is size-capped: when appending a line would pass
//! `max_bytes`, the current file is renamed to `<path>.1` (replacing
//! any previous rotation) and a fresh file is started — the log's disk
//! footprint is bounded by roughly `2 × max_bytes`.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::Mutex;

use lasagne_trace::lock_clean;

/// Request-log configuration, carried in [`super::Config`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Log file path; rotation renames it to `<path>.1`.
    pub path: PathBuf,
    /// Write every Nth request (ids are 1-based; 0 and 1 both mean
    /// every request).
    pub sample: u64,
    /// Rotate when the current file would exceed this many bytes;
    /// 0 = never rotate.
    pub max_bytes: u64,
}

/// One sampled request, pre-serialization. `schema` is implicit: the
/// line format is [`RequestLine::SCHEMA`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLine {
    /// Monotone request id (1-based, all request kinds included).
    pub id: u64,
    /// `"ok"`, `"shed"`, `"timeout"`, `"error"`, `"stats"`,
    /// `"metrics"`, or `"shutdown"`.
    pub outcome: &'static str,
    /// The ladder rung for an `"ok"` outcome, else `None` (`null`).
    pub source: Option<&'static str>,
    /// Request frame payload bytes.
    pub bytes_in: u64,
    /// Response frame payload bytes.
    pub bytes_out: u64,
    /// Frame-complete → admission decision, in nanoseconds.
    pub wait_nanos: u64,
    /// Admission → response encoded, in nanoseconds.
    pub service_nanos: u64,
}

impl RequestLine {
    /// Line-format schema revision, written on every line.
    pub const SCHEMA: u32 = 1;

    /// The line as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"id\":{},\"outcome\":\"{}\",\"source\":{},\
             \"bytes_in\":{},\"bytes_out\":{},\"wait_nanos\":{},\"service_nanos\":{}}}",
            RequestLine::SCHEMA,
            self.id,
            self.outcome,
            match self.source {
                Some(s) => format!("\"{s}\""),
                None => "null".to_string(),
            },
            self.bytes_in,
            self.bytes_out,
            self.wait_nanos,
            self.service_nanos,
        )
    }
}

struct LogFile {
    file: File,
    written: u64,
}

/// An open, rotating request log. Writes are serialized behind one
/// mutex — the log is off the latency path for unsampled requests, and
/// a sampled write is one formatted line.
pub struct RequestLog {
    cfg: LogConfig,
    state: Mutex<LogFile>,
}

impl RequestLog {
    /// Opens (appending) or creates the log file.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(cfg: LogConfig) -> io::Result<RequestLog> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&cfg.path)?;
        let written = file.metadata()?.len();
        Ok(RequestLog {
            cfg,
            state: Mutex::new(LogFile { file, written }),
        })
    }

    /// Whether request `id` is in the sample.
    pub fn sampled(&self, id: u64) -> bool {
        self.cfg.sample <= 1 || id % self.cfg.sample == 0
    }

    /// Writes `line` if its id is sampled, rotating first when the
    /// append would pass the size cap. Errors are swallowed: the log is
    /// advisory and must never fail a request.
    pub fn record_sampled(&self, line: &RequestLine) {
        if !self.sampled(line.id) {
            return;
        }
        let mut text = line.to_json();
        text.push('\n');
        let mut g = lock_clean(&self.state);
        if self.cfg.max_bytes > 0
            && g.written > 0
            && g.written + text.len() as u64 > self.cfg.max_bytes
        {
            let rotated = {
                let mut p = self.cfg.path.clone().into_os_string();
                p.push(".1");
                PathBuf::from(p)
            };
            // Replace any previous rotation, then start fresh; if the
            // rename fails we keep appending to the oversized file
            // rather than losing lines.
            if std::fs::rename(&self.cfg.path, &rotated).is_ok() {
                if let Ok(f) = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.cfg.path)
                {
                    g.file = f;
                    g.written = 0;
                }
            }
        }
        if g.file.write_all(text.as_bytes()).is_ok() {
            g.written += text.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_trace::json;

    fn line(id: u64) -> RequestLine {
        RequestLine {
            id,
            outcome: "ok",
            source: Some("hot"),
            bytes_in: 100,
            bytes_out: 2000,
            wait_nanos: 50,
            service_nanos: 12345,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lasagne-log-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("requests.log")
    }

    #[test]
    fn line_schema_parses_with_all_fields() {
        let v = json::parse(&line(7).to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("source").unwrap().as_str(), Some("hot"));
        assert_eq!(v.get("bytes_in").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("bytes_out").unwrap().as_u64(), Some(2000));
        assert_eq!(v.get("wait_nanos").unwrap().as_u64(), Some(50));
        assert_eq!(v.get("service_nanos").unwrap().as_u64(), Some(12345));

        // A rung-less outcome serializes source as JSON null.
        let shed = RequestLine {
            outcome: "shed",
            source: None,
            ..line(8)
        };
        let v = json::parse(&shed.to_json()).unwrap();
        assert_eq!(v.get("source"), Some(&json::Json::Null));
    }

    #[test]
    fn sampling_writes_exactly_every_nth_request() {
        let path = tmp("sample");
        let log = RequestLog::open(LogConfig {
            path: path.clone(),
            sample: 3,
            max_bytes: 0,
        })
        .unwrap();
        for id in 1..=10 {
            log.record_sampled(&line(id));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let ids: Vec<u64> = text
            .lines()
            .map(|l| json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 6, 9]);
    }

    #[test]
    fn rotation_caps_the_file_and_keeps_one_generation() {
        let path = tmp("rotate");
        let one_line = line(1).to_json().len() as u64 + 1;
        let log = RequestLog::open(LogConfig {
            path: path.clone(),
            sample: 1,
            max_bytes: 3 * one_line, // room for three lines per generation
        })
        .unwrap();
        for id in 1..=8 {
            log.record_sampled(&line(id));
        }
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(path.with_extension("log.1")).unwrap();
        // 8 lines in generations of 3: rotations after 3 and 6, so the
        // rotated file holds ids 4..=6 and the live file 7..=8.
        let ids = |t: &str| -> Vec<u64> {
            t.lines()
                .map(|l| json::parse(l).unwrap().get("id").unwrap().as_u64().unwrap())
                .collect()
        };
        assert_eq!(ids(&old), vec![4, 5, 6]);
        assert_eq!(ids(&live), vec![7, 8]);
        assert!(live.len() as u64 <= 3 * one_line);
    }
}
