//! Translation-as-a-service: the `lasagne serve` daemon.
//!
//! A [`Server`] listens on a Unix or TCP socket for framed translation
//! requests ([`wire`]): a binary image plus a [`Version`] in, AArch64
//! assembly plus timings out, byte-identical to what `lasagne
//! translate` prints for the same image. Repeat requests are answered
//! through a three-rung lookup ladder:
//!
//! 1. **hot** — the sharded in-memory tier ([`hot::HotTier`]), a
//!    content-keyed map of finished assembly, LRU-bounded by bytes,
//!    with single-flight dedup (N concurrent requests for one key run
//!    one translation; the rest coalesce onto it);
//! 2. **disk** — the content-addressed on-disk cache (PR 3), reached
//!    through the ordinary [`Pipeline`] warm path;
//! 3. **cold** — a full pipeline run on the shared work-stealing pool.
//!
//! Degradation is explicit, never silent: a bounded admission count
//! sheds excess requests with a [`wire::Response::Shed`] instead of
//! queueing unboundedly, per-request deadlines turn into
//! [`wire::Response::Timeout`], a failed or panicked translation turns
//! into [`wire::Response::Error`] with all shared state intact
//! (`lock_clean` discipline — no lock is ever poisoned for the next
//! request), and shutdown drains in-flight work before the listener
//! thread exits.
//!
//! # Observability
//!
//! The daemon is instrumented with the same `crates/trace` layer the
//! batch pipeline uses, in four independent (and independently
//! switchable) forms — none of which changes a single response byte:
//!
//! * **Metrics (always on).** Every server owns a [`MetricsRegistry`]
//!   recording per-rung service-latency histograms
//!   (`serve.latency.{hot,coalesced,disk,cold}` — one observation per
//!   counted rung hit, so histogram totals reconcile *exactly* with
//!   [`ServeStats`]), admission queue wait, deadline remaining at
//!   dispatch, payload sizes, and hot-tier eviction churn. A
//!   [`wire::Request::Metrics`] frame returns the registry as JSON
//!   (with server-side p50/p99/p999 derived by
//!   [`lasagne_trace::Histogram::percentile`]) and as a Prometheus-style
//!   text exposition.
//! * **Per-request tracing (`Config::trace_out`).** Each connection is
//!   pinned to a stable trace track above the pipeline's worker tracks;
//!   each request opens a `serve`-category span carrying the request
//!   id, rung, and outcome, and a cold run threads the same [`TraceCtx`]
//!   into the pipeline so the six Figure 3 stage spans nest under the
//!   request that paid for them. The Chrome export is written on
//!   shutdown.
//! * **Sampled request log (`Config::log`).** Every Nth request appends
//!   one structured JSON line (id, outcome, rung, bytes, wait/service
//!   nanos) to a size-capped, rotating file — see [`log`].
//! * **Live watch.** `lasagne serve-watch` polls Stats + Metrics and
//!   renders interval deltas; the delta math lives in [`watch`].

pub mod client;
pub mod hot;
pub mod log;
pub mod watch;
pub mod wire;

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lasagne_trace::{lock_clean, set_current_track, MetricsRegistry, MetricsSnapshot, TraceCtx};
use lasagne_x86::binary::Binary;

use crate::pipeline::module_key;
use crate::{Pipeline, Version};
use hot::{HotTier, TierError};
use wire::{Request, Response, Source, WireError};

/// How long an idle connection read sleeps before re-checking the stop
/// flag; bounds shutdown latency for quiet connections.
const POLL: Duration = Duration::from_millis(25);

/// Histogram bounds for time observations (nanoseconds): doubling from
/// 1µs to ~8.4s, so any per-request duration the deadline allows lands
/// in a finite bucket and `Histogram::percentile` interpolates within
/// a factor-of-two band.
pub const LATENCY_BOUNDS: [u64; 24] = {
    let mut b = [0u64; 24];
    let mut i = 0;
    while i < 24 {
        b[i] = 1000u64 << i;
        i += 1;
    }
    b
};

/// Histogram bounds for payload sizes (bytes): doubling from 64 B to
/// 16 MiB (requests larger than [`wire::MAX_FRAME`] are refused, so the
/// overflow bucket stays empty in practice).
pub const SIZE_BOUNDS: [u64; 19] = {
    let mut b = [0u64; 19];
    let mut i = 0;
    while i < 19 {
        b[i] = 64u64 << i;
        i += 1;
    }
    b
};

/// How many distinct trace tracks connections rotate over. Connection
/// threads are short-lived and unbounded in number, so they share a
/// small ring of stable tracks above the pipeline's worker tracks
/// instead of minting one track per connection.
const CONN_TRACKS: u64 = 8;

/// Server configuration. The defaults suit an interactive daemon; the
/// bench and CI harnesses tighten `queue`/`hot_bytes` to force the
/// degraded paths.
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address: a filesystem path (Unix socket) or a
    /// `host:port` TCP address.
    pub addr: String,
    /// Worker threads per translation (the shared pool is sized to the
    /// max seen).
    pub jobs: usize,
    /// Hot-tier byte budget; 0 disables the tier entirely.
    pub hot_bytes: u64,
    /// Max requests in service at once; excess requests are shed.
    pub queue: usize,
    /// Per-request service deadline.
    pub timeout: Duration,
    /// On-disk cache directory; `None` = no disk tier.
    pub cache_dir: Option<PathBuf>,
    /// Chrome trace output path; `Some` enables per-request tracing and
    /// writes the export here when the daemon shuts down.
    pub trace_out: Option<PathBuf>,
    /// Sampled structured request log; `None` = no log.
    pub log: Option<log::LogConfig>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: String::new(),
            jobs: 1,
            hot_bytes: 64 << 20,
            queue: 64,
            timeout: Duration::from_secs(60),
            cache_dir: None,
            trace_out: None,
            log: None,
        }
    }
}

/// Lifetime counters, readable while the server runs and snapshotted
/// into the [`Request::Stats`] response.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Translation requests received (including shed/timed-out ones).
    pub requests: u64,
    /// Served from the resident hot tier.
    pub hot: u64,
    /// Coalesced onto another request's in-flight translation.
    pub coalesced: u64,
    /// Served through the on-disk cache's warm path.
    pub disk: u64,
    /// Full cold translations.
    pub cold: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that exceeded the service deadline.
    pub timeouts: u64,
    /// Requests that failed (translation error or panic).
    pub errors: u64,
    /// Hot-tier residency at snapshot time.
    pub hot_entries: u64,
    /// Hot-tier resident bytes at snapshot time.
    pub hot_bytes: u64,
    /// Hot-tier evictions, ever.
    pub hot_evictions: u64,
    /// Nanoseconds the server has been up at snapshot time.
    pub uptime_nanos: u64,
}

impl ServeStats {
    /// The Stats JSON body's schema revision. Tracks [`wire::SCHEMA`]:
    /// the body is versioned alongside the frames that carry it, so a
    /// consumer checks one number. Schema 2 added this field and
    /// `uptime_nanos`; every schema-1 field is unchanged in name and
    /// meaning.
    pub const JSON_SCHEMA: u32 = wire::SCHEMA;

    /// The stats as a single JSON object (the `Stats` response body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"requests\":{},\"hot\":{},\"coalesced\":{},\"disk\":{},\"cold\":{},\
             \"shed\":{},\"timeouts\":{},\"errors\":{},\
             \"hot_tier\":{{\"entries\":{},\"bytes\":{},\"evictions\":{}}},\
             \"uptime_nanos\":{}}}",
            ServeStats::JSON_SCHEMA,
            self.requests,
            self.hot,
            self.coalesced,
            self.disk,
            self.cold,
            self.shed,
            self.timeouts,
            self.errors,
            self.hot_entries,
            self.hot_bytes,
            self.hot_evictions,
            self.uptime_nanos,
        )
    }
}

/// Shared server state: configuration, the hot tier, admission and
/// lifecycle flags, and the counters. Connection threads hold an `Arc`.
struct Inner {
    cfg: Config,
    hot: HotTier,
    stop: AtomicBool,
    in_service: AtomicUsize,
    requests: AtomicU64,
    hits: [AtomicU64; 4], // indexed by Source discriminant order
    shed: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    /// Always-on metrics registry (shared with the hot tier).
    metrics: Arc<MetricsRegistry>,
    /// Per-request span collector; disabled unless `cfg.trace_out`.
    trace: TraceCtx,
    /// Sampled request log, when configured.
    log: Option<log::RequestLog>,
    /// Monotone request-id source (first request is id 1).
    ids: AtomicU64,
    /// Monotone connection counter feeding the trace-track ring.
    conns: AtomicU64,
    started: Instant,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        let tier = self.hot.stats();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            hot: self.hits[0].load(Ordering::Relaxed),
            coalesced: self.hits[1].load(Ordering::Relaxed),
            disk: self.hits[2].load(Ordering::Relaxed),
            cold: self.hits[3].load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            hot_entries: tier.entries,
            hot_bytes: tier.bytes,
            hot_evictions: tier.evictions,
            uptime_nanos: self.started.elapsed().as_nanos() as u64,
        }
    }

    /// First trace track of the connection ring: one past the largest
    /// track a pipeline worker can claim (slot `w` → track `w + 1`,
    /// and requested jobs are clamped to `cfg.jobs.max(1) * 4`).
    fn conn_track_base(&self) -> u64 {
        self.cfg.jobs.max(1) as u64 * 4 + 1
    }

    fn count_hit(&self, source: Source) {
        let idx = match source {
            Source::Hot => 0,
            Source::Coalesced => 1,
            Source::Disk => 2,
            Source::Cold => 3,
        };
        self.hits[idx].fetch_add(1, Ordering::Relaxed);
        // The rung's latency observation happens at the same decision
        // point (see `translate`), so histogram totals and these
        // counters reconcile exactly.
    }

    /// Runs one translation request through the lookup ladder and
    /// builds the response. Panics inside the pipeline are contained
    /// here; they count as errors and leave the tier clean.
    fn translate(&self, version: Version, jobs: u32, bin: &Binary) -> Response {
        let jobs = if jobs == 0 {
            self.cfg.jobs
        } else {
            (jobs as usize).min(self.cfg.jobs.max(1) * 4)
        };
        let key = module_key(bin, version);
        let t0 = Instant::now();
        let cfg = &self.cfg;
        let trace = &self.trace;
        let run = || -> Result<(Arc<String>, Source), String> {
            let mut p = Pipeline::new(version).with_jobs(jobs);
            if let Some(dir) = &cfg.cache_dir {
                p = p.with_cache(dir);
            }
            if trace.is_enabled() {
                // Cold-path stage spans nest under this request's span
                // tree in the shared collector.
                p = p.with_trace(trace.clone());
            }
            let (t, report) = p.run(bin).map_err(|e| e.to_string())?;
            let source = if report.cache.as_ref().is_some_and(|c| c.warm) {
                Source::Disk
            } else {
                Source::Cold
            };
            Ok((
                Arc::new(lasagne_armgen::print::print_module(&t.arm)),
                source,
            ))
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.hot.get_or_translate(key, cfg.timeout, run)
        }));
        let nanos = t0.elapsed().as_nanos() as u64;
        match outcome {
            Ok(Ok((asm, source))) => {
                if t0.elapsed() > cfg.timeout {
                    // Success past the deadline is a timeout, not a hit:
                    // neither the rung counter nor its histogram records.
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Response::Timeout;
                }
                self.count_hit(source);
                self.metrics.observe(
                    &format!("serve.latency.{}", source.name()),
                    &LATENCY_BOUNDS,
                    nanos,
                );
                Response::Ok {
                    source,
                    nanos,
                    asm: (*asm).clone(),
                }
            }
            Ok(Err(TierError::Timeout)) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                Response::Timeout
            }
            Ok(Err(TierError::Failed(msg))) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { msg }
            }
            Err(panic) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "translation panicked".to_string());
                Response::Error {
                    msg: format!("translation panicked: {msg}"),
                }
            }
        }
    }

    /// Handles one decoded request, admission included. `t_recv` is
    /// when the request's frame finished arriving; the returned nanos
    /// are the admission wait (frame-complete → service permit), zero
    /// for non-translation requests.
    fn serve_request(&self, req: Request, t_recv: Instant) -> (Response, u64) {
        match req {
            Request::Stats => (
                Response::Stats {
                    json: self.stats().to_json(),
                },
                0,
            ),
            Request::Metrics => (
                Response::Metrics {
                    json: self.metrics_json(),
                    prom: self.metrics_prom(),
                },
                0,
            ),
            Request::Shutdown => {
                self.stop.store(true, Ordering::Release);
                (Response::ShuttingDown, 0)
            }
            Request::Translate { version, jobs, bin } => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                if self.stop.load(Ordering::Acquire) {
                    return (Response::ShuttingDown, 0);
                }
                // Admission: take a service permit or shed. The counter
                // bounds *work in service*, hot hits included — the
                // response to overload is an explicit Shed the client
                // can react to, never an unbounded queue.
                let wait_span = self.trace.span("serve", "admission");
                let admitted = self
                    .in_service
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < self.cfg.queue).then_some(n + 1)
                    })
                    .is_ok();
                drop(wait_span);
                let wait = t_recv.elapsed().as_nanos() as u64;
                if !admitted {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return (Response::Shed, wait);
                }
                // One queue-wait and one deadline-remaining observation
                // per *admitted* request: their totals reconcile with
                // `requests - shed` (modulo shutdown races).
                self.metrics
                    .observe("serve.queue_wait", &LATENCY_BOUNDS, wait);
                let deadline = self.cfg.timeout.as_nanos() as u64;
                self.metrics.observe(
                    "serve.deadline_remaining",
                    &LATENCY_BOUNDS,
                    deadline.saturating_sub(wait),
                );
                let resp = self.translate(version, jobs, &bin);
                self.in_service.fetch_sub(1, Ordering::AcqRel);
                (resp, wait)
            }
        }
    }

    /// Serves one framed request end-to-end: decode, dispatch, encode —
    /// the single place where both payload sizes are known, so every
    /// per-request metric, span argument, and log line is emitted here.
    /// Returns the encoded response and whether it announced shutdown.
    fn handle_request(&self, payload: &[u8]) -> (Vec<u8>, bool) {
        let t_recv = Instant::now();
        let id = self.ids.fetch_add(1, Ordering::Relaxed) + 1;
        let mut span = self.trace.span("serve", "request");
        span.arg("id", id);
        let decoded = wire::decode_request(payload);
        let is_translate = matches!(decoded, Ok(Request::Translate { .. }));
        let (resp, wait_nanos) = match decoded {
            Ok(req) => self.serve_request(req, t_recv),
            Err(_) => (
                Response::Error {
                    msg: "malformed request".into(),
                },
                0,
            ),
        };
        let (outcome, source) = match &resp {
            Response::Ok { source, .. } => ("ok", Some(*source)),
            Response::Shed => ("shed", None),
            Response::Timeout => ("timeout", None),
            Response::Error { .. } => ("error", None),
            Response::Stats { .. } => ("stats", None),
            Response::Metrics { .. } => ("metrics", None),
            Response::ShuttingDown => ("shutdown", None),
        };
        let out = wire::encode_response(&resp);
        let total_nanos = t_recv.elapsed().as_nanos() as u64;
        if is_translate {
            self.metrics
                .observe("serve.bytes_in", &SIZE_BOUNDS, payload.len() as u64);
            self.metrics
                .observe("serve.bytes_out", &SIZE_BOUNDS, out.len() as u64);
        }
        if self.trace.is_enabled() {
            span.arg("outcome", outcome);
            if let Some(s) = source {
                span.arg("rung", s.name());
            }
            span.arg("bytes_in", payload.len());
            span.arg("bytes_out", out.len());
        }
        drop(span);
        if let Some(log) = &self.log {
            log.record_sampled(&log::RequestLine {
                id,
                outcome,
                source: source.map(Source::name),
                bytes_in: payload.len() as u64,
                bytes_out: out.len() as u64,
                wait_nanos,
                service_nanos: total_nanos.saturating_sub(wait_nanos),
            });
        }
        (out, matches!(resp, Response::ShuttingDown))
    }

    /// The Metrics response's JSON body: versioned, with the stats
    /// snapshot, the raw registry, and derived percentiles per
    /// histogram.
    fn metrics_json(&self) -> String {
        let snap = self.metrics.snapshot();
        let mut s = format!(
            "{{\"schema\":{},\"stats\":{},\"metrics\":{}",
            ServeStats::JSON_SCHEMA,
            self.stats().to_json(),
            snap.to_json()
        );
        s.push_str(",\"percentiles\":{");
        for (i, (name, h)) in snap.histos.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{}:{{\"p50\":{},\"p99\":{},\"p999\":{},\"mean\":{:.1}}}",
                lasagne_trace::json::escape(name),
                h.percentile(50.0),
                h.percentile(99.0),
                h.percentile(99.9),
                h.mean(),
            ));
        }
        s.push_str("}}");
        s
    }

    /// The Metrics response's Prometheus-style text exposition:
    /// `lasagne_serve_*` counters from [`ServeStats`], every registry
    /// counter, and every histogram in cumulative-bucket form
    /// (`_bucket{le=...}` / `_sum` / `_count`).
    fn metrics_prom(&self) -> String {
        fn metric_name(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 8);
            out.push_str("lasagne_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let st = self.stats();
        let mut s = String::new();
        for (name, v) in [
            ("serve.requests", st.requests),
            ("serve.hits.hot", st.hot),
            ("serve.hits.coalesced", st.coalesced),
            ("serve.hits.disk", st.disk),
            ("serve.hits.cold", st.cold),
            ("serve.shed", st.shed),
            ("serve.timeouts", st.timeouts),
            ("serve.errors", st.errors),
            ("serve.hot.entries", st.hot_entries),
            ("serve.hot.bytes", st.hot_bytes),
            ("serve.uptime_nanos", st.uptime_nanos),
        ] {
            let n = metric_name(name);
            s.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        let snap = self.metrics.snapshot();
        for (name, v) in &snap.counters {
            let n = metric_name(name);
            s.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, h) in &snap.histos {
            let n = metric_name(name);
            s.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, c) in h.counts.iter().enumerate() {
                cum += c;
                match h.bounds.get(i) {
                    Some(b) => s.push_str(&format!("{n}_bucket{{le=\"{b}\"}} {cum}\n")),
                    None => s.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n")),
                }
            }
            s.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.total()));
        }
        s
    }
}

/// One end of the listening socket.
enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// One accepted connection.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(Some(d)),
            Stream::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The daemon: a bound listener plus the shared state. [`Server::run`]
/// blocks until a shutdown request arrives (or [`ServerHandle::stop`]
/// fires), drains, and returns the final counters.
pub struct Server {
    inner: Arc<Inner>,
    listener: Listener,
    /// The resolved listen address (`path` or `host:port` — useful when
    /// binding TCP port 0).
    addr: String,
}

impl Server {
    /// Binds `cfg.addr`. An address containing a `:` that parses as a
    /// socket address binds TCP; anything else is a Unix socket path
    /// (a stale socket file from a dead daemon is replaced).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: Config) -> io::Result<Server> {
        let (listener, addr) = if cfg.addr.parse::<std::net::SocketAddr>().is_ok() {
            let l = TcpListener::bind(&cfg.addr)?;
            l.set_nonblocking(true)?;
            let addr = l.local_addr()?.to_string();
            (Listener::Tcp(l), addr)
        } else {
            let path = PathBuf::from(&cfg.addr);
            if path.exists() {
                // A live daemon would hold the bind; a leftover file
                // from a killed one must not block restart.
                std::fs::remove_file(&path)?;
            }
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            let addr = cfg.addr.clone();
            (Listener::Unix(l, path), addr)
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let trace = if cfg.trace_out.is_some() {
            TraceCtx::collecting()
        } else {
            TraceCtx::disabled()
        };
        let log = match &cfg.log {
            Some(lc) => Some(log::RequestLog::open(lc.clone())?),
            None => None,
        };
        let inner = Arc::new(Inner {
            hot: HotTier::new(cfg.hot_bytes).with_metrics(Arc::clone(&metrics)),
            cfg,
            stop: AtomicBool::new(false),
            in_service: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            hits: Default::default(),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            metrics,
            trace,
            log,
            ids: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            started: Instant::now(),
        });
        // Name every track the export can use up front: pipeline worker
        // slots plus the connection ring, so `trace-check` sees a name
        // for each track even if a slot never records.
        inner
            .trace
            .declare_tracks((inner.conn_track_base() + CONN_TRACKS - 1) as u32);
        Ok(Server {
            inner,
            listener,
            addr,
        })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Accepts and serves connections until shutdown, then drains every
    /// connection thread and removes the Unix socket file. Returns the
    /// final counters.
    pub fn run(self) -> ServeStats {
        let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
        while !self.inner.stop.load(Ordering::Acquire) {
            let accepted = match &self.listener {
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match accepted {
                Ok(stream) => {
                    let inner = Arc::clone(&self.inner);
                    let mut g = lock_clean(&conns);
                    // Reap finished threads so a long-lived daemon does
                    // not accumulate handles.
                    g.retain(|h| !h.is_finished());
                    g.push(std::thread::spawn(move || handle_conn(inner, stream)));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        // Drain: connection threads notice the stop flag at their next
        // idle poll (or finish their in-flight request first).
        for h in lock_clean(&conns).drain(..) {
            let _ = h.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        // Flush the per-request span tree on the way out; the daemon is
        // drained, so the export is complete and stable.
        if let (Some(path), Some(json)) =
            (&self.inner.cfg.trace_out, self.inner.trace.chrome_json())
        {
            let _ = std::fs::write(path, json);
        }
        self.inner.stats()
    }

    /// Binds and runs the server on a background thread; the returned
    /// handle can stop it and collect the final stats. This is how the
    /// bench harness and tests host an in-process daemon.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(cfg: Config) -> io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.addr.clone();
        let inner = Arc::clone(&server.inner);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            inner,
            thread,
            addr,
        })
    }
}

/// Handle to a daemon spawned with [`Server::spawn`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    thread: JoinHandle<ServeStats>,
    addr: String,
}

impl ServerHandle {
    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Counters so far (the daemon keeps running).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// A merged snapshot of the daemon's metrics registry (the same
    /// data a [`wire::Request::Metrics`] frame returns, pre-parse).
    /// This is how the bench harness reads server-side histograms
    /// without going through the socket.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Requests shutdown, waits for the drain, and returns the final
    /// counters.
    pub fn stop(self) -> ServeStats {
        self.inner.stop.store(true, Ordering::Release);
        self.thread.join().unwrap_or_default()
    }
}

/// Serves one connection: a sequence of frames, each answered in order.
/// Every exit path leaves shared state clean — a torn frame or dead
/// peer just ends this connection.
fn handle_conn(inner: Arc<Inner>, mut stream: Stream) {
    let _ = stream.set_read_timeout(POLL);
    // Pin this connection to a stable track from the ring above the
    // pipeline's worker tracks, so its request spans land on one named
    // row in the Chrome export instead of scattering per OS thread.
    let conn = inner.conns.fetch_add(1, Ordering::Relaxed);
    let track = inner.conn_track_base() + conn % CONN_TRACKS;
    set_current_track(track as u32);
    inner
        .trace
        .instant("serve", "conn-accept", vec![("conn", conn.into())]);
    let stop = {
        let inner = Arc::clone(&inner);
        move || inner.stop.load(Ordering::Acquire)
    };
    loop {
        let payload = match wire::read_frame_poll(&mut stream, &stop) {
            Ok(p) => p,
            Err(WireError::Closed) | Err(WireError::Stopped) => return,
            Err(WireError::Corrupt) => {
                let resp = Response::Error {
                    msg: "corrupt frame".into(),
                };
                let _ = wire::write_frame(&mut stream, &wire::encode_response(&resp));
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        let (out, shutting_down) = inner.handle_request(&payload);
        if wire::write_frame(&mut stream, &out).is_err() {
            return;
        }
        if shutting_down {
            return;
        }
    }
}
