//! Translation-as-a-service: the `lasagne serve` daemon.
//!
//! A [`Server`] listens on a Unix or TCP socket for framed translation
//! requests ([`wire`]): a binary image plus a [`Version`] in, AArch64
//! assembly plus timings out, byte-identical to what `lasagne
//! translate` prints for the same image. Repeat requests are answered
//! through a three-rung lookup ladder:
//!
//! 1. **hot** — the sharded in-memory tier ([`hot::HotTier`]), a
//!    content-keyed map of finished assembly, LRU-bounded by bytes,
//!    with single-flight dedup (N concurrent requests for one key run
//!    one translation; the rest coalesce onto it);
//! 2. **disk** — the content-addressed on-disk cache (PR 3), reached
//!    through the ordinary [`Pipeline`] warm path;
//! 3. **cold** — a full pipeline run on the shared work-stealing pool.
//!
//! Degradation is explicit, never silent: a bounded admission count
//! sheds excess requests with a [`wire::Response::Shed`] instead of
//! queueing unboundedly, per-request deadlines turn into
//! [`wire::Response::Timeout`], a failed or panicked translation turns
//! into [`wire::Response::Error`] with all shared state intact
//! (`lock_clean` discipline — no lock is ever poisoned for the next
//! request), and shutdown drains in-flight work before the listener
//! thread exits.

pub mod client;
pub mod hot;
pub mod wire;

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lasagne_trace::lock_clean;
use lasagne_x86::binary::Binary;

use crate::pipeline::module_key;
use crate::{Pipeline, Version};
use hot::{HotTier, TierError};
use wire::{Request, Response, Source, WireError};

/// How long an idle connection read sleeps before re-checking the stop
/// flag; bounds shutdown latency for quiet connections.
const POLL: Duration = Duration::from_millis(25);

/// Server configuration. The defaults suit an interactive daemon; the
/// bench and CI harnesses tighten `queue`/`hot_bytes` to force the
/// degraded paths.
#[derive(Debug, Clone)]
pub struct Config {
    /// Listen address: a filesystem path (Unix socket) or a
    /// `host:port` TCP address.
    pub addr: String,
    /// Worker threads per translation (the shared pool is sized to the
    /// max seen).
    pub jobs: usize,
    /// Hot-tier byte budget; 0 disables the tier entirely.
    pub hot_bytes: u64,
    /// Max requests in service at once; excess requests are shed.
    pub queue: usize,
    /// Per-request service deadline.
    pub timeout: Duration,
    /// On-disk cache directory; `None` = no disk tier.
    pub cache_dir: Option<PathBuf>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: String::new(),
            jobs: 1,
            hot_bytes: 64 << 20,
            queue: 64,
            timeout: Duration::from_secs(60),
            cache_dir: None,
        }
    }
}

/// Lifetime counters, readable while the server runs and snapshotted
/// into the [`Request::Stats`] response.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Translation requests received (including shed/timed-out ones).
    pub requests: u64,
    /// Served from the resident hot tier.
    pub hot: u64,
    /// Coalesced onto another request's in-flight translation.
    pub coalesced: u64,
    /// Served through the on-disk cache's warm path.
    pub disk: u64,
    /// Full cold translations.
    pub cold: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Requests that exceeded the service deadline.
    pub timeouts: u64,
    /// Requests that failed (translation error or panic).
    pub errors: u64,
    /// Hot-tier residency at snapshot time.
    pub hot_entries: u64,
    /// Hot-tier resident bytes at snapshot time.
    pub hot_bytes: u64,
    /// Hot-tier evictions, ever.
    pub hot_evictions: u64,
}

impl ServeStats {
    /// The stats as a single JSON object (the `Stats` response body).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"hot\":{},\"coalesced\":{},\"disk\":{},\"cold\":{},\
             \"shed\":{},\"timeouts\":{},\"errors\":{},\
             \"hot_tier\":{{\"entries\":{},\"bytes\":{},\"evictions\":{}}}}}",
            self.requests,
            self.hot,
            self.coalesced,
            self.disk,
            self.cold,
            self.shed,
            self.timeouts,
            self.errors,
            self.hot_entries,
            self.hot_bytes,
            self.hot_evictions,
        )
    }
}

/// Shared server state: configuration, the hot tier, admission and
/// lifecycle flags, and the counters. Connection threads hold an `Arc`.
struct Inner {
    cfg: Config,
    hot: HotTier,
    stop: AtomicBool,
    in_service: AtomicUsize,
    requests: AtomicU64,
    hits: [AtomicU64; 4], // indexed by Source discriminant order
    shed: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        let tier = self.hot.stats();
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            hot: self.hits[0].load(Ordering::Relaxed),
            coalesced: self.hits[1].load(Ordering::Relaxed),
            disk: self.hits[2].load(Ordering::Relaxed),
            cold: self.hits[3].load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            hot_entries: tier.entries,
            hot_bytes: tier.bytes,
            hot_evictions: tier.evictions,
        }
    }

    fn count_hit(&self, source: Source) {
        let idx = match source {
            Source::Hot => 0,
            Source::Coalesced => 1,
            Source::Disk => 2,
            Source::Cold => 3,
        };
        self.hits[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Runs one translation request through the lookup ladder and
    /// builds the response. Panics inside the pipeline are contained
    /// here; they count as errors and leave the tier clean.
    fn translate(&self, version: Version, jobs: u32, bin: &Binary) -> Response {
        let jobs = if jobs == 0 {
            self.cfg.jobs
        } else {
            (jobs as usize).min(self.cfg.jobs.max(1) * 4)
        };
        let key = module_key(bin, version);
        let t0 = Instant::now();
        let cfg = &self.cfg;
        let run = || -> Result<(Arc<String>, Source), String> {
            let mut p = Pipeline::new(version).with_jobs(jobs);
            if let Some(dir) = &cfg.cache_dir {
                p = p.with_cache(dir);
            }
            let (t, report) = p.run(bin).map_err(|e| e.to_string())?;
            let source = if report.cache.as_ref().is_some_and(|c| c.warm) {
                Source::Disk
            } else {
                Source::Cold
            };
            Ok((
                Arc::new(lasagne_armgen::print::print_module(&t.arm)),
                source,
            ))
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.hot.get_or_translate(key, cfg.timeout, run)
        }));
        let nanos = t0.elapsed().as_nanos() as u64;
        match outcome {
            Ok(Ok((asm, source))) => {
                if t0.elapsed() > cfg.timeout {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    return Response::Timeout;
                }
                self.count_hit(source);
                Response::Ok {
                    source,
                    nanos,
                    asm: (*asm).clone(),
                }
            }
            Ok(Err(TierError::Timeout)) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                Response::Timeout
            }
            Ok(Err(TierError::Failed(msg))) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { msg }
            }
            Err(panic) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "translation panicked".to_string());
                Response::Error {
                    msg: format!("translation panicked: {msg}"),
                }
            }
        }
    }

    /// Handles one request, admission included.
    fn serve_request(&self, req: Request) -> Response {
        match req {
            Request::Stats => Response::Stats {
                json: self.stats().to_json(),
            },
            Request::Shutdown => {
                self.stop.store(true, Ordering::Release);
                Response::ShuttingDown
            }
            Request::Translate { version, jobs, bin } => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                if self.stop.load(Ordering::Acquire) {
                    return Response::ShuttingDown;
                }
                // Admission: take a service permit or shed. The counter
                // bounds *work in service*, hot hits included — the
                // response to overload is an explicit Shed the client
                // can react to, never an unbounded queue.
                let admitted = self
                    .in_service
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                        (n < self.cfg.queue).then_some(n + 1)
                    })
                    .is_ok();
                if !admitted {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Response::Shed;
                }
                let resp = self.translate(version, jobs, &bin);
                self.in_service.fetch_sub(1, Ordering::AcqRel);
                resp
            }
        }
    }
}

/// One end of the listening socket.
enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

/// One accepted connection.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(Some(d)),
            Stream::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The daemon: a bound listener plus the shared state. [`Server::run`]
/// blocks until a shutdown request arrives (or [`ServerHandle::stop`]
/// fires), drains, and returns the final counters.
pub struct Server {
    inner: Arc<Inner>,
    listener: Listener,
    /// The resolved listen address (`path` or `host:port` — useful when
    /// binding TCP port 0).
    addr: String,
}

impl Server {
    /// Binds `cfg.addr`. An address containing a `:` that parses as a
    /// socket address binds TCP; anything else is a Unix socket path
    /// (a stale socket file from a dead daemon is replaced).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: Config) -> io::Result<Server> {
        let (listener, addr) = if cfg.addr.parse::<std::net::SocketAddr>().is_ok() {
            let l = TcpListener::bind(&cfg.addr)?;
            l.set_nonblocking(true)?;
            let addr = l.local_addr()?.to_string();
            (Listener::Tcp(l), addr)
        } else {
            let path = PathBuf::from(&cfg.addr);
            if path.exists() {
                // A live daemon would hold the bind; a leftover file
                // from a killed one must not block restart.
                std::fs::remove_file(&path)?;
            }
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            let addr = cfg.addr.clone();
            (Listener::Unix(l, path), addr)
        };
        let inner = Arc::new(Inner {
            hot: HotTier::new(cfg.hot_bytes),
            cfg,
            stop: AtomicBool::new(false),
            in_service: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            hits: Default::default(),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        Ok(Server {
            inner,
            listener,
            addr,
        })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Accepts and serves connections until shutdown, then drains every
    /// connection thread and removes the Unix socket file. Returns the
    /// final counters.
    pub fn run(self) -> ServeStats {
        let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
        while !self.inner.stop.load(Ordering::Acquire) {
            let accepted = match &self.listener {
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            };
            match accepted {
                Ok(stream) => {
                    let inner = Arc::clone(&self.inner);
                    let mut g = lock_clean(&conns);
                    // Reap finished threads so a long-lived daemon does
                    // not accumulate handles.
                    g.retain(|h| !h.is_finished());
                    g.push(std::thread::spawn(move || handle_conn(inner, stream)));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        // Drain: connection threads notice the stop flag at their next
        // idle poll (or finish their in-flight request first).
        for h in lock_clean(&conns).drain(..) {
            let _ = h.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        self.inner.stats()
    }

    /// Binds and runs the server on a background thread; the returned
    /// handle can stop it and collect the final stats. This is how the
    /// bench harness and tests host an in-process daemon.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(cfg: Config) -> io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let addr = server.addr.clone();
        let inner = Arc::clone(&server.inner);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            inner,
            thread,
            addr,
        })
    }
}

/// Handle to a daemon spawned with [`Server::spawn`].
pub struct ServerHandle {
    inner: Arc<Inner>,
    thread: JoinHandle<ServeStats>,
    addr: String,
}

impl ServerHandle {
    /// The resolved listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Counters so far (the daemon keeps running).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Requests shutdown, waits for the drain, and returns the final
    /// counters.
    pub fn stop(self) -> ServeStats {
        self.inner.stop.store(true, Ordering::Release);
        self.thread.join().unwrap_or_default()
    }
}

/// Serves one connection: a sequence of frames, each answered in order.
/// Every exit path leaves shared state clean — a torn frame or dead
/// peer just ends this connection.
fn handle_conn(inner: Arc<Inner>, mut stream: Stream) {
    let _ = stream.set_read_timeout(POLL);
    let stop = {
        let inner = Arc::clone(&inner);
        move || inner.stop.load(Ordering::Acquire)
    };
    loop {
        let payload = match wire::read_frame_poll(&mut stream, &stop) {
            Ok(p) => p,
            Err(WireError::Closed) | Err(WireError::Stopped) => return,
            Err(WireError::Corrupt) => {
                let resp = Response::Error {
                    msg: "corrupt frame".into(),
                };
                let _ = wire::write_frame(&mut stream, &wire::encode_response(&resp));
                return;
            }
            Err(WireError::Io(_)) => return,
        };
        let resp = match wire::decode_request(&payload) {
            Ok(req) => inner.serve_request(req),
            Err(_) => Response::Error {
                msg: "malformed request".into(),
            },
        };
        let shutting_down = matches!(resp, Response::ShuttingDown);
        if wire::write_frame(&mut stream, &wire::encode_response(&resp)).is_err() {
            return;
        }
        if shutting_down {
            return;
        }
    }
}
