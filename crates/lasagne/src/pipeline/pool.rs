//! A long-lived, std-only work-stealing thread pool shared by every
//! parallel section of the pipeline.
//!
//! Before this module existed, every parallel section spawned fresh
//! [`std::thread::scope`] workers and joined them at the section's end.
//! At Phoenix scale that overhead dominated: `BENCH_pipeline.json`
//! recorded jobs=4 running at 0.68× of jobs=1, with milliseconds of
//! spawn cost and barrier wait for microseconds of work per function.
//! A [`Pool`] amortizes the spawn: worker threads are created once
//! (lazily, growing to the largest `jobs` ever requested), then park on a
//! condition variable between sections and are woken by task submission.
//!
//! # Structure
//!
//! * One global **injector** queue receives tasks submitted from threads
//!   outside the pool (the pipeline orchestrator, test harnesses).
//! * One **deque per worker slot** receives tasks submitted *by* that
//!   worker (nested `par_map` calls, e.g. a litmus sweep inside a
//!   pipeline stage). A worker pops its own deque LIFO for locality and
//!   **steals** FIFO from its siblings when idle.
//! * Idle workers **park** under an epoch-guarded condvar: a worker reads
//!   the wake epoch, re-scans every queue, and only sleeps if the epoch
//!   is unchanged — a submission bumps the epoch first and then notifies,
//!   so the classic lost-wakeup race cannot occur (a bounded
//!   `wait_timeout` re-scan backstops it regardless).
//!
//! # Invariants
//!
//! * **Slot-stable trace tracks.** Worker slot `w` calls
//!   [`lasagne_trace::set_current_track`]`(w + 1)` exactly once at spawn,
//!   so a Chrome trace shows one stable track per pool slot for the whole
//!   process lifetime (track 0 is the submitting thread).
//! * **Panic propagation.** A panic inside a [`Pool::par_map`] work item
//!   is caught in the executing worker, carried across the pool, and
//!   re-raised with [`std::panic::resume_unwind`] on the *calling*
//!   thread — a panicking work item surfaces as a pipeline panic, never
//!   as a hang or a dead worker. [`Pool::shutdown`] additionally joins
//!   every worker thread and propagates any worker-loop panic.
//! * **No work after join.** `par_map` returns only once every one of its
//!   runner tasks has signalled completion; no closure reference escapes
//!   the call. Blocked callers *help*: while waiting they pop and execute
//!   queued tasks, which is what makes nested `par_map` (work items that
//!   themselves fan out on the same pool) deadlock-free — every queued
//!   task is eventually executed by some non-blocked thread, and a
//!   runner queued after its section already drained exits immediately.
//! * **Determinism.** The pool schedules *when and where* a work item
//!   runs, never what it computes; [`Pool::par_map`] writes result `i`
//!   into slot `i`, so output order is input order for every `jobs`
//!   value and every steal pattern.
//!
//! # Example
//!
//! ```
//! use lasagne::pipeline::pool::Pool;
//!
//! let squares = Pool::shared().par_map(4, (0..64u64).collect(), |_, v| v * v);
//! assert_eq!(squares, (0..64u64).map(|v| v * v).collect::<Vec<_>>());
//!
//! // Nested fan-out on the same pool is fine: blocked callers execute
//! // queued tasks instead of idling.
//! let nested = Pool::shared().par_map(4, (0..8u64).collect(), |_, v| {
//!     Pool::shared()
//!         .par_map(4, (0..8u64).collect(), move |_, w| v * w)
//!         .into_iter()
//!         .sum::<u64>()
//! });
//! assert_eq!(nested[3], 3 * 28);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lasagne_trace::{lock_clean, Histogram};

/// A queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Inclusive upper bounds of the queue-depth histogram buckets: the
/// number of already-pending tasks observed at each submission. Depth 0
/// means the pool was drained when the task arrived (workers keep up);
/// sustained high buckets mean sections are submitting faster than the
/// workers retire.
pub const QUEUE_DEPTH_BOUNDS: [u64; 7] = [0, 1, 2, 4, 8, 16, 32];

thread_local! {
    /// `(pool identity, slot + 1)` of the pool worker running this
    /// thread; `(0, 0)` for non-workers. Routes nested submissions to the
    /// worker's own deque.
    static WORKER: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
}

/// Counters and queue-depth buckets describing everything a [`Pool`] has
/// done so far (monotonic since pool creation, except `workers`).
/// Snapshot before and after a region and subtract with
/// [`PoolStats::since`] to attribute activity to that region — this is
/// how the `--timings` schema-4 `"pool"` block is produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently spawned.
    pub workers: u64,
    /// Tasks ever submitted.
    pub submitted: u64,
    /// Tasks ever executed (by a worker or by a helping caller).
    pub executed: u64,
    /// Tasks taken from **another** thread's deque: a sibling worker (or
    /// an external helping caller) draining a worker's deque because its
    /// own queues were empty. Injector pickups are not steals, and a
    /// worker popping its *own* deque — directly or while helping a
    /// nested join — is not a steal either. A schedule whose fan-outs are
    /// all submitted by the orchestrator therefore legitimately records
    /// zero steals: every task lands in the injector and is claimed
    /// injector-first. Steals only appear when nested sections load a
    /// worker's deque faster than its owner can drain it.
    pub steals: u64,
    /// Times a worker went to sleep with every queue empty.
    pub parks: u64,
    /// Pending-task depth observed at each submission, bucketed by
    /// [`QUEUE_DEPTH_BOUNDS`].
    pub queue_depth: Histogram,
}

impl PoolStats {
    /// The activity recorded in `self` but not in `earlier` (`workers` is
    /// kept from `self` — it is a level, not a counter).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            workers: self.workers,
            submitted: self.submitted.saturating_sub(earlier.submitted),
            executed: self.executed.saturating_sub(earlier.executed),
            steals: self.steals.saturating_sub(earlier.steals),
            parks: self.parks.saturating_sub(earlier.parks),
            queue_depth: self.queue_depth.diff(&earlier.queue_depth),
        }
    }
}

/// Completion latch for one `par_map` section: counts outstanding runner
/// tasks; the last one notifies the (possibly sleeping) caller.
struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
}

/// Signals `latch` when dropped — runs even if the runner unwinds, which
/// is what keeps a panicking work item from hanging its section.
struct SignalOnDrop(Arc<Latch>);

impl Drop for SignalOnDrop {
    fn drop(&mut self) {
        let mut left = lock_clean(&self.0.left);
        *left -= 1;
        if *left == 0 {
            self.0.cv.notify_all();
        }
    }
}

struct Inner {
    /// Tasks submitted from outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker slot; workers push nested submissions here.
    /// The list only grows (up to the largest requested worker count).
    deques: Mutex<Vec<Arc<Mutex<VecDeque<Task>>>>>,
    /// Join handles of spawned workers, indexed by slot.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Wake epoch: bumped (then broadcast) by every submission, read by
    /// workers before scanning queues so a concurrent submission is never
    /// missed by a parking worker.
    wake: Mutex<u64>,
    wake_cv: Condvar,
    shutdown: AtomicBool,
    /// Submitted-but-not-yet-executed task count (the queue depth).
    pending: AtomicUsize,
    submitted: AtomicU64,
    executed: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    depth: Mutex<Histogram>,
}

impl Inner {
    fn identity(self: &Arc<Inner>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// The worker slot of the current thread, if it is one of *this*
    /// pool's workers. Used both to route nested submissions to the
    /// submitting worker's own deque and to let a worker that blocks on a
    /// nested join keep draining its own deque LIFO — without counting
    /// those pops as steals.
    fn current_slot(self: &Arc<Inner>) -> Option<usize> {
        let me = self.identity();
        WORKER.with(|w| {
            let (pool, slot) = w.get();
            if pool == me && slot > 0 {
                Some(slot - 1)
            } else {
                None
            }
        })
    }

    /// Queues `task` and wakes the workers. A submission from a pool
    /// worker goes to that worker's own deque (popped LIFO for locality,
    /// stolen FIFO by siblings); everything else goes to the injector.
    fn submit(self: &Arc<Inner>, task: Task) {
        let depth = self.pending.fetch_add(1, Ordering::Relaxed);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        lock_clean(&self.depth).record(depth as u64);
        let mut task = Some(task);
        let own = self.current_slot();
        if let Some(w) = own {
            let deque = lock_clean(&self.deques).get(w).cloned();
            if let Some(d) = deque {
                lock_clean(&d).push_back(task.take().expect("task not yet queued"));
            }
        }
        if let Some(t) = task.take() {
            lock_clean(&self.injector).push_back(t);
        }
        *lock_clean(&self.wake) += 1;
        self.wake_cv.notify_all();
    }

    /// Pops a task: own deque (LIFO) → injector (FIFO) → steal from a
    /// sibling deque (FIFO). `slot` is `None` for helping callers that
    /// are not pool workers; only the sibling-deque pickup counts as a
    /// steal.
    fn find_task(&self, slot: Option<usize>) -> Option<Task> {
        if let Some(w) = slot {
            let own = lock_clean(&self.deques).get(w).cloned();
            if let Some(d) = own {
                if let Some(t) = lock_clean(&d).pop_back() {
                    return Some(t);
                }
            }
        }
        if let Some(t) = lock_clean(&self.injector).pop_front() {
            return Some(t);
        }
        let deques: Vec<Arc<Mutex<VecDeque<Task>>>> = lock_clean(&self.deques).clone();
        for (j, d) in deques.iter().enumerate() {
            if slot == Some(j) {
                continue;
            }
            if let Some(t) = lock_clean(d).pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Runs one task, absorbing its panic: runner closures carry their
    /// own panic payload back to the section's caller (see
    /// [`Pool::par_map`]), so the worker thread itself must survive.
    fn execute(&self, task: Task) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

fn worker_main(inner: Arc<Inner>, slot: usize) {
    // One stable Chrome-trace track per pool slot, for the lifetime of
    // the process (track 0 is the orchestrator).
    lasagne_trace::set_current_track(slot as u32 + 1);
    let me = inner.identity();
    WORKER.with(|w| w.set((me, slot + 1)));
    loop {
        let epoch = *lock_clean(&inner.wake);
        if let Some(t) = inner.find_task(Some(slot)) {
            inner.execute(t);
            continue;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = lock_clean(&inner.wake);
        if *guard == epoch {
            // Nothing arrived since the scan began; park. The timeout is
            // a belt-and-braces re-scan, not a correctness requirement.
            inner.parks.fetch_add(1, Ordering::Relaxed);
            let _ = inner
                .wake_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A handle to a work-stealing pool; clones share the same workers.
/// See the [module docs](self) for structure and invariants.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &lock_clean(&self.inner.handles).len())
            .field("pending", &self.inner.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl Pool {
    /// Creates a private pool with `workers` threads spawned up front
    /// (possibly zero — [`Pool::par_map`] grows the pool on demand).
    /// Prefer [`Pool::shared`] outside of tests: one process-wide pool
    /// keeps the worker count bounded and the caches warm.
    pub fn new(workers: usize) -> Pool {
        let pool = Pool {
            inner: Arc::new(Inner {
                injector: Mutex::new(VecDeque::new()),
                deques: Mutex::new(Vec::new()),
                handles: Mutex::new(Vec::new()),
                wake: Mutex::new(0),
                wake_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                pending: AtomicUsize::new(0),
                submitted: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                depth: Mutex::new(Histogram::new(&QUEUE_DEPTH_BOUNDS)),
            }),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide shared pool: spawned lazily, grown to the largest
    /// worker count any caller has requested, never shut down. Every
    /// [`Pipeline`](super::Pipeline) and every
    /// [`par_map`](super::par_map) call rides this pool by default, so
    /// one `report` sweep, a `difftest` run, and nested litmus
    /// enumerations all reuse the same threads.
    pub fn shared() -> &'static Pool {
        static SHARED: OnceLock<Pool> = OnceLock::new();
        SHARED.get_or_init(|| Pool::new(0))
    }

    /// Grows the pool to at least `n` workers (never shrinks; no-op after
    /// [`Pool::shutdown`]).
    pub fn ensure_workers(&self, n: usize) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut handles = lock_clean(&self.inner.handles);
        let current = handles.len();
        if current >= n {
            return;
        }
        {
            let mut deques = lock_clean(&self.inner.deques);
            while deques.len() < n {
                deques.push(Arc::new(Mutex::new(VecDeque::new())));
            }
        }
        for slot in current..n {
            let inner = Arc::clone(&self.inner);
            let h = std::thread::Builder::new()
                .name(format!("lasagne-pool-{slot}"))
                .spawn(move || worker_main(inner, slot))
                .expect("spawn pool worker");
            handles.push(h);
        }
    }

    /// Worker threads currently spawned.
    pub fn workers(&self) -> usize {
        lock_clean(&self.inner.handles).len()
    }

    /// A snapshot of the pool's lifetime counters and queue-depth
    /// buckets. Pair two snapshots with [`PoolStats::since`] to measure
    /// one region.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers() as u64,
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            executed: self.inner.executed.load(Ordering::Relaxed),
            steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            queue_depth: lock_clean(&self.inner.depth).clone(),
        }
    }

    /// Maps `f` over `items` on up to `jobs` pool workers, returning
    /// results in input order. Result `i` lands in slot `i`, so the
    /// output is byte-identical for every `jobs` value and every steal
    /// pattern; with `jobs <= 1` (or at most one item) this degenerates
    /// to a plain serial map running the same closure on the same items.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised inside `f` (the section still
    /// drains: every queued runner completes before the panic is
    /// re-raised on the caller).
    pub fn par_map<T, R, F>(&self, jobs: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.par_map_waits(jobs, items, f).0
    }

    /// [`Pool::par_map`] that also measures each runner slot's barrier
    /// wait: the time between a runner finishing its last claimed item
    /// and the slowest runner reaching the section's completion latch.
    /// The second vector has one entry per runner slot and is empty when
    /// the map ran serially — no barrier, no wait.
    pub fn par_map_waits<T, R, F>(&self, jobs: usize, items: Vec<T>, f: F) -> (Vec<R>, Vec<u128>)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = jobs.max(1).min(n);
        if workers <= 1 || self.inner.shutdown.load(Ordering::Acquire) {
            let out = items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
            return (out, Vec::new());
        }
        self.ensure_workers(workers);
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let finished: Vec<Mutex<Option<Instant>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let runner = |slot: usize| {
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let Some(item) = lock_clean(&slots[i]).take() else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => *lock_clean(&results[i]) = Some(r),
                    Err(p) => {
                        let mut first = lock_clean(&panic);
                        if first.is_none() {
                            *first = Some(p);
                        }
                        break;
                    }
                }
            }
            *lock_clean(&finished[slot]) = Some(Instant::now());
        };
        self.run_runners(workers, &runner);
        if let Some(p) = lock_clean(&panic).take() {
            resume_unwind(p);
        }
        let join = Instant::now();
        let waits = finished
            .into_iter()
            .map(|m| {
                let t = m
                    .into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("runner recorded finish time");
                join.duration_since(t).as_nanos()
            })
            .collect();
        let out = results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("claimed item completed")
            })
            .collect();
        (out, waits)
    }

    /// Submits `runner(0) .. runner(k-1)` as pool tasks and blocks until
    /// all `k` have completed, executing queued tasks itself while it
    /// waits (the help is what makes nested sections deadlock-free).
    fn run_runners<F>(&self, k: usize, runner: &F)
    where
        F: Fn(usize) + Sync,
    {
        let latch = Arc::new(Latch {
            left: Mutex::new(k),
            cv: Condvar::new(),
        });
        // SAFETY: every submitted task signals `latch` before it is
        // dropped (`SignalOnDrop` runs even on unwind) and this function
        // does not return until the latch reaches zero, so the erased
        // reference never outlives the borrow it came from.
        let runner: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                runner as &(dyn Fn(usize) + Sync),
            )
        };
        for slot in 0..k {
            let latch = Arc::clone(&latch);
            self.inner.submit(Box::new(move || {
                let _signal = SignalOnDrop(latch);
                runner(slot);
            }));
        }
        // A worker blocked on its own nested join helps as *itself*: it
        // drains its own deque LIFO first (where its nested runner tasks
        // just landed) instead of stealing them FIFO — which used to be
        // both a locality loss and a steals-counter lie.
        let own_slot = self.inner.current_slot();
        loop {
            if *lock_clean(&latch.left) == 0 {
                break;
            }
            if let Some(t) = self.inner.find_task(own_slot) {
                self.inner.execute(t);
                continue;
            }
            let left = lock_clean(&latch.left);
            if *left == 0 {
                break;
            }
            // Sleep briefly, then re-scan: a task submitted by a nested
            // section could otherwise wait for a parked worker while this
            // thread — the only one guaranteed to be awake — idles.
            let _ = latch
                .cv
                .wait_timeout(left, Duration::from_millis(1))
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops the workers (after draining every queued task), joins their
    /// threads, and propagates any worker panic. Subsequent `par_map`
    /// calls on this pool run serially. Only meaningful for private
    /// [`Pool::new`] pools — the [`Pool::shared`] pool lives as long as
    /// the process.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            *lock_clean(&self.inner.wake) += 1;
        }
        self.inner.wake_cv.notify_all();
        let handles = std::mem::take(&mut *lock_clean(&self.inner.handles));
        for h in handles {
            if let Err(p) = h.join() {
                resume_unwind(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_input_ordered_for_every_jobs_value() {
        let pool = Pool::new(0);
        for jobs in [1, 2, 3, 8, 64] {
            let out = pool.par_map(jobs, (0..200u64).collect(), |i, v| {
                assert_eq!(i as u64, v);
                v * 3
            });
            assert_eq!(out, (0..200u64).map(|v| v * 3).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = pool.par_map(4, Vec::new(), |_, v| v);
        assert!(empty.is_empty());
        pool.shutdown();
    }

    #[test]
    fn pool_grows_to_largest_request_and_counts_activity() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 0);
        pool.par_map(3, (0..16u32).collect(), |_, v| v);
        assert_eq!(pool.workers(), 3);
        pool.par_map(5, (0..16u32).collect(), |_, v| v);
        assert_eq!(pool.workers(), 5);
        // A serial map never touches the pool.
        let before = pool.stats();
        pool.par_map(1, (0..16u32).collect(), |_, v| v);
        let delta = pool.stats().since(&before);
        assert_eq!(delta.submitted, 0);
        assert_eq!(delta.executed, 0);
        let s = pool.stats();
        assert_eq!(s.submitted, s.executed, "all submitted tasks executed");
        assert_eq!(s.queue_depth.total, s.submitted);
        pool.shutdown();
    }

    #[test]
    fn nested_par_map_on_one_pool_does_not_deadlock() {
        let pool = Pool::new(2);
        let out = pool.par_map(2, (0..6u64).collect(), |_, v| {
            pool.par_map(2, (0..6u64).collect(), move |_, w| v * w)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, (0..6u64).map(|v| v * 15).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn work_item_panic_propagates_to_caller_and_pool_survives() {
        let pool = Pool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(2, (0..8u32).collect(), |_, v| {
                assert!(v != 5, "boom at {v}");
                v
            })
        }));
        assert!(r.is_err(), "panic was swallowed");
        // The pool is still usable afterwards.
        let out = pool.par_map(2, (0..8u32).collect(), |_, v| v + 1);
        assert_eq!(out, (1..9u32).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn stats_delta_isolates_a_region() {
        let pool = Pool::new(0);
        pool.par_map(4, (0..32u32).collect(), |_, v| v);
        let before = pool.stats();
        pool.par_map(4, (0..32u32).collect(), |_, v| v);
        let delta = pool.stats().since(&before);
        assert_eq!(delta.submitted, 4, "one runner task per slot");
        assert_eq!(delta.queue_depth.total, 4);
        pool.shutdown();
    }
}
