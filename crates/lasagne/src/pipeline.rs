//! Pipeline orchestration: named passes, a pool-backed parallel
//! per-function driver, and per-pass/per-function instrumentation.
//!
//! The Figure 3 pipeline decomposes into six [`Stage`]s — `lift`,
//! `refine`, `fences`, `merge`, `opt`, `armgen` — each of which (apart
//! from a handful of interprocedural barrier steps) is a map over
//! independent per-function work items. The [`PassManager`] exploits that
//! twice over. First, all fan-outs run on one long-lived work-stealing
//! [`pool::Pool`] (std-only; shared process-wide by default), so worker
//! threads are spawned once and then park between sections instead of
//! being re-created per stage. Second, the *schedule* is fused: a
//! function flows lift → refine → fence placement → merge → opt-prefix
//! as one continuation-style work item, and only the true
//! interprocedural joins remain barriers — signature discovery /
//! module assembly (`LiftPlan::finish` + parameter promotion), the fence
//! merge join (module-wide fence totals + provenance assembly), and the
//! `ipsccp` gather/join/apply superstep. The manager records a
//! [`PassEvent`] per (stage, function) into a [`TimingSink`] and merges
//! results *by function index*, which makes the output bit-for-bit
//! independent of thread scheduling.
//!
//! # Determinism
//!
//! Every parallel region in this module has the shape
//!
//! ```text
//! results[i] = pure_fn(shared_read_only_state, item[i])
//! ```
//!
//! where `pure_fn` never reads another work item's output. Workers pull
//! indices from an atomic counter, but each result lands in slot `i` and
//! the slots are stitched back together in index order; the pool can
//! change *when and where* a function is processed, never *what* is
//! computed for it. Fusing consecutive per-function passes into one work
//! item does not change this: the fused item runs the same pass sequence
//! on the same function against the same read-only module shell, so it
//! is the old schedule's computation minus the intermediate barriers.
//! Interprocedural steps (type discovery, parameter promotion, the
//! `ipsccp` lattice join, module verification) run serially between the
//! parallel regions and replay the serial algorithm's decision order.
//! Hence `--jobs N` is byte-identical to `--jobs 1` for every `N` —
//! asserted by `tests/parallel.rs` over the whole Phoenix suite.
//!
//! The opt stage schedules per *function*, not per pass: the
//! intraprocedural portions of the Figure 17 schedule run as fused
//! per-function work items (round 0's prefix rides the fused tail item
//! above), and `ipsccp` runs as a bulk-synchronous superstep — parallel
//! call-summary gather, serial lattice join, parallel substitution apply
//! (see `opt::sccp`). Both restructurings are output-equivalent to the
//! old per-pass module sweeps and are asserted so by
//! `tests/opt_parallel.rs`.
//!
//! # Example
//!
//! ```
//! use lasagne::pipeline::Pipeline;
//! use lasagne::Version;
//! use lasagne_x86::asm::Asm;
//! use lasagne_x86::binary::BinaryBuilder;
//! use lasagne_x86::inst::{Inst, Rm};
//! use lasagne_x86::reg::{Gpr, Width};
//!
//! let mut b = BinaryBuilder::new();
//! let mut a = Asm::new();
//! a.push(Inst::MovRRm { w: Width::W64, dst: Gpr::Rax, src: Rm::Reg(Gpr::Rdi) });
//! a.push(Inst::Ret);
//! let addr = b.next_function_addr();
//! b.add_function("id", a.finish(addr)?);
//! let bin = b.finish();
//!
//! let (serial, _) = Pipeline::new(Version::PPOpt).run(&bin)?;
//! let (parallel, report) = Pipeline::new(Version::PPOpt).with_jobs(4).run(&bin)?;
//! assert_eq!(
//!     lasagne_armgen::print::print_module(&serial.arm),
//!     lasagne_armgen::print::print_module(&parallel.arm),
//! );
//! assert_eq!(report.stages.len(), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod pool;

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use lasagne_cache::ser as cache_ser;
use lasagne_cache::{CacheStats, Fnv64, FuncMeta, Manifest, ManifestEntry, TranslationCache};
use lasagne_fences::{FenceDecision, FenceFate, FenceMerge, PlacementStats, Strategy};
use lasagne_lifter::{LiftPlan, TranslateOptions};
use lasagne_lir::func::{Function, Module};
use lasagne_lir::inst::{Callee, InstKind, Operand};
use lasagne_opt::sccp::IpsccpFact;
use lasagne_opt::sched::{hist_bucket, HIST_BUCKETS};
use lasagne_opt::{FuncState, PassKind, SchedStats};
use lasagne_trace::{lock_clean, TraceCtx};
use lasagne_x86::binary::Binary;

use crate::{LiftError, Translation, TranslationStats, Version};
use pool::Pool;

/// Version of the JSON emitted by [`PipelineReport::to_json`] (the
/// `--timings` report). Bumped whenever a field is added, removed, or
/// changes meaning; consumers should check it before parsing.
///
/// * **1** — implicit (no `"schema"` field): version/jobs/total_nanos/
///   stages/cache.
/// * **2** — adds the `"schema"` field itself and the optional
///   `"metrics"` object (flat counters + histograms from tracing).
/// * **3** — adds `"parallel_sections"` per stage, the aggregated
///   `"opt_passes"` table, the per-round `"ipsccp_rounds"` breakdown
///   (gather/join/apply superstep phases), and `"barrier_wait_nanos"`,
///   one summed counter per worker slot. Schema-2 consumers that ignore
///   unknown fields still parse every field they knew about.
/// * **4** — the fused schedule overlaps stages inside one region, so
///   per-stage `"wall_nanos"` becomes *overlapped*: every stage that
///   participated in a region is charged the region's full wall, and the
///   stage walls no longer partition `total_nanos`. Adds the `"fused"`
///   object (`sections` = fused multi-stage fan-outs, `wall_nanos` =
///   wall time inside them) and, for `jobs > 1` runs, the `"pool"`
///   object — the shared work-stealing pool's activity attributed to
///   this run (workers, submitted/executed tasks, steals, parks, and a
///   queue-depth histogram). Schema-3 consumers that ignore unknown
///   fields still parse every field they knew about, but should not
///   assume stage walls sum to the total.
/// * **5** — per-stage `"wall_nanos"` is a disjoint extent again: each
///   fused region's wall is split across its member stages in
///   proportion to the CPU time that stage's work items consumed inside
///   the region ([`TimingSink::record_region_wall`]), so summing stage
///   walls once more recovers the translation's wall (up to scheduling
///   noise around the serial joins). No fields are added or removed
///   relative to schema 4 — only the overlap caveat is retired — which
///   restores apples-to-apples stage-wall comparison against the
///   schema-3 era numbers in `BENCH_pipeline.json`.
/// * **6** — the opt stage is change-driven (see `opt::sched`): adds the
///   `"opt_sched"` object (`ran`/`skipped`/`retired`/`rounds`/
///   `"compacted"`/`"compact_skipped"` scheduler counters, present when
///   the opt stage executed) and a `"hist"` array per `"opt_passes"`
///   entry — a changes-per-invocation histogram over the buckets
///   0 / 1 / 2–3 / 4–7 / ≥8. `"invocations"` now counts *executed*
///   invocations only; the pairs the scheduler proved clean appear in
///   `"opt_sched"."skipped"` instead (`ran + skipped` equals the old
///   blind invocation count). Counters are identical at every `--jobs`
///   value. Schema-5 consumers that ignore unknown fields still parse
///   every field they knew about, but should not compare `"invocations"`
///   against schema-5 era documents without adding back `"skipped"`.
pub const REPORT_SCHEMA: u32 = 6;

/// Fence provenance for one function, collected by an explain-enabled
/// pipeline run ([`Pipeline::explain_fences`]): every Figure 8a mapping
/// decision made during placement, with fates updated to
/// [`FenceFate::Merged`] for fences the merge stage later folded, plus the
/// merge steps themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncFenceRecord {
    /// Function index in the module.
    pub index: usize,
    /// Function name.
    pub name: String,
    /// x86 entry address of the function in the source binary.
    pub addr: u64,
    /// Placement decisions in block/position order.
    pub decisions: Vec<FenceDecision>,
    /// Merge steps applied to this function.
    pub merges: Vec<FenceMerge>,
}

impl FuncFenceRecord {
    /// Decisions whose fence survived placement and merging.
    pub fn placed(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.fate == FenceFate::Placed)
            .count()
    }

    /// Decisions elided by the stack-access analysis (no fence inserted).
    pub fn elided(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.fate == FenceFate::ElidedStack)
            .count()
    }

    /// Decisions whose fence was inserted and later merged away.
    pub fn merged(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| d.fate == FenceFate::Merged)
            .count()
    }

    /// Fences the placement stage inserted (placed + later merged) —
    /// equal to `PlacementStats::total()` for the same function.
    pub fn inserted(&self) -> usize {
        self.decisions.iter().filter(|d| d.fence.is_some()).count()
    }
}

/// The Figure 17 optimization schedule: the `standard_pipeline` order, run
/// for up to three rounds with `ipsccp` as the interprocedural barrier
/// (executed as a gather/join/apply superstep; the computation is the
/// serial algorithm's). Hoisted to a module constant so the cache's
/// pass-list key and the executed schedule can never drift apart — the
/// fused blocks are carved out of this same constant at its barrier.
const OPT_ORDER: [PassKind; 13] = [
    PassKind::Mem2Reg,
    PassKind::Sroa,
    PassKind::Mem2Reg,
    PassKind::InstCombine,
    PassKind::Reassociate,
    PassKind::InstCombine,
    PassKind::Sccp,
    PassKind::IpSccp,
    PassKind::Gvn,
    PassKind::Licm,
    PassKind::Dse,
    PassKind::Adce,
    PassKind::Dce,
];

/// The stable description of the pass schedule `version` runs, as folded
/// into every cache key. Any change to the schedule changes this string
/// and thereby invalidates all cached entries for the version.
pub fn pass_list(version: Version) -> String {
    let mut s = String::from("lift,fences-naive");
    if version == Version::PPOpt {
        s.push_str(",refine[refine,promote,sweep]x3");
    }
    s.push_str(",fences-stack");
    if matches!(version, Version::POpt | Version::PPOpt) {
        s.push_str(",merge");
    }
    if version != Version::Lifted {
        s.push_str(",opt[");
        for (i, p) in OPT_ORDER.iter().enumerate() {
            if i > 0 {
                s.push('+');
            }
            s.push_str(p.name());
        }
        s.push_str("]x3,compact");
    }
    s.push_str(",armgen");
    s
}

/// The content key identifying `bin` translated under `version`: a stable
/// FNV-1a hash of the serialization schema, the version, its pass list,
/// and the entire binary image (text, symbols, globals, externs). The
/// cache's module manifests are addressed by this key.
pub fn module_key(bin: &Binary, version: Version) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(cache_ser::SCHEMA);
    h.write_str(version.name());
    h.write_str(&pass_list(version));
    h.write_u64(bin.text_base);
    h.write_bytes(&bin.text);
    h.write_u64(bin.functions.len() as u64);
    for f in &bin.functions {
        h.write_str(&f.name);
        h.write_u64(f.addr);
        h.write_u64(f.size);
    }
    h.write_u64(bin.globals.len() as u64);
    for g in &bin.globals {
        h.write_str(&g.name);
        h.write_u64(g.addr);
        h.write_u64(g.size);
        h.write_bytes(&g.init);
    }
    h.write_u64(bin.externs.len() as u64);
    for e in &bin.externs {
        h.write_str(&e.name);
        h.write_u64(e.addr);
    }
    h.finish()
}

/// Digest of the module "shell" a cached function artifact is resolved
/// against: the function *name list in order* (artifact bodies reference
/// other functions by positional `FuncId`), plus globals and externs
/// (referenced by `GlobalId`/`ExternId`). Function *signatures* are
/// deliberately excluded — they enter each function's key through its
/// interprocedural-facts digest instead, so an unrelated signature change
/// does not invalidate the whole module.
fn shell_digest(m: &Module) -> u64 {
    let mut w = cache_ser::Writer::new();
    w.put_u64(m.funcs.len() as u64);
    for f in &m.funcs {
        w.put_str(&f.name);
    }
    w.put_u64(m.globals.len() as u64);
    for g in &m.globals {
        w.put_global(g);
    }
    w.put_u64(m.externs.len() as u64);
    for e in &m.externs {
        w.put_extern(e);
    }
    lasagne_cache::fnv64(w.bytes())
}

/// The content key of one function's post-`opt` artifact: machine-code
/// bytes, version + pass list, the module shell, and a digest of every
/// interprocedural fact the function consumed — its own final signature,
/// the final signature of each function it references (callees change a
/// caller's code through `promote_pointer_params` call-site rewriting),
/// and the `ipsccp` constants substituted into it.
fn func_key(
    code: &[u8],
    version: Version,
    passes: &str,
    shell: u64,
    m: &Module,
    fi: usize,
    ip_facts: &[IpsccpFact],
) -> u64 {
    let f = &m.funcs[fi];
    let mut w = cache_ser::Writer::new();
    w.put_u64(f.params.len() as u64);
    for p in &f.params {
        w.put_ty(*p);
    }
    w.put_ty(f.ret);
    let mut refs: BTreeSet<u32> = BTreeSet::new();
    for (_, id) in f.iter_insts() {
        let inst = f.inst(id);
        if let InstKind::Call {
            callee: Callee::Func(c),
            ..
        } = &inst.kind
        {
            refs.insert(c.0);
        }
        inst.kind.for_each_operand(|op| {
            if let Operand::Func(c) = op {
                refs.insert(c.0);
            }
        });
    }
    for b in &f.blocks {
        b.term.for_each_operand(|op| {
            if let Operand::Func(c) = op {
                refs.insert(c.0);
            }
        });
    }
    w.put_u64(refs.len() as u64);
    for r in refs {
        let g = &m.funcs[r as usize];
        w.put_str(&g.name);
        w.put_u64(g.params.len() as u64);
        for p in &g.params {
            w.put_ty(*p);
        }
        w.put_ty(g.ret);
    }
    // The ipsccp decisions that targeted this function, deduplicated (the
    // barrier reruns every round) and sorted for a stable digest.
    let mut mine: Vec<Vec<u8>> = ip_facts
        .iter()
        .filter(|x| x.func as usize == fi)
        .map(|x| {
            let mut fw = cache_ser::Writer::new();
            fw.put_u32(x.param);
            fw.put_operand(&x.value);
            fw.finish()
        })
        .collect();
    mine.sort();
    mine.dedup();
    w.put_u64(mine.len() as u64);
    for enc in &mine {
        w.put_bytes(enc);
    }
    let facts_digest = lasagne_cache::fnv64(w.bytes());

    let mut h = Fnv64::new();
    h.write_u32(cache_ser::SCHEMA);
    h.write_str(version.name());
    h.write_str(passes);
    h.write_u64(shell);
    h.write_str(&f.name);
    h.write_bytes(code);
    h.write_u64(facts_digest);
    h.finish()
}

fn stats_to_array(s: &TranslationStats) -> [u64; 7] {
    [
        s.casts_lifted as u64,
        s.casts_final as u64,
        s.fences_naive as u64,
        s.fences_placed as u64,
        s.fences_final as u64,
        s.insts_lifted as u64,
        s.insts_final as u64,
    ]
}

fn stats_from_array(a: [u64; 7]) -> TranslationStats {
    TranslationStats {
        casts_lifted: a[0] as usize,
        casts_final: a[1] as usize,
        fences_naive: a[2] as usize,
        fences_placed: a[3] as usize,
        fences_final: a[4] as usize,
        insts_lifted: a[5] as usize,
        insts_final: a[6] as usize,
    }
}

/// The six named passes of the Figure 3 pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Binary lifting (§4): x86-64 → LIR, one work item per function.
    Lift,
    /// IR refinement (§5): pointer exposure + parameter promotion (PPOpt).
    Refine,
    /// Fence placement (§8): the Figure 8a mapping with stack analysis.
    Fences,
    /// Fence merging (§7.2/§8): adjacent-fence elimination (POpt, PPOpt).
    Merge,
    /// LLVM-style optimization (Figure 17 pass set; all but Lifted).
    Opt,
    /// AArch64 code generation (Figure 8b) + frame-slot peephole.
    ArmGen,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Lift,
        Stage::Refine,
        Stage::Fences,
        Stage::Merge,
        Stage::Opt,
        Stage::ArmGen,
    ];

    /// Stable lowercase name used in reports and the `--timings` JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lift => "lift",
            Stage::Refine => "refine",
            Stage::Fences => "fences",
            Stage::Merge => "merge",
            Stage::Opt => "opt",
            Stage::ArmGen => "armgen",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).unwrap()
    }
}

/// One instrumentation record: a unit of pass work on one function (or a
/// module-wide barrier step when `func` is `None`).
#[derive(Debug, Clone)]
pub struct PassEvent {
    /// The pipeline stage this work belongs to.
    pub stage: Stage,
    /// `(function index, function name)`, or `None` for module-level work
    /// (type discovery, parameter promotion, `ipsccp`, verification).
    pub func: Option<(usize, String)>,
    /// Wall time spent on this unit of work.
    pub nanos: u128,
    /// Stage-specific change count: instructions lifted, casts rewritten,
    /// fences placed, fences merged away, rewrites applied, or peephole
    /// instructions removed.
    pub changes: u64,
    /// Live instruction count of the function after this unit of work.
    pub insts: u64,
}

/// Aggregated wall time for one optimization pass across every function
/// and round it ran on (schema 3's `"opt_passes"` table). The fused
/// per-function schedule times each pass inside the fused work item, so
/// the per-pass attribution survives the fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptPassTiming {
    /// Stable pass name (see `PassKind::name`).
    pub pass: &'static str,
    /// Total wall time across all functions and rounds.
    pub nanos: u128,
    /// Total rewrites applied.
    pub changes: u64,
    /// Number of (function, round, schedule-slot) executions. Since
    /// schema 6 this counts *executed* invocations only; slots the
    /// change-driven scheduler skipped are in `PipelineReport::opt_sched`.
    pub invocations: u64,
    /// Changes-per-invocation histogram over the buckets
    /// 0 / 1 / 2–3 / 4–7 / ≥8 (see `opt::sched::hist_bucket`). Sums to
    /// `invocations`.
    pub hist: [u64; HIST_BUCKETS],
}

/// Timing of one `ipsccp` superstep (schema 3's `"ipsccp_rounds"`): the
/// parallel gather of per-function call summaries, the serial join that
/// decides lattice facts, and the parallel apply of the substitutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpsccpRoundTiming {
    /// Optimization round index (0-based).
    pub round: u32,
    /// Wall time of the parallel summary-gather phase.
    pub gather_nanos: u128,
    /// Wall time of the serial lattice join (the only serial remnant).
    pub join_nanos: u128,
    /// Wall time of the parallel substitution phase.
    pub apply_nanos: u128,
    /// Lattice facts newly decided this round.
    pub facts: u64,
    /// Textual substitutions applied this round.
    pub substitutions: u64,
}

/// Collects [`PassEvent`]s from (possibly concurrent) pass executions and
/// folds them into a [`PipelineReport`].
///
/// The sink is `Sync`; events may arrive in any order. Reports are built
/// by grouping on `(stage, function index)` and sorting, so the report
/// *structure* is deterministic even though the recorded durations vary
/// run to run.
#[derive(Debug, Default)]
pub struct TimingSink {
    events: Mutex<Vec<PassEvent>>,
    opt_passes: Mutex<Vec<(&'static str, u128, u64)>>,
    ipsccp_rounds: Mutex<Vec<IpsccpRoundTiming>>,
    opt_sched: Mutex<Option<SchedStats>>,
    barrier_waits: Mutex<Vec<u128>>,
    parallel_sections: Mutex<[u64; 6]>,
    stage_walls: Mutex<[u128; 6]>,
    fused_sections: Mutex<u64>,
    fused_wall: Mutex<u128>,
}

impl TimingSink {
    /// Creates an empty sink.
    pub fn new() -> TimingSink {
        TimingSink::default()
    }

    /// Records one event.
    pub fn record(&self, ev: PassEvent) {
        lock_clean(&self.events).push(ev);
    }

    /// Records one pass execution inside a fused opt work item.
    pub fn record_opt_pass(&self, pass: &'static str, nanos: u128, changes: u64) {
        lock_clean(&self.opt_passes).push((pass, nanos, changes));
    }

    /// Records the phase breakdown of one `ipsccp` superstep.
    pub fn record_ipsccp_round(&self, round: IpsccpRoundTiming) {
        lock_clean(&self.ipsccp_rounds).push(round);
    }

    /// Records the opt stage's change-driven scheduler counters. Merged
    /// if recorded more than once (counts sum, rounds take the max), so
    /// the counters stay meaningful for sinks shared across runs.
    pub fn record_opt_sched(&self, stats: &SchedStats) {
        let mut slot = lock_clean(&self.opt_sched);
        match slot.as_mut() {
            Some(acc) => acc.merge(stats),
            None => *slot = Some(*stats),
        }
    }

    /// Accounts wall-clock time the orchestrating thread spent inside a
    /// region owned by a single `stage` (the refine fixpoint sections,
    /// the opt continuation, Arm code generation). Multi-stage fused
    /// regions go through [`TimingSink::record_region_wall`] instead, so
    /// that stage walls stay disjoint. (`StageTiming::nanos` is a
    /// different axis: it sums per-function work across concurrent
    /// worker threads and can exceed the wall.)
    pub fn record_stage_wall(&self, stage: Stage, nanos: u128) {
        lock_clean(&self.stage_walls)[stage.index()] += nanos;
    }

    /// Accounts the wall clock of one *fused* region by splitting it
    /// across the region's member stages in proportion to the CPU time
    /// each stage's work items consumed inside that region (`parts`
    /// pairs every member with its in-region CPU nanos; a zero-CPU
    /// region falls back to an equal split). The shares partition the
    /// region's wall exactly — the schema-5 guarantee that per-stage
    /// `wall_nanos` are disjoint extents summing to the fused wall,
    /// instead of schema 4's every-member-charged-in-full overlap.
    pub fn record_region_wall(&self, parts: &[(Stage, u128)], wall: u128) {
        if parts.is_empty() {
            return;
        }
        let total: u128 = parts.iter().map(|(_, cpu)| *cpu).sum();
        let mut walls = lock_clean(&self.stage_walls);
        let mut assigned = 0u128;
        for (i, (stage, cpu)) in parts.iter().enumerate() {
            let share = if i + 1 == parts.len() {
                // The last member absorbs the integer-division remainder
                // so the shares always sum to `wall` exactly.
                wall - assigned
            } else if total == 0 {
                wall / parts.len() as u128
            } else {
                wall * cpu / total
            };
            assigned += share;
            walls[stage.index()] += share;
        }
    }

    /// Accounts one completed parallel section in `stage`: per worker
    /// slot, the time it idled between finishing its last work item and
    /// the slowest worker reaching the section's join point.
    pub fn record_parallel_section(&self, stage: Stage, waits: &[u128]) {
        lock_clean(&self.parallel_sections)[stage.index()] += 1;
        self.fold_waits(waits);
    }

    /// Accounts one completed *fused* parallel section — a single
    /// fan-out whose work items each flow through several `stages` back
    /// to back. Every participating stage's `parallel_sections` counter
    /// is bumped, the per-slot barrier waits are folded in **once** (one
    /// barrier formed, not one per stage), and the section counts toward
    /// the report's `"fused"` block.
    pub fn record_fused_section(&self, stages: &[Stage], waits: &[u128]) {
        {
            let mut sections = lock_clean(&self.parallel_sections);
            for s in stages {
                sections[s.index()] += 1;
            }
        }
        *lock_clean(&self.fused_sections) += 1;
        self.fold_waits(waits);
    }

    /// Accounts wall-clock time spent inside fused regions (summed over
    /// the run's fused sections and their adjacent serial joins, as seen
    /// by the orchestrating thread).
    pub fn record_fused_wall(&self, nanos: u128) {
        *lock_clean(&self.fused_wall) += nanos;
    }

    fn fold_waits(&self, waits: &[u128]) {
        let mut acc = lock_clean(&self.barrier_waits);
        if acc.len() < waits.len() {
            acc.resize(waits.len(), 0);
        }
        for (slot, w) in waits.iter().enumerate() {
            acc[slot] += w;
        }
    }

    /// Builds the aggregated report. Events for the same (stage, function)
    /// have their times and change counts summed; the instruction count
    /// keeps the last recorded value.
    pub fn report(&self, version: Version, jobs: usize, total_nanos: u128) -> PipelineReport {
        let events = lock_clean(&self.events);
        let sections = *lock_clean(&self.parallel_sections);
        let walls = *lock_clean(&self.stage_walls);
        let mut stages: Vec<StageTiming> = Stage::ALL
            .iter()
            .map(|s| StageTiming {
                stage: *s,
                nanos: 0,
                module_nanos: 0,
                wall_nanos: walls[s.index()],
                parallel_sections: sections[s.index()],
                funcs: Vec::new(),
            })
            .collect();
        for ev in events.iter() {
            let st = &mut stages[ev.stage.index()];
            st.nanos += ev.nanos;
            match &ev.func {
                None => st.module_nanos += ev.nanos,
                Some((index, name)) => match st.funcs.binary_search_by_key(index, |ft| ft.index) {
                    Ok(pos) => {
                        let ft = &mut st.funcs[pos];
                        ft.nanos += ev.nanos;
                        ft.changes += ev.changes;
                        ft.insts = ev.insts;
                    }
                    Err(pos) => st.funcs.insert(
                        pos,
                        FuncTiming {
                            func: name.clone(),
                            index: *index,
                            nanos: ev.nanos,
                            changes: ev.changes,
                            insts: ev.insts,
                        },
                    ),
                },
            }
        }
        // Aggregate per-pass executions by pass name, in first-seen order
        // (which is schedule order: the fused blocks walk `OPT_ORDER`).
        let mut opt_passes: Vec<OptPassTiming> = Vec::new();
        for (pass, nanos, changes) in lock_clean(&self.opt_passes).iter() {
            let bucket = hist_bucket(*changes as usize);
            match opt_passes.iter_mut().find(|p| p.pass == *pass) {
                Some(p) => {
                    p.nanos += nanos;
                    p.changes += changes;
                    p.invocations += 1;
                    p.hist[bucket] += 1;
                }
                None => {
                    let mut hist = [0u64; HIST_BUCKETS];
                    hist[bucket] = 1;
                    opt_passes.push(OptPassTiming {
                        pass,
                        nanos: *nanos,
                        changes: *changes,
                        invocations: 1,
                        hist,
                    })
                }
            }
        }
        let mut ipsccp_rounds = lock_clean(&self.ipsccp_rounds).clone();
        ipsccp_rounds.sort_by_key(|r| r.round);
        PipelineReport {
            version,
            jobs,
            total_nanos,
            stages,
            opt_passes,
            ipsccp_rounds,
            opt_sched: *lock_clean(&self.opt_sched),
            barrier_wait_nanos: lock_clean(&self.barrier_waits).clone(),
            fused_sections: *lock_clean(&self.fused_sections),
            fused_wall_nanos: *lock_clean(&self.fused_wall),
            pool: None,
            cache: None,
            metrics: None,
        }
    }

    /// Per-function wall nanoseconds recorded so far, summed across all
    /// stages, indexed by function index. Taken just before Arm code
    /// generation on the cold path, this is exactly the work a warm cache
    /// hit skips — it becomes each cached entry's `cold_nanos`.
    pub fn per_func_nanos(&self, nfuncs: usize) -> Vec<u128> {
        let mut out = vec![0u128; nfuncs];
        for ev in lock_clean(&self.events).iter() {
            if let Some((i, _)) = &ev.func {
                if *i < nfuncs {
                    out[*i] += ev.nanos;
                }
            }
        }
        out
    }
}

/// Cache counters attached to a [`PipelineReport`] when the run had a
/// cache configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheReport {
    /// Whether the whole module was served from cache (some hits, no
    /// misses) — a warm run performs zero lift/refine/fences/merge/opt
    /// pass executions.
    pub warm: bool,
    /// Function artifacts served from cache.
    pub hits: u64,
    /// Module loads that found no usable entry.
    pub misses: u64,
    /// New artifacts written.
    pub writes: u64,
    /// Artifacts already on disk at store time.
    pub unchanged: u64,
    /// Files removed by pruning.
    pub evicted: u64,
    /// Cold-path nanoseconds avoided by the hits.
    pub saved_nanos: u64,
}

impl From<CacheStats> for CacheReport {
    fn from(s: CacheStats) -> CacheReport {
        CacheReport {
            warm: s.hits > 0 && s.misses == 0,
            hits: s.hits,
            misses: s.misses,
            writes: s.writes,
            unchanged: s.unchanged,
            evicted: s.evicted,
            saved_nanos: s.saved_nanos,
        }
    }
}

/// Aggregated timing for one function within one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncTiming {
    /// Function name.
    pub func: String,
    /// Function index in the module.
    pub index: usize,
    /// Total wall time spent on this function in this stage (summed over
    /// rounds and sub-passes).
    pub nanos: u128,
    /// Total stage-specific changes (see [`PassEvent::changes`]).
    pub changes: u64,
    /// Live instruction count after the stage last touched the function.
    pub insts: u64,
}

/// Aggregated timing for one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Which stage.
    pub stage: Stage,
    /// Sum of all work attributed to the stage (per-function + module).
    pub nanos: u128,
    /// Serial module-level barrier work within the stage (type discovery,
    /// parameter promotion, the `ipsccp` join, verification, the
    /// naive-placement baseline).
    pub module_nanos: u128,
    /// Wall-clock time attributed to the stage by the orchestrating
    /// thread. Single-stage regions record their extent directly; a
    /// fused region's wall is apportioned across its member stages
    /// proportional to in-region CPU (schema 5), so stage walls are
    /// disjoint and sum to (approximately) the run's `total_nanos`.
    /// `nanos` instead sums per-function work across overlapping
    /// workers and can exceed the wall at `jobs > 1`.
    pub wall_nanos: u128,
    /// Parallel fan-outs the stage executed with two or more workers.
    /// Zero when the stage ran serially (`--jobs 1`, one function, or a
    /// warm cache hit that skipped the stage).
    pub parallel_sections: u64,
    /// Per-function entries, sorted by function index. Empty when the
    /// stage did not run under the chosen [`Version`].
    pub funcs: Vec<FuncTiming>,
}

/// The full instrumentation report for one translation.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Pipeline configuration translated under.
    pub version: Version,
    /// Worker threads requested.
    pub jobs: usize,
    /// End-to-end wall time of the whole translation.
    pub total_nanos: u128,
    /// Per-stage breakdown, in pipeline order; always all six stages.
    pub stages: Vec<StageTiming>,
    /// Per-pass aggregation over the fused opt schedule, in schedule
    /// order. Empty when the opt stage did not run (Lifted, warm cache).
    pub opt_passes: Vec<OptPassTiming>,
    /// Per-round `ipsccp` superstep phase timings, in round order.
    pub ipsccp_rounds: Vec<IpsccpRoundTiming>,
    /// Change-driven scheduler counters for the opt stage (schema 6's
    /// `"opt_sched"` object): executed vs provably-clean-skipped pass
    /// slots, retired function-rounds, round count, and compaction
    /// skips. `None` when the opt stage did not run (Lifted, warm
    /// cache). Jobs-invariant: the same module yields the same counters
    /// at every `--jobs` value.
    pub opt_sched: Option<SchedStats>,
    /// Summed barrier idle time per worker slot, across every parallel
    /// section of the run. Empty for a fully serial run.
    pub barrier_wait_nanos: Vec<u128>,
    /// Fused multi-stage parallel sections the run executed (schema 4's
    /// `"fused"` block): fan-outs whose work items flow through several
    /// stages back to back. Zero for serial and warm runs — a section
    /// only counts when a barrier actually formed.
    pub fused_sections: u64,
    /// Wall time spent inside fused regions (their fan-outs plus the
    /// adjacent serial joins).
    pub fused_wall_nanos: u128,
    /// Work-stealing pool activity attributed to this run — counter
    /// deltas snapshotted around the translation (schema 4's `"pool"`
    /// block). `None` for `jobs = 1` runs, which never touch the pool.
    pub pool: Option<pool::PoolStats>,
    /// Cache counters; `None` when the run had no cache configured.
    pub cache: Option<CacheReport>,
    /// Merged counters and histograms from the run's [`TraceCtx`];
    /// `None` when the run was not traced.
    pub metrics: Option<lasagne_trace::MetricsSnapshot>,
}

impl PipelineReport {
    /// Serializes the report as a single JSON object (schema
    /// [`REPORT_SCHEMA`]; see ARCHITECTURE.md § Observability):
    ///
    /// ```json
    /// {"schema":6,"version":"PPOpt","jobs":4,"total_nanos":123,
    ///  "stages":[{"stage":"lift","parallel_sections":1,"nanos":88,
    ///             "module_nanos":5,"wall_nanos":60,
    ///             "funcs":[{"func":"main","index":0,"nanos":83,
    ///                       "changes":120,"insts":120}]}, …],
    ///  "opt_passes":[{"pass":"mem2reg","nanos":9,"changes":3,
    ///                 "invocations":8,"hist":[5,2,1,0,0]}, …],
    ///  "ipsccp_rounds":[{"round":0,"gather_nanos":2,"join_nanos":1,
    ///                    "apply_nanos":2,"facts":1,"substitutions":2}, …],
    ///  "barrier_wait_nanos":[120,340,80,410],
    ///  "fused":{"sections":2,"wall_nanos":95},
    ///  "opt_sched":{"ran":40,"skipped":38,"retired":2,"rounds":2,
    ///               "compacted":1,"compact_skipped":1},
    ///  "pool":{"workers":4,"submitted":12,"executed":12,"steals":3,
    ///          "parks":5,"queue_depth":{"bounds":[0,1,2,4,8,16,32],
    ///          "counts":[6,4,2,0,0,0,0,0],"sum":8,"total":12}}}
    /// ```
    ///
    /// Since schema 5 the per-stage `"wall_nanos"` are *disjoint*
    /// again: a fused region's wall is apportioned across its member
    /// stages proportional to their in-region CPU, so stage walls sum
    /// to (approximately) `"total_nanos"`. Schema 4 charged fused
    /// extents to every member, making walls overlap — compare
    /// schema-4 documents with that in mind. Since schema 6 the opt
    /// stage is change-driven: each `"opt_passes"` entry carries a
    /// changes-per-invocation histogram (buckets 0 / 1 / 2–3 / 4–7 /
    /// ≥8) and `"opt_sched"` reconciles executed against skipped slots
    /// (`ran + skipped` equals the blind driver's invocation count;
    /// all counters jobs-invariant). A traced run additionally carries
    /// `"metrics":{"counters":{…},"histograms":{…}}`; a cached run
    /// carries `"cache":{…}`; `"pool"` appears only when `jobs > 1`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(&format!(
            "{{\"schema\":{},\"version\":\"{}\",\"jobs\":{},\"total_nanos\":{},\"stages\":[",
            REPORT_SCHEMA,
            self.version.name(),
            self.jobs,
            self.total_nanos
        ));
        for (si, st) in self.stages.iter().enumerate() {
            if si > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stage\":\"{}\",\"parallel_sections\":{},\"nanos\":{},\"module_nanos\":{},\"wall_nanos\":{},\"funcs\":[",
                st.stage.name(),
                st.parallel_sections,
                st.nanos,
                st.module_nanos,
                st.wall_nanos
            ));
            for (fi, ft) in st.funcs.iter().enumerate() {
                if fi > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"func\":\"{}\",\"index\":{},\"nanos\":{},\"changes\":{},\"insts\":{}}}",
                    json_escape(&ft.func),
                    ft.index,
                    ft.nanos,
                    ft.changes,
                    ft.insts
                ));
            }
            s.push_str("]}");
        }
        s.push(']');
        s.push_str(",\"opt_passes\":[");
        for (i, p) in self.opt_passes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let hist: Vec<String> = p.hist.iter().map(|h| h.to_string()).collect();
            s.push_str(&format!(
                "{{\"pass\":\"{}\",\"nanos\":{},\"changes\":{},\"invocations\":{},\
                 \"hist\":[{}]}}",
                p.pass,
                p.nanos,
                p.changes,
                p.invocations,
                hist.join(",")
            ));
        }
        s.push_str("],\"ipsccp_rounds\":[");
        for (i, r) in self.ipsccp_rounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"round\":{},\"gather_nanos\":{},\"join_nanos\":{},\"apply_nanos\":{},\
                 \"facts\":{},\"substitutions\":{}}}",
                r.round, r.gather_nanos, r.join_nanos, r.apply_nanos, r.facts, r.substitutions
            ));
        }
        s.push_str("],\"barrier_wait_nanos\":[");
        for (i, w) in self.barrier_wait_nanos.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&w.to_string());
        }
        s.push(']');
        s.push_str(&format!(
            ",\"fused\":{{\"sections\":{},\"wall_nanos\":{}}}",
            self.fused_sections, self.fused_wall_nanos
        ));
        if let Some(sc) = &self.opt_sched {
            s.push_str(&format!(
                ",\"opt_sched\":{{\"ran\":{},\"skipped\":{},\"retired\":{},\
                 \"rounds\":{},\"compacted\":{},\"compact_skipped\":{}}}",
                sc.ran, sc.skipped, sc.retired, sc.rounds, sc.compacted, sc.compact_skipped
            ));
        }
        if let Some(p) = &self.pool {
            s.push_str(&format!(
                ",\"pool\":{{\"workers\":{},\"submitted\":{},\"executed\":{},\
                 \"steals\":{},\"parks\":{},\"queue_depth\":{}}}",
                p.workers,
                p.submitted,
                p.executed,
                p.steals,
                p.parks,
                p.queue_depth.to_json()
            ));
        }
        if let Some(c) = &self.cache {
            s.push_str(&format!(
                ",\"cache\":{{\"warm\":{},\"hits\":{},\"misses\":{},\"writes\":{},\
                 \"unchanged\":{},\"evicted\":{},\"saved_nanos\":{}}}",
                c.warm, c.hits, c.misses, c.writes, c.unchanged, c.evicted, c.saved_nanos
            ));
        }
        if let Some(m) = &self.metrics {
            s.push_str(",\"metrics\":");
            s.push_str(&m.to_json());
        }
        s.push('}');
        s
    }

    /// Renders a human-readable per-stage summary table.
    pub fn summary_table(&self) -> String {
        let mut s = format!(
            "{:<8} {:>12} {:>12} {:>8} {:>10}\n",
            "stage", "total (µs)", "serial (µs)", "funcs", "changes"
        );
        for st in &self.stages {
            s.push_str(&format!(
                "{:<8} {:>12.1} {:>12.1} {:>8} {:>10}\n",
                st.stage.name(),
                st.nanos as f64 / 1e3,
                st.module_nanos as f64 / 1e3,
                st.funcs.len(),
                st.funcs.iter().map(|f| f.changes).sum::<u64>(),
            ));
        }
        s.push_str(&format!(
            "{:<8} {:>12.1}   (wall, jobs={})\n",
            "end2end",
            self.total_nanos as f64 / 1e3,
            self.jobs
        ));
        if !self.barrier_wait_nanos.is_empty() {
            let sections: u64 = self.stages.iter().map(|st| st.parallel_sections).sum();
            let waits: Vec<f64> = self
                .barrier_wait_nanos
                .iter()
                .map(|w| *w as f64 / 1e3)
                .collect();
            s.push_str(&format!(
                "barriers : {sections} parallel sections; per-slot wait (µs): {waits:.1?}\n"
            ));
        }
        if self.fused_sections > 0 {
            s.push_str(&format!(
                "fused    : {} multi-stage sections ({:.1} µs wall)\n",
                self.fused_sections,
                self.fused_wall_nanos as f64 / 1e3
            ));
        }
        if let Some(sc) = &self.opt_sched {
            s.push_str(&format!(
                "opt sched: {} pass slots ran, {} skipped clean, {} func-rounds retired, \
                 {} rounds; compact {} done / {} skipped\n",
                sc.ran, sc.skipped, sc.retired, sc.rounds, sc.compacted, sc.compact_skipped
            ));
        }
        if let Some(p) = &self.pool {
            s.push_str(&format!(
                "pool     : {} workers; {} tasks executed ({} stolen), {} parks\n",
                p.workers, p.executed, p.steals, p.parks
            ));
        }
        if let Some(c) = &self.cache {
            s.push_str(&format!(
                "cache    {} — {} hits, {} misses, {} written, {} unchanged, \
                 {} evicted, {:.1} µs saved\n",
                if c.warm { "warm" } else { "cold" },
                c.hits,
                c.misses,
                c.writes,
                c.unchanged,
                c.evicted,
                c.saved_nanos as f64 / 1e3
            ));
        }
        s
    }

    /// The stage entry for `stage`.
    ///
    /// # Panics
    ///
    /// Never — reports always carry all six stages.
    pub fn stage(&self, stage: Stage) -> &StageTiming {
        &self.stages[stage.index()]
    }
}

/// Counts `IntToPtr`/`PtrToInt` instructions in one function. Module
/// totals are per-function sums, so the fused schedule can census casts
/// inside each work item and fold at the join without a module-wide pass.
fn count_casts_fn(f: &Function) -> u64 {
    f.iter_insts()
        .filter(|&(_, id)| f.inst(id).kind.is_int_ptr_cast())
        .count() as u64
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maps `f` over `items` on up to `jobs` workers of the process-wide
/// shared work-stealing pool ([`Pool::shared`]), returning results in
/// input order.
///
/// Workers claim indices from an atomic counter; result `i` is written to
/// slot `i`, so the output vector is independent of scheduling. With
/// `jobs <= 1` (or one item) this degenerates to a plain serial map —
/// the serial and parallel paths run the *same* closure on the *same*
/// items, which is what makes `--jobs N` byte-identical to `--jobs 1`.
/// Nested calls are fine: a work item that itself calls `par_map` (e.g. a
/// litmus sweep inside a pipeline stage) submits to the same pool, and
/// blocked callers execute queued tasks while they wait.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Pool::shared().par_map(jobs, items, f)
}

/// [`par_map`] that also measures each runner slot's barrier wait: the
/// time between a runner finishing its last claimed item and the slowest
/// runner reaching the section's completion latch. The second vector has
/// one entry per runner slot and is empty when the map ran serially
/// (`jobs <= 1` or at most one item) — no barrier, no wait.
///
/// This is where `--timings`' `barrier_wait_nanos` counters come from: a
/// schedule whose work items are badly balanced shows up as a few slots
/// with large waits, without changing any output byte.
pub fn par_map_waits<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> (Vec<R>, Vec<u128>)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Pool::shared().par_map_waits(jobs, items, f)
}

/// Pipeline configuration: a [`Version`], a worker-thread count, and an
/// optional on-disk translation cache.
///
/// `Pipeline::new(v).run(bin)` is the instrumented, parallelizable form of
/// [`crate::translate`]; `translate` itself is `Pipeline::new(v)` with one
/// job and the report discarded. With [`Pipeline::with_cache`], a warm run
/// (unchanged binary, same version) skips lift/refine/fences/merge/opt
/// entirely and regenerates byte-identical Arm code from the cached LIR.
#[derive(Debug, Clone)]
pub struct Pipeline {
    version: Version,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    trace: TraceCtx,
    pool: Pool,
}

impl Pipeline {
    /// A serial pipeline for `version` (`jobs = 1`), uncached, untraced,
    /// riding the process-wide shared worker pool ([`Pool::shared`]).
    pub fn new(version: Version) -> Pipeline {
        Pipeline {
            version,
            jobs: 1,
            cache_dir: None,
            trace: TraceCtx::disabled(),
            pool: Pool::shared().clone(),
        }
    }

    /// Sets the worker-thread count (clamped to at least 1). Output is
    /// byte-identical for every value. The workers come from the
    /// pipeline's [`Pool`] — long-lived threads that park between
    /// sections — so repeated runs (a `report` sweep, a `difftest`
    /// session) pay the spawn cost once, not per stage.
    pub fn with_jobs(mut self, jobs: usize) -> Pipeline {
        self.jobs = jobs.max(1);
        self
    }

    /// Replaces the worker pool (default: the process-wide
    /// [`Pool::shared`]). Useful for tests that want an isolated pool
    /// whose counters and shutdown they control; sharing one pool across
    /// pipelines is otherwise always preferable.
    pub fn with_pool(mut self, pool: Pool) -> Pipeline {
        self.pool = pool;
        self
    }

    /// Enables the content-addressed translation cache rooted at `dir`
    /// (created on first use). Output is byte-identical with or without
    /// the cache, warm or cold. A directory that cannot be created simply
    /// disables caching for the run.
    pub fn with_cache(mut self, dir: impl Into<PathBuf>) -> Pipeline {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attaches a tracing context: the run records spans, structured
    /// events, counters, and histograms into it, and the returned report
    /// carries the merged metrics snapshot. Output is byte-identical with
    /// tracing enabled or disabled.
    pub fn with_trace(mut self, trace: TraceCtx) -> Pipeline {
        self.trace = trace;
        self
    }

    /// Runs the full pipeline on `bin`, returning the translation and the
    /// per-pass/per-function timing report (with cache counters when a
    /// cache is configured, and a metrics snapshot when traced).
    ///
    /// # Errors
    ///
    /// Returns a [`LiftError`] if the binary cannot be lifted.
    pub fn run(&self, bin: &Binary) -> Result<(Translation, PipelineReport), LiftError> {
        let sink = TimingSink::new();
        let t0 = Instant::now();
        let pool_before = (self.jobs > 1).then(|| self.pool.stats());
        let cache = self
            .cache_dir
            .as_ref()
            .and_then(|dir| TranslationCache::open(dir).ok());
        let mut pm = PassManager::new(self.version, self.jobs, &sink)
            .with_trace(self.trace.clone())
            .with_pool(self.pool.clone());
        if let Some(c) = &cache {
            pm = pm.with_cache(c);
        }
        let translation = pm.translate(bin)?;
        let mut report = sink.report(self.version, self.jobs, t0.elapsed().as_nanos());
        if let Some(c) = &cache {
            report.cache = Some(CacheReport::from(c.stats()));
        }
        // Attribute the pool's activity to this run (delta of its
        // monotonic counters). On a pool shared with concurrent runs the
        // delta can include their tasks — attribution, not accounting.
        if let Some(before) = pool_before {
            let delta = self.pool.stats().since(&before);
            if self.trace.is_enabled() {
                self.trace.add("pool.submitted", delta.submitted);
                self.trace.add("pool.executed", delta.executed);
                self.trace.add("pool.steals", delta.steals);
                self.trace.add("pool.parks", delta.parks);
                self.trace
                    .merge_histogram("pool.queue_depth", &delta.queue_depth);
            }
            report.pool = Some(delta);
        }
        report.metrics = self.trace.metrics_snapshot();
        Ok((translation, report))
    }

    /// Runs the pipeline with fence-provenance collection and returns the
    /// per-function records alongside the translation. The cache is
    /// deliberately bypassed: provenance is a property of the placement
    /// and merge decisions themselves, which only the cold path makes.
    /// The translation is still byte-identical to [`Pipeline::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns a [`LiftError`] if the binary cannot be lifted.
    pub fn explain_fences(
        &self,
        bin: &Binary,
    ) -> Result<(Translation, Vec<FuncFenceRecord>), LiftError> {
        let sink = TimingSink::new();
        let pm = PassManager::new(self.version, self.jobs, &sink)
            .with_trace(self.trace.clone())
            .with_pool(self.pool.clone())
            .with_explain();
        let translation = pm.translate(bin)?;
        let provenance = pm.take_provenance();
        Ok((translation, provenance))
    }
}

/// Executes the six stages over per-function work items, recording a
/// [`PassEvent`] for every unit of work into the [`TimingSink`].
pub struct PassManager<'s> {
    version: Version,
    jobs: usize,
    sink: &'s TimingSink,
    cache: Option<&'s TranslationCache>,
    trace: TraceCtx,
    explain: bool,
    provenance: Mutex<Vec<FuncFenceRecord>>,
    pool: Pool,
}

impl<'s> PassManager<'s> {
    /// Creates a manager writing instrumentation into `sink`, uncached,
    /// untraced, on the process-wide shared pool.
    pub fn new(version: Version, jobs: usize, sink: &'s TimingSink) -> PassManager<'s> {
        PassManager {
            version,
            jobs: jobs.max(1),
            sink,
            cache: None,
            trace: TraceCtx::disabled(),
            explain: false,
            provenance: Mutex::new(Vec::new()),
            pool: Pool::shared().clone(),
        }
    }

    /// Replaces the worker pool every parallel section runs on (default:
    /// [`Pool::shared`]).
    pub fn with_pool(mut self, pool: Pool) -> PassManager<'s> {
        self.pool = pool;
        self
    }

    /// Attaches an open translation cache: [`PassManager::translate`] will
    /// serve whole modules from it when possible and populate it after
    /// cold runs.
    pub fn with_cache(mut self, cache: &'s TranslationCache) -> PassManager<'s> {
        self.cache = Some(cache);
        self
    }

    /// Attaches a tracing context shared with the caller.
    pub fn with_trace(mut self, trace: TraceCtx) -> PassManager<'s> {
        self.trace = trace;
        self
    }

    /// Turns on fence-provenance collection: the placement and merge
    /// stages run their `_explain` variants and the per-function records
    /// become available through [`PassManager::take_provenance`].
    pub fn with_explain(mut self) -> PassManager<'s> {
        self.explain = true;
        self
    }

    /// The fence-provenance records collected during [`translate`]
    /// (empty unless [`PassManager::with_explain`] was set), sorted by
    /// function index.
    ///
    /// [`translate`]: PassManager::translate
    pub fn take_provenance(&self) -> Vec<FuncFenceRecord> {
        let mut records = std::mem::take(&mut *lock_clean(&self.provenance));
        records.sort_by_key(|r| r.index);
        records
    }

    /// Times a serial module-level barrier step and records it. `label`
    /// names the step's trace span (e.g. `"prepare"`, `"ipsccp"`).
    fn module_step<R>(&self, stage: Stage, label: &str, work: impl FnOnce() -> (R, u64)) -> R {
        let mut sp = self.trace.span(stage.name(), label);
        let t0 = Instant::now();
        let (r, changes) = work();
        sp.arg("changes", changes);
        self.sink.record(PassEvent {
            stage,
            func: None,
            nanos: t0.elapsed().as_nanos(),
            changes,
            insts: 0,
        });
        r
    }

    /// [`par_map`] with section accounting: each parallel fan-out bumps
    /// the stage's `parallel_sections` counter and folds its per-slot
    /// barrier waits into the sink. Serial executions (one job or one
    /// item) record nothing — a section only counts when a barrier
    /// actually formed.
    fn par_section<T, R, F>(&self, stage: Stage, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let (out, waits) = self.pool.par_map_waits(self.jobs, items, f);
        if !waits.is_empty() {
            self.sink.record_parallel_section(stage, &waits);
        }
        out
    }

    /// [`PassManager::par_section`] for a *fused* section: one fan-out
    /// whose work items flow through several `stages` back to back (the
    /// lift→refine head and the sweep→fences→merge→opt-prefix tail of
    /// the schedule). Accounting goes through
    /// [`TimingSink::record_fused_section`] so the barrier is counted
    /// once while every participating stage's section counter moves.
    fn fused_section<T, R, F>(&self, stages: &[Stage], items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let (out, waits) = self.pool.par_map_waits(self.jobs, items, f);
        if !waits.is_empty() {
            self.sink.record_fused_section(stages, &waits);
        }
        out
    }

    /// Runs one per-function pass over every function of `m`, in parallel,
    /// and records one event per function. `pass` receives the module
    /// *without its function table* (taken out for ownership) — every
    /// current pass only consults the module for operand typing, which
    /// never reads other function bodies. Returns the summed change count.
    fn func_pass(
        &self,
        stage: Stage,
        m: &mut Module,
        pass: impl Fn(&Module, usize, &mut Function) -> u64 + Sync,
    ) -> u64 {
        let funcs = std::mem::take(&mut m.funcs);
        let shell: &Module = m;
        let results = self.par_section(stage, funcs, |i, mut f| {
            let mut sp = self.trace.span(stage.name(), &f.name);
            let t0 = Instant::now();
            let changes = pass(shell, i, &mut f);
            sp.arg("changes", changes);
            (f, changes, t0.elapsed().as_nanos())
        });
        let mut total = 0;
        m.funcs = results
            .into_iter()
            .enumerate()
            .map(|(i, (f, changes, nanos))| {
                self.sink.record(PassEvent {
                    stage,
                    func: Some((i, f.name.clone())),
                    nanos,
                    changes,
                    insts: f.live_inst_count() as u64,
                });
                total += changes;
                f
            })
            .collect();
        total
    }

    /// Runs a block of intraprocedural passes back to back on every
    /// function as *one* fused parallel work item — one fan-out and one
    /// barrier for the whole block, instead of one per pass.
    ///
    /// Fusion is output-equivalent to the old per-pass module sweeps
    /// because every intraprocedural pass reads the module only through
    /// its shell (signatures, globals, externs — constant during the opt
    /// stage), never through another function's body; the per-function
    /// pass sequence is therefore the same computation in both schedules,
    /// and the round's change count is a sum, which reordering cannot
    /// change. Per-pass wall time is still attributed: each pass is timed
    /// inside the fused item and recorded via
    /// [`TimingSink::record_opt_pass`].
    ///
    /// Since schema 6 the block is change-driven: each function's
    /// [`FuncState`] travels with the work item, passes whose dirty bit
    /// is clear are skipped (provably clean — see `opt::sched`), and the
    /// per-function [`lasagne_opt::Analyses`] cache is threaded through
    /// the executed passes. Skips and runs are tallied into `sched`;
    /// skipped slots record no `opt_passes` invocation.
    fn fused_opt_block(
        &self,
        m: &mut Module,
        passes: &[PassKind],
        states: &mut Vec<FuncState>,
        sched: &mut SchedStats,
    ) -> u64 {
        let funcs = std::mem::take(&mut m.funcs);
        let items: Vec<(Function, FuncState)> =
            funcs.into_iter().zip(std::mem::take(states)).collect();
        let shell: &Module = m;
        let results = self.par_section(Stage::Opt, items, |_, (mut f, mut st)| {
            let mut sp = self.trace.span("opt", &f.name);
            let t0 = Instant::now();
            let mut per_pass: Vec<(PassKind, u128, u64)> = Vec::with_capacity(passes.len());
            let mut changes = 0;
            let (mut ran, mut skipped) = (0u64, 0u64);
            for &pass in passes {
                if !st.should_run(pass) {
                    skipped += 1;
                    continue;
                }
                ran += 1;
                let tp = Instant::now();
                let eff =
                    lasagne_opt::run_pass_on_function_eff(pass, shell, &mut f, &mut st.analyses);
                st.note_ran(pass, &eff);
                per_pass.push((pass, tp.elapsed().as_nanos(), eff.changes as u64));
                changes += eff.changes as u64;
            }
            sp.arg("changes", changes);
            (
                f,
                st,
                per_pass,
                changes,
                ran,
                skipped,
                t0.elapsed().as_nanos(),
            )
        });
        let mut total = 0;
        m.funcs = results
            .into_iter()
            .enumerate()
            .map(|(i, (f, st, per_pass, changes, ran, skipped, nanos))| {
                for (pass, pn, pc) in per_pass {
                    self.sink.record_opt_pass(pass.name(), pn, pc);
                }
                self.sink.record(PassEvent {
                    stage: Stage::Opt,
                    func: Some((i, f.name.clone())),
                    nanos,
                    changes,
                    insts: f.live_inst_count() as u64,
                });
                states.push(st);
                sched.ran += ran;
                sched.skipped += skipped;
                total += changes;
                f
            })
            .collect();
        total
    }

    /// One `ipsccp` superstep: a parallel gather of per-function
    /// [`CallSummary`](lasagne_opt::sccp::CallSummary) snapshots, the
    /// short serial join that decides interprocedural lattice facts from
    /// the summaries (the only remaining serial work in the opt stage),
    /// and a parallel apply of the decided substitutions. Produces the
    /// exact same module, fact stream, and substitution count as the old
    /// whole-module serial barrier — the join replays the serial
    /// algorithm's `(target, param)` decision order over frozen summaries,
    /// including its intra-invocation cascade (see `opt::sccp`).
    ///
    /// Emits the same `opt.ipsccp.*` counters and `lattice-fact` instants
    /// as `ipsccp_traced`, so traced-run metrics are unchanged, and
    /// records an [`IpsccpRoundTiming`] with the phase breakdown.
    ///
    /// A function that received substitutions was mutated from outside
    /// its own pass runs, so its [`FuncState`] is marked externally
    /// changed: every dirty bit set and the analysis cache dropped.
    fn ipsccp_superstep(
        &self,
        m: &mut Module,
        ip_facts: &mut Vec<IpsccpFact>,
        round: u32,
        states: &mut [FuncState],
    ) -> u64 {
        let mut sp = self.trace.span("opt", "ipsccp");

        // Phase A (parallel): snapshot every function's call sites and
        // address-taken references against the frozen module.
        let tg = Instant::now();
        let mut summaries = {
            let funcs = &m.funcs;
            self.par_section(Stage::Opt, (0..funcs.len()).collect(), |_, i| {
                lasagne_opt::sccp::summarize_calls(&funcs[i])
            })
        };
        let gather_nanos = tg.elapsed().as_nanos();

        // Phase B (serial): replay the lattice decisions over summaries.
        let tj = Instant::now();
        let param_counts: Vec<usize> = m.funcs.iter().map(|f| f.params.len()).collect();
        let new_facts = lasagne_opt::sccp::ipsccp_join(&param_counts, &mut summaries, ip_facts);
        let join_nanos = tj.elapsed().as_nanos();
        self.sink.record(PassEvent {
            stage: Stage::Opt,
            func: None,
            nanos: join_nanos,
            changes: new_facts.len() as u64,
            insts: 0,
        });

        // Phase C (parallel): substitute the decided constants into each
        // target function. Skipped entirely when the round converged with
        // no new facts — the common case from round 1 on.
        let ta = Instant::now();
        let subs: u64 = if new_facts.is_empty() {
            0
        } else {
            let funcs = std::mem::take(&mut m.funcs);
            let facts: &[IpsccpFact] = &new_facts;
            let results = self.par_section(Stage::Opt, funcs, |i, mut f| {
                let n = lasagne_opt::sccp::apply_ipsccp_facts(&mut f, i as u32, facts) as u64;
                (f, n)
            });
            let mut total = 0;
            m.funcs = results
                .into_iter()
                .enumerate()
                .map(|(i, (f, n))| {
                    if n > 0 {
                        states[i].note_external_change();
                    }
                    total += n;
                    f
                })
                .collect();
            total
        };
        let apply_nanos = ta.elapsed().as_nanos();

        self.trace.add("opt.ipsccp.facts", new_facts.len() as u64);
        self.trace.add("opt.ipsccp.substitutions", subs);
        if self.trace.is_enabled() {
            for fact in &new_facts {
                self.trace.instant(
                    "opt",
                    "lattice-fact",
                    vec![
                        (
                            "func",
                            lasagne_trace::ArgVal::from(m.funcs[fact.func as usize].name.as_str()),
                        ),
                        ("param", lasagne_trace::ArgVal::from(fact.param as u64)),
                        (
                            "value",
                            lasagne_trace::ArgVal::from(format!("{:?}", fact.value)),
                        ),
                    ],
                );
            }
        }
        self.sink.record_ipsccp_round(IpsccpRoundTiming {
            round,
            gather_nanos,
            join_nanos,
            apply_nanos,
            facts: new_facts.len() as u64,
            substitutions: subs,
        });
        sp.arg("changes", subs);
        subs
    }

    /// Runs the Figure 3 pipeline on `bin`.
    ///
    /// # Errors
    ///
    /// Returns a [`LiftError`] if the binary cannot be lifted.
    pub fn translate(&self, bin: &Binary) -> Result<Translation, LiftError> {
        let version = self.version;
        if self.jobs > 1 {
            self.trace.declare_tracks(self.jobs as u32);
        }

        // #0 Warm path: serve the whole post-opt module from the cache and
        // go straight to Arm code generation. No lift/refine/fences/merge/
        // opt events reach the sink because none of that work runs; a
        // traced run records a single `cache-hit` span instead, and the
        // fence-provenance counters are replayed from the cached metadata
        // so warm metrics match a cold run's.
        if let Some(cache) = self.cache {
            if let Some(cached) = cache.load(module_key(bin, version)) {
                let stats = stats_from_array(cached.module_stats);
                if self.trace.is_enabled() {
                    let (mut frm, mut fww, mut skipped) = (0u64, 0u64, 0u64);
                    for meta in &cached.metas {
                        frm += meta.frm;
                        fww += meta.fww;
                        skipped += meta.skipped_stack;
                    }
                    self.trace.add("fences.placed.frm", frm);
                    self.trace.add("fences.placed.fww", fww);
                    self.trace.add("fences.elided.stack", skipped);
                    self.trace.add("fences.naive", stats.fences_naive as u64);
                    self.trace.add(
                        "fences.merged",
                        stats.fences_placed.saturating_sub(stats.fences_final) as u64,
                    );
                }
                let mut sp = self.trace.span("cache", "cache-hit");
                sp.arg("funcs", cached.module.funcs.len());
                return Ok(self.armgen(cached.module, stats));
            }
        }

        // The cold path runs as two fused regions plus the opt-stage
        // continuation, with only the true interprocedural joins as
        // barriers:
        //
        //   region A : per function, lift (+ post-lift counts + the
        //              Figure 14 naive-fence baseline) → refine round 0
        //   join 1   : error propagation, `LiftPlan::finish` (module
        //              assembly + verification), parameter promotion
        //   (PPOpt)  : fused [sweep → refine] sections between promotion
        //              joins until the refinement loop converges
        //   tail     : per function, final sweep → fence placement →
        //              fence merge → opt-prefix round 0
        //   join 2   : fence totals + provenance assembly
        //   opt      : ipsccp superstep (gather/join/apply — join 3) +
        //              fused suffix, remaining rounds, compaction
        //
        // Six stage-wide barriers under the old schedule; three joins now.

        // ---- Region A: the whole-binary analysis (CFGs, type discovery,
        // shells) is the serial prologue; everything per-function flows as
        // one fused work item.
        let wall_a = Instant::now();
        let plan = self.module_step(Stage::Lift, "prepare", || {
            (LiftPlan::prepare(bin, TranslateOptions::default()), 0)
        })?;
        // x86 entry addresses, captured while the plan still exists: work
        // index i is FuncId(i), so this is parallel to `m.funcs` below.
        let addrs: Vec<u64> = (0..plan.num_functions())
            .map(|i| plan.function_addr(i))
            .collect();
        // The module shell refine round 0 runs against *before* finish:
        // globals + externs with an empty function table — exactly the
        // view `func_pass` gives passes after finish (the function table
        // is taken out for ownership), so fusing changes nothing.
        let shell_a = plan.shell_module();
        let a_stages: &[Stage] = if version == Version::PPOpt {
            &[Stage::Lift, Stage::Fences, Stage::Refine]
        } else {
            &[Stage::Lift, Stage::Fences]
        };
        struct LiftOut {
            body: Result<Function, LiftError>,
            lift_nanos: u128,
            /// Live instruction count straight out of the lifter.
            lifted_insts: u64,
            casts: u64,
            naive: u64,
            naive_nanos: u128,
            /// `(nanos, changes, insts_after)` of refine round 0 (PPOpt).
            refine: Option<(u128, u64, u64)>,
        }
        let lifted = self.fused_section(a_stages, (0..plan.num_functions()).collect(), |i, _| {
            let mut sp = self.trace.span("lift", plan.function_name(i));
            let t0 = Instant::now();
            let body = plan.lift_function_traced(i, &self.trace);
            if let Ok(b) = &body {
                sp.arg("insts", b.live_inst_count());
            }
            let lift_nanos = t0.elapsed().as_nanos();
            drop(sp);
            let mut f = match body {
                Ok(f) => f,
                Err(e) => {
                    return LiftOut {
                        body: Err(e),
                        lift_nanos,
                        lifted_insts: 0,
                        casts: 0,
                        naive: 0,
                        naive_nanos: 0,
                        refine: None,
                    }
                }
            };
            let lifted_insts = f.live_inst_count() as u64;
            let casts = count_casts_fn(&f);
            // Figure 14 baseline: fences the unrefined, unmerged lifted
            // code would receive, measured on a scratch clone. The plain
            // (untraced) `place_fences` keeps the baseline out of the
            // provenance counters — those describe the real placement.
            let tn = Instant::now();
            let mut scratch = f.clone();
            let naive =
                lasagne_fences::place_fences(&mut scratch, Strategy::StackAware).total() as u64;
            let naive_nanos = tn.elapsed().as_nanos();
            let refine = (version == Version::PPOpt).then(|| {
                let mut sp = self.trace.span("refine", &f.name);
                let t0 = Instant::now();
                let c =
                    lasagne_refine::refine_function_traced(&shell_a, &mut f, &self.trace) as u64;
                sp.arg("changes", c);
                (t0.elapsed().as_nanos(), c, f.live_inst_count() as u64)
            });
            LiftOut {
                body: Ok(f),
                lift_nanos,
                lifted_insts,
                casts,
                naive,
                naive_nanos,
                refine,
            }
        });

        // Join 1: propagate lift errors in index order, install the bodies
        // (`finish` verifies the module), fold the per-function counts.
        let mut bodies = Vec::with_capacity(plan.num_functions());
        let mut refine_changed = 0u64;
        let (mut casts_lifted, mut insts_lifted) = (0u64, 0u64);
        let (mut naive_total, mut naive_nanos_total) = (0u64, 0u128);
        let mut lift_nanos_total = 0u128;
        let mut refine0_nanos_total = 0u128;
        let mut refine_events: Vec<PassEvent> = Vec::new();
        for (i, out) in lifted.into_iter().enumerate() {
            let f = out.body?;
            self.sink.record(PassEvent {
                stage: Stage::Lift,
                func: Some((i, plan.function_name(i).to_string())),
                nanos: out.lift_nanos,
                changes: out.lifted_insts,
                insts: out.lifted_insts,
            });
            lift_nanos_total += out.lift_nanos;
            casts_lifted += out.casts;
            insts_lifted += out.lifted_insts;
            naive_total += out.naive;
            naive_nanos_total += out.naive_nanos;
            if let Some((nanos, changes, insts)) = out.refine {
                refine_changed += changes;
                refine0_nanos_total += nanos;
                refine_events.push(PassEvent {
                    stage: Stage::Refine,
                    func: Some((i, f.name.clone())),
                    nanos,
                    changes,
                    insts,
                });
            }
            bodies.push(f);
        }
        let mut m = self.module_step(Stage::Lift, "finish", || (plan.finish(bodies), 0))?;
        for ev in refine_events {
            self.sink.record(ev);
        }

        let mut stats = TranslationStats {
            casts_lifted: casts_lifted as usize,
            insts_lifted: insts_lifted as usize,
            fences_naive: naive_total as usize,
            ..TranslationStats::default()
        };
        // The baseline was module-level serial work under the old
        // schedule; keep it a module-level event (its nanos are the sum
        // of the per-function measurements inside the fused items).
        self.sink.record(PassEvent {
            stage: Stage::Fences,
            func: None,
            nanos: naive_nanos_total,
            changes: naive_total,
            insts: 0,
        });
        self.trace.add("fences.naive", naive_total);

        // #2 IR refinement (§5, PPOpt only): round 0 already ran inside
        // region A; each further round is a serial parameter-promotion
        // join followed by a fused [sweep → refine] section, matching
        // `lasagne_refine::refine_module`'s R→P→S iteration exactly —
        // the loop's final sweep is fused into the tail section below.
        let mut promoted = 0u64;
        if version == Version::PPOpt {
            promoted = self.module_step(Stage::Refine, "promote-params", || {
                let p = lasagne_refine::promote_pointer_params_traced(&mut m, &self.trace) as u64;
                (p, p)
            });
        }
        let a_nanos = wall_a.elapsed().as_nanos();
        let mut a_parts: Vec<(Stage, u128)> = vec![
            (Stage::Lift, lift_nanos_total),
            (Stage::Fences, naive_nanos_total),
        ];
        if version == Version::PPOpt {
            a_parts.push((Stage::Refine, refine0_nanos_total));
        }
        self.sink.record_region_wall(&a_parts, a_nanos);
        self.sink.record_fused_wall(a_nanos);

        if version == Version::PPOpt {
            // `r` counts completed refine→promote pairs; the pending
            // sweep for round r runs in the next section (or the tail).
            let mut r = 0u32;
            loop {
                if (refine_changed == 0 && promoted == 0) || r == 2 {
                    break;
                }
                let wall = Instant::now();
                let funcs = std::mem::take(&mut m.funcs);
                let shell: &Module = &m;
                let results = self.fused_section(&[Stage::Refine], funcs, |_, mut f| {
                    let mut sp = self.trace.span("refine", &f.name);
                    let ts = Instant::now();
                    let swept = lasagne_refine::sweep_dead(&mut f) as u64;
                    let sweep_nanos = ts.elapsed().as_nanos();
                    sp.arg("changes", swept);
                    drop(sp);
                    let mut sp = self.trace.span("refine", &f.name);
                    let tr = Instant::now();
                    let c =
                        lasagne_refine::refine_function_traced(shell, &mut f, &self.trace) as u64;
                    sp.arg("changes", c);
                    let refine_nanos = tr.elapsed().as_nanos();
                    (f, swept, sweep_nanos, c, refine_nanos)
                });
                refine_changed = 0;
                m.funcs = results
                    .into_iter()
                    .enumerate()
                    .map(|(i, (f, swept, sweep_nanos, changes, refine_nanos))| {
                        let insts = f.live_inst_count() as u64;
                        self.sink.record(PassEvent {
                            stage: Stage::Refine,
                            func: Some((i, f.name.clone())),
                            nanos: sweep_nanos,
                            changes: swept,
                            insts,
                        });
                        self.sink.record(PassEvent {
                            stage: Stage::Refine,
                            func: Some((i, f.name.clone())),
                            nanos: refine_nanos,
                            changes,
                            insts,
                        });
                        refine_changed += changes;
                        f
                    })
                    .collect();
                r += 1;
                promoted = self.module_step(Stage::Refine, "promote-params", || {
                    let p =
                        lasagne_refine::promote_pointer_params_traced(&mut m, &self.trace) as u64;
                    (p, p)
                });
                let nanos = wall.elapsed().as_nanos();
                self.sink.record_stage_wall(Stage::Refine, nanos);
                self.sink.record_fused_wall(nanos);
            }
        }

        // ---- Fused tail: per function, the refinement loop's final
        // sweep (#2), precise fence placement (#3, §8), fence merging
        // (#4, POpt/PPOpt), the post-merge fence census, and round 0 of
        // the intraprocedural opt prefix (#5) — one fan-out, one barrier.
        let wall_tail = Instant::now();
        let explain = self.explain;
        let opt_split: Option<(&[PassKind], &[PassKind])> = if version != Version::Lifted {
            let order: &'static [PassKind] = &OPT_ORDER;
            let barrier = order
                .iter()
                .position(|p| p.is_interprocedural())
                .expect("OPT_ORDER has an interprocedural barrier");
            debug_assert!(
                order[barrier + 1..].iter().all(|p| !p.is_interprocedural()),
                "fused suffix must be intraprocedural"
            );
            // The suffix starts *at* the barrier pass: `run_pass_on_function`
            // for IpSccp is its local sccp cleanup, which the old schedule
            // ran right after the module-wide barrier.
            Some(order.split_at(barrier))
        } else {
            None
        };
        let mut tail_stages: Vec<Stage> = Vec::new();
        if version == Version::PPOpt {
            tail_stages.push(Stage::Refine);
        }
        tail_stages.push(Stage::Fences);
        if matches!(version, Version::POpt | Version::PPOpt) {
            tail_stages.push(Stage::Merge);
        }
        if version != Version::Lifted {
            tail_stages.push(Stage::Opt);
        }
        struct TailOut {
            f: Function,
            /// `(nanos, changes, insts_after)` of the final sweep (PPOpt).
            sweep: Option<(u128, u64, u64)>,
            casts: u64,
            place_nanos: u128,
            place_insts: u64,
            ps: PlacementStats,
            decisions: Option<Vec<FenceDecision>>,
            /// `(nanos, removed, insts_after)` of the merge (POpt/PPOpt).
            merge: Option<(u128, u64, u64)>,
            merges: Option<Vec<FenceMerge>>,
            /// Post-merge `(Frm, Fww, Fsc)` counts.
            fences: (usize, usize, usize),
            /// Opt-prefix round 0 output (non-Lifted).
            prefix: Option<PrefixOut>,
        }
        /// Round 0 of the opt prefix, run inside the fused tail item: the
        /// timing/change numbers plus the function's scheduler state,
        /// which the superstep and suffix blocks keep threading.
        struct PrefixOut {
            nanos: u128,
            per_pass: Vec<(PassKind, u128, u64)>,
            changes: u64,
            insts: u64,
            state: FuncState,
            ran: u64,
            skipped: u64,
        }
        let funcs = std::mem::take(&mut m.funcs);
        let shell: &Module = &m;
        let results = self.fused_section(&tail_stages, funcs, |_, mut f| {
            let sweep = (version == Version::PPOpt).then(|| {
                let mut sp = self.trace.span("refine", &f.name);
                let t0 = Instant::now();
                let c = lasagne_refine::sweep_dead(&mut f) as u64;
                sp.arg("changes", c);
                (t0.elapsed().as_nanos(), c, f.live_inst_count() as u64)
            });
            let casts = count_casts_fn(&f);
            let mut sp = self.trace.span("fences", &f.name);
            let t0 = Instant::now();
            let mut dec: Option<Vec<FenceDecision>> = explain.then(Vec::new);
            let ps = lasagne_fences::place_fences_explain(
                &mut f,
                Strategy::StackAware,
                &self.trace,
                dec.as_mut(),
            );
            sp.arg("changes", ps.total() as u64);
            let place_nanos = t0.elapsed().as_nanos();
            drop(sp);
            let place_insts = f.live_inst_count() as u64;
            let (merge, merges) = if matches!(version, Version::POpt | Version::PPOpt) {
                let mut sp = self.trace.span("merge", &f.name);
                let t0 = Instant::now();
                let mut mg: Option<Vec<FenceMerge>> = explain.then(Vec::new);
                let n = lasagne_fences::merge_fences_explain(&mut f, &self.trace, mg.as_mut());
                sp.arg("changes", n as u64);
                (
                    Some((
                        t0.elapsed().as_nanos(),
                        n as u64,
                        f.live_inst_count() as u64,
                    )),
                    mg,
                )
            } else {
                (None, None)
            };
            let fences = lasagne_fences::count_fences_fn(&f);
            let prefix = opt_split.map(|(prefix, _)| {
                let mut sp = self.trace.span("opt", &f.name);
                let t0 = Instant::now();
                let mut st = FuncState::new();
                let mut per_pass: Vec<(PassKind, u128, u64)> = Vec::with_capacity(prefix.len());
                let mut changes = 0u64;
                let (mut ran, mut skipped) = (0u64, 0u64);
                for &pass in prefix {
                    if !st.should_run(pass) {
                        skipped += 1;
                        continue;
                    }
                    ran += 1;
                    let tp = Instant::now();
                    let eff = lasagne_opt::run_pass_on_function_eff(
                        pass,
                        shell,
                        &mut f,
                        &mut st.analyses,
                    );
                    st.note_ran(pass, &eff);
                    per_pass.push((pass, tp.elapsed().as_nanos(), eff.changes as u64));
                    changes += eff.changes as u64;
                }
                sp.arg("changes", changes);
                PrefixOut {
                    nanos: t0.elapsed().as_nanos(),
                    per_pass,
                    changes,
                    insts: f.live_inst_count() as u64,
                    state: st,
                    ran,
                    skipped,
                }
            });
            TailOut {
                f,
                sweep,
                casts,
                place_nanos,
                place_insts,
                ps,
                decisions: dec,
                merge,
                merges,
                fences,
                prefix,
            }
        });

        // Join 2: reassemble the module, fold fence totals, record the
        // per-segment events, and assemble provenance.
        let nfuncs = results.len();
        let mut casts_final = 0u64;
        let mut fences_placed = 0u64;
        let (mut frm, mut fww, mut fsc) = (0usize, 0usize, 0usize);
        let mut prefix_changes = 0u64;
        let mut states: Vec<FuncState> = Vec::with_capacity(nfuncs);
        let mut sched = SchedStats::default();
        let mut sweep_nanos_total = 0u128;
        let mut place_nanos_total = 0u128;
        let mut merge_nanos_total = 0u128;
        let mut prefix_nanos_total = 0u128;
        let mut placement = vec![PlacementStats::default(); nfuncs];
        let mut decision_by_func = vec![Vec::new(); nfuncs];
        let mut merge_by_func = vec![Vec::new(); nfuncs];
        m.funcs = results
            .into_iter()
            .enumerate()
            .map(|(i, out)| {
                let TailOut {
                    f,
                    sweep,
                    casts,
                    place_nanos,
                    place_insts,
                    ps,
                    decisions,
                    merge,
                    merges,
                    fences,
                    prefix,
                } = out;
                if let Some((nanos, changes, insts)) = sweep {
                    sweep_nanos_total += nanos;
                    self.sink.record(PassEvent {
                        stage: Stage::Refine,
                        func: Some((i, f.name.clone())),
                        nanos,
                        changes,
                        insts,
                    });
                }
                casts_final += casts;
                place_nanos_total += place_nanos;
                self.sink.record(PassEvent {
                    stage: Stage::Fences,
                    func: Some((i, f.name.clone())),
                    nanos: place_nanos,
                    changes: ps.total() as u64,
                    insts: place_insts,
                });
                fences_placed += ps.total() as u64;
                placement[i] = ps;
                if let Some(d) = decisions {
                    decision_by_func[i] = d;
                }
                if let Some((nanos, changes, insts)) = merge {
                    merge_nanos_total += nanos;
                    self.sink.record(PassEvent {
                        stage: Stage::Merge,
                        func: Some((i, f.name.clone())),
                        nanos,
                        changes,
                        insts,
                    });
                }
                if let Some(mg) = merges {
                    merge_by_func[i] = mg;
                }
                frm += fences.0;
                fww += fences.1;
                fsc += fences.2;
                if let Some(p) = prefix {
                    prefix_nanos_total += p.nanos;
                    for (pass, pn, pc) in p.per_pass {
                        self.sink.record_opt_pass(pass.name(), pn, pc);
                    }
                    self.sink.record(PassEvent {
                        stage: Stage::Opt,
                        func: Some((i, f.name.clone())),
                        nanos: p.nanos,
                        changes: p.changes,
                        insts: p.insts,
                    });
                    prefix_changes += p.changes;
                    states.push(p.state);
                    sched.ran += p.ran;
                    sched.skipped += p.skipped;
                }
                f
            })
            .collect();
        stats.casts_final = casts_final as usize;
        stats.fences_placed = fences_placed as usize;
        stats.fences_final = frm + fww + fsc;

        // Per-function provenance: a merge that removed a fence
        // re-attributes the matching placement decision from Placed to
        // Merged. `InstId`s are arena-stable, so matching the inserted
        // fence id is exact.
        if explain {
            let mut records = Vec::with_capacity(m.funcs.len());
            for (i, f) in m.funcs.iter().enumerate() {
                let mut decisions = std::mem::take(&mut decision_by_func[i]);
                let merges = std::mem::take(&mut merge_by_func[i]);
                for mg in &merges {
                    if let Some(d) = decisions.iter_mut().find(|d| d.fence == Some(mg.removed)) {
                        d.fate = FenceFate::Merged;
                    }
                }
                records.push(FuncFenceRecord {
                    index: i,
                    name: f.name.clone(),
                    addr: addrs.get(i).copied().unwrap_or(0),
                    decisions,
                    merges,
                });
            }
            *lock_clean(&self.provenance) = records;
        }
        let tail_nanos = wall_tail.elapsed().as_nanos();
        let tail_parts: Vec<(Stage, u128)> = tail_stages
            .iter()
            .map(|s| {
                let cpu = match s {
                    Stage::Refine => sweep_nanos_total,
                    Stage::Fences => place_nanos_total,
                    Stage::Merge => merge_nanos_total,
                    Stage::Opt => prefix_nanos_total,
                    _ => 0,
                };
                (*s, cpu)
            })
            .collect();
        self.sink.record_region_wall(&tail_parts, tail_nanos);
        self.sink.record_fused_wall(tail_nanos);

        // #5 continued (everything but Lifted): round 0's intraprocedural
        // prefix already ran inside the tail items, so finish the round
        // with the `ipsccp` superstep (parallel gather, serial join,
        // parallel apply — join 3) and the fused suffix, then run the
        // remaining rounds on the 3-barrier schedule from PR 5. The
        // ipsccp substitution decisions are logged: each one is an
        // interprocedural fact the target function's cache key digests.
        let mut ip_facts: Vec<IpsccpFact> = Vec::new();
        let wall = Instant::now();
        if let Some((prefix, suffix)) = opt_split {
            sched.rounds = 1;
            let mut round0 = prefix_changes;
            {
                let mut sp = self.trace.span("opt", "round");
                sp.arg("round", 0u64);
                round0 += self.ipsccp_superstep(&mut m, &mut ip_facts, 0, &mut states);
                round0 += self.fused_opt_block(&mut m, suffix, &mut states, &mut sched);
                sp.arg("changes", round0);
            }
            sched.changes += round0 as usize;
            if round0 != 0 {
                for round_idx in 1..3u32 {
                    sched.rounds += 1;
                    sched.retired += states.iter().filter(|s| s.is_converged()).count() as u64;
                    let mut sp = self.trace.span("opt", "round");
                    sp.arg("round", round_idx as u64);
                    let mut round = 0;
                    round += self.fused_opt_block(&mut m, prefix, &mut states, &mut sched);
                    round += self.ipsccp_superstep(&mut m, &mut ip_facts, round_idx, &mut states);
                    round += self.fused_opt_block(&mut m, suffix, &mut states, &mut sched);
                    sp.arg("changes", round);
                    sched.changes += round as usize;
                    if round == 0 {
                        break;
                    }
                }
            }
            // Compaction is a no-op on a function whose arena is already
            // dense and in block order — `is_compacted()` proves it, so
            // the rebuild is skipped (byte-identical either way).
            for f in &m.funcs {
                if f.is_compacted() {
                    sched.compact_skipped += 1;
                } else {
                    sched.compacted += 1;
                }
            }
            self.func_pass(Stage::Opt, &mut m, |_, _, f| {
                if !f.is_compacted() {
                    f.compact();
                }
                0
            });
            self.trace.add("opt.sched.ran", sched.ran);
            self.trace.add("opt.sched.skipped", sched.skipped);
            self.trace.add("opt.sched.retired", sched.retired);
            self.sink.record_opt_sched(&sched);
        }
        self.sink
            .record_stage_wall(Stage::Opt, wall.elapsed().as_nanos());
        stats.insts_final = m.inst_count();

        // Persist the cold result before code generation: everything the
        // cache replays is exactly the work done up to this point.
        if let Some(cache) = self.cache {
            self.store_cold(cache, bin, &m, &stats, &placement, &ip_facts);
        }

        Ok(self.armgen(m, stats))
    }

    /// Writes the post-`opt` module into `cache`, keyed per function on
    /// code bytes + consumed interprocedural facts (see [`module_key`] and
    /// the key documentation on this module). A binary whose symbols do
    /// not cover some module function is left uncached — its provenance
    /// cannot be content-addressed.
    fn store_cold(
        &self,
        cache: &TranslationCache,
        bin: &Binary,
        m: &Module,
        stats: &TranslationStats,
        placement: &[PlacementStats],
        ip_facts: &[IpsccpFact],
    ) {
        let passes = pass_list(self.version);
        let shell = shell_digest(m);
        let per_func = self.sink.per_func_nanos(m.funcs.len());
        let mut entries = Vec::with_capacity(m.funcs.len());
        for (i, f) in m.funcs.iter().enumerate() {
            let Some(sym) = bin.function_by_name(&f.name) else {
                return;
            };
            let key = func_key(
                bin.code_of(sym),
                self.version,
                &passes,
                shell,
                m,
                i,
                ip_facts,
            );
            let ps = placement.get(i).copied().unwrap_or_default();
            entries.push(ManifestEntry {
                name: f.name.clone(),
                key,
                // Pinned to the artifact file bytes by `store`.
                digest: 0,
                meta: FuncMeta {
                    frm: ps.frm as u64,
                    fww: ps.fww as u64,
                    skipped_stack: ps.skipped_stack as u64,
                    cold_nanos: per_func[i] as u64,
                },
            });
        }
        let manifest = Manifest {
            version: self.version.name().to_string(),
            passes,
            module_stats: stats_to_array(stats),
            globals: m.globals.clone(),
            externs: m.externs.clone(),
            entries,
        };
        cache.store(module_key(bin, self.version), &manifest, &m.funcs);
    }

    /// #6 Arm code generation (Figure 8b) + frame-slot peephole, per
    /// function, merged in index order. Shared verbatim by the cold path
    /// and the warm (cache-served) path, which is why warm output is
    /// byte-identical to cold output.
    fn armgen(&self, m: Module, stats: TranslationStats) -> Translation {
        debug_assert!(lasagne_lir::verify::verify_module(&m).is_ok());

        let wall = Instant::now();
        let lowered = self.par_section(Stage::ArmGen, (0..m.funcs.len()).collect(), |_, i| {
            let mut sp = self.trace.span("armgen", &m.funcs[i].name);
            let t0 = Instant::now();
            let mut af = lasagne_armgen::lower_function(&m, &m.funcs[i]);
            let ph = lasagne_armgen::peephole_function_traced(&mut af, &self.trace);
            sp.arg("removed", ph.removed() as u64);
            (af, ph, t0.elapsed().as_nanos())
        });
        let mut afuncs = Vec::with_capacity(lowered.len());
        for (i, (af, ph, nanos)) in lowered.into_iter().enumerate() {
            self.sink.record(PassEvent {
                stage: Stage::ArmGen,
                func: Some((i, af.name.clone())),
                nanos,
                changes: ph.removed() as u64,
                insts: af.blocks.iter().map(|b| b.insts.len() as u64).sum(),
            });
            afuncs.push(af);
        }
        let arm = lasagne_armgen::assemble_module(&m, afuncs);
        self.sink
            .record_stage_wall(Stage::ArmGen, wall.elapsed().as_nanos());

        Translation {
            module: m,
            arm,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_phoenix::all_benchmarks;

    #[test]
    fn par_map_preserves_order_and_values() {
        for jobs in [1, 2, 7, 64] {
            let out = par_map(jobs, (0..100u64).collect(), |i, v| {
                assert_eq!(i as u64, v);
                v * v
            });
            assert_eq!(out, (0..100u64).map(|v| v * v).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = par_map(4, Vec::<u64>::new(), |_, v| v);
        assert!(empty.is_empty());
    }

    #[test]
    fn parallel_matches_serial_on_histogram() {
        let b = &all_benchmarks(48)[0];
        for v in Version::ALL {
            let (serial, _) = Pipeline::new(v).run(&b.binary).unwrap();
            let (parallel, _) = Pipeline::new(v).with_jobs(4).run(&b.binary).unwrap();
            assert_eq!(
                lasagne_armgen::print::print_module(&serial.arm),
                lasagne_armgen::print::print_module(&parallel.arm),
                "{}: jobs=4 diverged from serial",
                v.name()
            );
            assert_eq!(serial.stats, parallel.stats);
        }
    }

    #[test]
    fn warm_cache_run_is_byte_identical_and_skips_all_passes() {
        let b = &all_benchmarks(48)[0];
        let dir = std::env::temp_dir().join(format!(
            "lasagne-pipeline-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (cold, cold_rep) = Pipeline::new(Version::PPOpt)
            .with_cache(&dir)
            .run(&b.binary)
            .unwrap();
        let cc = cold_rep.cache.expect("cache counters on cold run");
        assert!(!cc.warm);
        assert_eq!(cc.misses, 1);
        assert_eq!(cc.writes as usize, cold.module.funcs.len());

        let (warm, warm_rep) = Pipeline::new(Version::PPOpt)
            .with_cache(&dir)
            .run(&b.binary)
            .unwrap();
        let wc = warm_rep.cache.expect("cache counters on warm run");
        assert!(wc.warm);
        assert_eq!(wc.misses, 0);
        assert_eq!(wc.hits as usize, cold.module.funcs.len());

        assert_eq!(
            lasagne_armgen::print::print_module(&cold.arm),
            lasagne_armgen::print::print_module(&warm.arm),
            "warm output diverged from cold"
        );
        assert_eq!(cold.stats, warm.stats);
        // The acceptance criterion: zero pass executions outside armgen.
        for st in &warm_rep.stages {
            if st.stage != Stage::ArmGen {
                assert!(
                    st.funcs.is_empty() && st.nanos == 0,
                    "warm run recorded {} work in stage {}",
                    st.funcs.len(),
                    st.stage.name()
                );
            }
        }
        let json = warm_rep.to_json();
        assert!(json.contains("\"cache\":{\"warm\":true"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_run_is_byte_identical_and_merges_metrics_into_report() {
        let b = &all_benchmarks(48)[0];
        let (plain, _) = Pipeline::new(Version::PPOpt).run(&b.binary).unwrap();
        let trace = TraceCtx::collecting();
        let (traced, rep) = Pipeline::new(Version::PPOpt)
            .with_jobs(4)
            .with_trace(trace.clone())
            .run(&b.binary)
            .unwrap();
        assert_eq!(
            lasagne_armgen::print::print_module(&plain.arm),
            lasagne_armgen::print::print_module(&traced.arm),
            "tracing changed the translation output"
        );
        assert_eq!(plain.stats, traced.stats);

        let metrics = rep.metrics.as_ref().expect("metrics on traced run");
        let placed = metrics.counter("fences.placed.frm") + metrics.counter("fences.placed.fww");
        assert_eq!(placed as usize, traced.stats.fences_placed);
        assert_eq!(
            metrics.counter("fences.naive") as usize,
            traced.stats.fences_naive
        );
        assert_eq!(
            metrics.counter("fences.merged") as usize,
            traced.stats.fences_placed - traced.stats.fences_final
        );
        assert!(metrics.counter("lift.funcs") > 0);
        let json = rep.to_json();
        assert!(json.starts_with("{\"schema\":6,"), "{json}");
        assert!(json.contains("\"metrics\":{\"counters\":"), "{json}");
        assert!(json.contains("\"opt_sched\":{\"ran\":"), "{json}");
        // The scheduler counters surface in the trace metrics too.
        assert!(metrics.counter("opt.sched.ran") > 0);
        assert_eq!(
            metrics.counter("opt.sched.ran"),
            rep.opt_sched.expect("opt ran").ran
        );

        // Every cold stage shows up as a span category in the event log.
        let events = trace.collector().unwrap().all_events();
        for cat in ["lift", "refine", "fences", "merge", "opt", "armgen"] {
            assert!(
                events.iter().any(|e| e.cat == cat && e.dur_nanos.is_some()),
                "no span recorded for stage {cat}"
            );
        }
        assert!(!events.iter().any(|e| e.cat == "cache"));
    }

    #[test]
    fn explain_fences_matches_placement_stats_and_parallelism() {
        let b = &all_benchmarks(48)[0];
        let (t, records) = Pipeline::new(Version::PPOpt)
            .explain_fences(&b.binary)
            .unwrap();
        assert_eq!(records.len(), t.module.funcs.len());
        let inserted: usize = records.iter().map(FuncFenceRecord::inserted).sum();
        assert_eq!(inserted, t.stats.fences_placed);
        let merged: usize = records.iter().map(FuncFenceRecord::merged).sum();
        assert_eq!(merged, t.stats.fences_placed - t.stats.fences_final);
        // Every decision names its site; merged decisions are a subset of
        // the inserted ones.
        for r in &records {
            assert_eq!(r.placed() + r.merged(), r.inserted());
            for d in &r.decisions {
                assert_eq!(
                    d.fence.is_some(),
                    !matches!(d.fate, lasagne_fences::FenceFate::ElidedStack)
                );
            }
        }
        // Byte-identical translation and identical provenance at jobs=4.
        let (t4, records4) = Pipeline::new(Version::PPOpt)
            .with_jobs(4)
            .explain_fences(&b.binary)
            .unwrap();
        assert_eq!(
            lasagne_armgen::print::print_module(&t.arm),
            lasagne_armgen::print::print_module(&t4.arm)
        );
        assert_eq!(records, records4);
    }

    #[test]
    fn warm_traced_run_emits_cache_hit_span_and_replayed_counters() {
        let b = &all_benchmarks(48)[0];
        let dir = std::env::temp_dir().join(format!(
            "lasagne-pipeline-warm-trace-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cold_trace = TraceCtx::collecting();
        let (cold, _) = Pipeline::new(Version::PPOpt)
            .with_cache(&dir)
            .with_trace(cold_trace.clone())
            .run(&b.binary)
            .unwrap();
        let warm_trace = TraceCtx::collecting();
        let (warm, warm_rep) = Pipeline::new(Version::PPOpt)
            .with_cache(&dir)
            .with_trace(warm_trace.clone())
            .run(&b.binary)
            .unwrap();
        assert_eq!(
            lasagne_armgen::print::print_module(&cold.arm),
            lasagne_armgen::print::print_module(&warm.arm)
        );
        let events = warm_trace.collector().unwrap().all_events();
        assert!(
            events
                .iter()
                .any(|e| e.cat == "cache" && e.name == "cache-hit" && e.dur_nanos.is_some()),
            "warm run did not record a cache-hit span"
        );
        for cat in ["lift", "refine", "fences", "merge", "opt"] {
            assert!(
                !events.iter().any(|e| e.cat == cat),
                "warm run fabricated a {cat} event"
            );
        }
        // Fence counters replayed from cache metadata match the cold run's.
        let cold_m = cold_trace.metrics_snapshot().unwrap();
        let warm_m = warm_rep.metrics.expect("metrics on warm run");
        for c in [
            "fences.placed.frm",
            "fences.placed.fww",
            "fences.elided.stack",
            "fences.merged",
            "fences.naive",
        ] {
            assert_eq!(cold_m.counter(c), warm_m.counter(c), "counter {c} diverged");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_names_all_six_stages_with_per_function_entries() {
        let b = &all_benchmarks(48)[0];
        let (_, report) = Pipeline::new(Version::PPOpt)
            .with_jobs(2)
            .run(&b.binary)
            .unwrap();
        assert_eq!(report.stages.len(), 6);
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.name()).collect();
        assert_eq!(
            names,
            ["lift", "refine", "fences", "merge", "opt", "armgen"]
        );
        for st in &report.stages {
            assert!(
                !st.funcs.is_empty(),
                "stage {} has no per-function entries",
                st.stage.name()
            );
            assert!(st.nanos > 0, "stage {} reports zero time", st.stage.name());
            assert!(
                st.funcs.iter().any(|f| f.nanos > 0),
                "stage {} has no nonzero per-function timing",
                st.stage.name()
            );
        }
        let json = report.to_json();
        for key in [
            "\"stage\":\"lift\"",
            "\"stage\":\"armgen\"",
            "\"func\":",
            "\"total_nanos\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
