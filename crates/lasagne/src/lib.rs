//! Lasagne: an end-to-end static binary translator from x86-64 (TSO) to
//! AArch64 (weak memory model) — the top-level crate of this reproduction
//! of "Lasagne: A Static Binary Translator for Weak Memory Model
//! Architectures" (PLDI 2022).
//!
//! [`translate`] runs the Figure 3 pipeline on an x86 binary image:
//!
//! 1. **Binary lifting** (`lasagne-lifter`, §4) to the LIR;
//! 2. **IR refinement** (`lasagne-refine`, §5) — PPOpt only;
//! 3. **Fence placement** (`lasagne-fences`, §8) per the verified Figure 8a
//!    mapping, with the stack-access analysis;
//! 4. **Fence merging** (§7.2/§8) — POpt and PPOpt;
//! 5. **Optimization** (`lasagne-opt`) — Opt, POpt, PPOpt;
//! 6. **Arm code generation** (`lasagne-armgen`) per Figure 8b.
//!
//! The [`Version`] enum selects the paper's §9.1 configurations, and
//! [`Translation`] carries the statistics every figure of the evaluation is
//! built from.
//!
//! # Example
//!
//! ```
//! use lasagne::{translate, Version};
//! use lasagne_x86::asm::Asm;
//! use lasagne_x86::binary::BinaryBuilder;
//! use lasagne_x86::inst::{AluOp, Inst, Rm};
//! use lasagne_x86::reg::{Gpr, Width};
//!
//! let mut b = BinaryBuilder::new();
//! let mut a = Asm::new();
//! a.push(Inst::MovRRm { w: Width::W64, dst: Gpr::Rax, src: Rm::Mem(
//!     lasagne_x86::inst::MemRef::base(Gpr::Rdi)) });
//! a.push(Inst::Ret);
//! let addr = b.next_function_addr();
//! b.add_function("get", a.finish(addr)?);
//!
//! let t = translate(&b.finish(), Version::PPOpt)?;
//! assert!(t.arm.func_by_name("get").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod difftest;
pub mod pipeline;
pub mod serve;

use lasagne_armgen::AModule;
use lasagne_lir::Module;
use lasagne_x86::binary::Binary;

pub use lasagne_lifter::LiftError;
pub use pipeline::{
    CacheReport, FuncFenceRecord, PassManager, Pipeline, PipelineReport, Stage, TimingSink,
    REPORT_SCHEMA,
};

/// The translation configurations of §9.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Lift + precise fence placement only (the unoptimized baseline).
    Lifted,
    /// [`Version::Lifted`] + the standard optimization pipeline.
    Opt,
    /// [`Version::Opt`] + fence merging (the paper's "Proposed+Opt").
    POpt,
    /// [`Version::POpt`] + IR refinement ("Peephole+Proposed+Opt") —
    /// the full Lasagne.
    PPOpt,
}

impl Version {
    /// All four translated configurations, in Figure 12 order.
    pub const ALL: [Version; 4] = [Version::Lifted, Version::Opt, Version::POpt, Version::PPOpt];

    /// Display name used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Version::Lifted => "Lifted",
            Version::Opt => "Opt",
            Version::POpt => "POpt",
            Version::PPOpt => "PPOpt",
        }
    }
}

/// Statistics recorded along the pipeline (the raw material of the
/// evaluation's figures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// `inttoptr`/`ptrtoint` instructions right after lifting (Figure 13
    /// baseline).
    pub casts_lifted: usize,
    /// Integer/pointer casts after refinement (PPOpt) or after lifting
    /// (other versions).
    pub casts_final: usize,
    /// Fences the §8 placement inserts on the *unrefined* lifted code with
    /// no merging — the Figure 14 baseline ("unoptimized lifted code").
    pub fences_naive: usize,
    /// Fences actually inserted by the §8 placement.
    pub fences_placed: usize,
    /// Fences remaining after merging (== `fences_placed` when merging is
    /// off for this version).
    pub fences_final: usize,
    /// LIR instructions after lifting.
    pub insts_lifted: usize,
    /// LIR instructions in the final module (Figure 16 metric).
    pub insts_final: usize,
}

impl TranslationStats {
    /// Figure 14's metric: % fences removed relative to naive placement.
    pub fn fence_reduction_pct(&self) -> f64 {
        if self.fences_naive == 0 {
            return 0.0;
        }
        100.0 * (self.fences_naive - self.fences_final) as f64 / self.fences_naive as f64
    }

    /// Figure 13's metric: % integer↔pointer casts removed.
    pub fn cast_reduction_pct(&self) -> f64 {
        if self.casts_lifted == 0 {
            return 0.0;
        }
        100.0 * (self.casts_lifted.saturating_sub(self.casts_final)) as f64
            / self.casts_lifted as f64
    }
}

/// A completed translation.
#[derive(Debug, Clone)]
pub struct Translation {
    /// The final LIR module (fences placed, optimizations applied).
    pub module: Module,
    /// The lowered AArch64 module.
    pub arm: AModule,
    /// Pipeline statistics.
    pub stats: TranslationStats,
}

/// Runs the full pipeline on `bin` under the chosen configuration.
///
/// This is the serial form of [`pipeline::Pipeline`]: the same
/// [`pipeline::PassManager`] stages run on one thread and the timing
/// report is discarded. Use `Pipeline::new(version).with_jobs(n).run(bin)`
/// for parallel, instrumented translation — the output is byte-identical
/// for every job count.
///
/// # Errors
///
/// Returns a [`LiftError`] if the binary cannot be lifted.
pub fn translate(bin: &Binary, version: Version) -> Result<Translation, LiftError> {
    let sink = TimingSink::new();
    PassManager::new(version, 1, &sink).translate(bin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_armgen::machine::ArmMachine;
    use lasagne_phoenix::all_benchmarks;

    fn run_arm(t: &Translation, w: &lasagne_phoenix::Workload) -> (u64, u64) {
        let idx = t.arm.func_by_name("main").unwrap();
        let mut arm = ArmMachine::new(&t.arm);
        for (addr, bytes) in &w.mem_init {
            arm.mem.write(*addr, bytes);
        }
        let r = arm.run(idx, &w.args, &[]).unwrap();
        (r.ret, r.critical_path_cycles())
    }

    #[test]
    fn all_versions_correct_on_histogram() {
        let b = &all_benchmarks(64)[0];
        for v in Version::ALL {
            let t = translate(&b.binary, v).unwrap();
            let (ret, _) = run_arm(&t, &b.workload);
            assert_eq!(
                ret,
                b.workload.expected_ret,
                "{} under {}",
                b.name,
                v.name()
            );
        }
    }

    #[test]
    fn versions_form_a_performance_ladder() {
        // Per benchmark: each version within 1.5% of the previous one
        // (mirroring the paper's overlapping confidence intervals), and
        // PPOpt strictly faster than Lifted. In aggregate (geometric mean)
        // the ladder must be strictly monotone, as in Figure 12.
        let mut agg = vec![1.0f64; 4];
        let mut n = 0usize;
        for b in all_benchmarks(64) {
            let mut cycles = Vec::new();
            for v in Version::ALL {
                let t = translate(&b.binary, v).unwrap();
                let (ret, c) = run_arm(&t, &b.workload);
                assert_eq!(
                    ret,
                    b.workload.expected_ret,
                    "{} under {}",
                    b.name,
                    v.name()
                );
                cycles.push(c);
            }
            for w in cycles.windows(2) {
                assert!(
                    (w[1] as f64) <= w[0] as f64 * 1.015,
                    "{}: version regressed beyond tolerance: {} -> {}",
                    b.name,
                    w[0],
                    w[1]
                );
            }
            assert!(
                cycles[3] < cycles[0],
                "{}: PPOpt not faster than Lifted",
                b.name
            );
            for (i, c) in cycles.iter().enumerate() {
                agg[i] *= *c as f64;
            }
            n += 1;
        }
        let gm: Vec<f64> = agg.iter().map(|p| p.powf(1.0 / n as f64)).collect();
        assert!(
            gm[0] > gm[1] && gm[1] >= gm[2] && gm[2] >= gm[3],
            "aggregate ladder broken: {gm:?}"
        );
    }

    #[test]
    fn stats_invariants() {
        for b in all_benchmarks(48) {
            for v in Version::ALL {
                let t = translate(&b.binary, v).unwrap();
                let s = t.stats;
                assert!(
                    s.fences_final <= s.fences_placed,
                    "{v:?}: merging cannot add fences"
                );
                assert!(
                    s.fences_placed <= s.fences_naive,
                    "{v:?}: the §8 placement cannot exceed the unrefined baseline"
                );
                assert!(s.insts_lifted > 0 && s.insts_final > 0);
                if v == Version::Lifted {
                    assert_eq!(s.fences_final, s.fences_placed, "Lifted does not merge");
                    assert_eq!(s.casts_final, s.casts_lifted, "Lifted does not refine");
                }
                if v == Version::PPOpt {
                    assert!(s.casts_final <= s.casts_lifted);
                }
                // The lowered Arm module carries one dmb per IR fence (plus
                // a DMBFF pair per atomic RMW, of which the Phoenix suite
                // has none — hence ≥).
                let (ld, st, ff) = t.arm.count_dmbs();
                assert!(
                    ld + st + ff >= s.fences_final,
                    "{v:?}: Figure 8b lost fences"
                );
            }
        }
    }

    #[test]
    fn ppopt_reduces_fences_substantially() {
        // Figure 14's shape: PPOpt reduces fences w.r.t. naive placement by
        // a large margin; POpt by a smaller one.
        for b in all_benchmarks(64) {
            let popt = translate(&b.binary, Version::POpt).unwrap().stats;
            let ppopt = translate(&b.binary, Version::PPOpt).unwrap().stats;
            assert!(
                ppopt.fence_reduction_pct() > popt.fence_reduction_pct(),
                "{}: PPOpt {}% vs POpt {}%",
                b.name,
                ppopt.fence_reduction_pct(),
                popt.fence_reduction_pct()
            );
            assert!(
                ppopt.fence_reduction_pct() > 15.0,
                "{}: refinement should remove a large share of fences, got {:.1}%",
                b.name,
                ppopt.fence_reduction_pct()
            );
        }
    }

    #[test]
    fn ppopt_removes_pointer_casts() {
        // Figure 13's shape: a large share of inttoptr/ptrtoint disappears.
        for b in all_benchmarks(64) {
            let t = translate(&b.binary, Version::PPOpt).unwrap();
            assert!(
                t.stats.cast_reduction_pct() > 20.0,
                "{}: cast reduction only {:.1}%",
                b.name,
                t.stats.cast_reduction_pct()
            );
        }
    }

    #[test]
    fn optimization_shrinks_code() {
        // Figure 16's shape: Opt/POpt/PPOpt much smaller than Lifted.
        for b in all_benchmarks(64) {
            let lifted = translate(&b.binary, Version::Lifted).unwrap().stats;
            let ppopt = translate(&b.binary, Version::PPOpt).unwrap().stats;
            assert!(
                ppopt.insts_final * 2 < lifted.insts_final,
                "{}: PPOpt {} vs Lifted {} instructions",
                b.name,
                ppopt.insts_final,
                lifted.insts_final
            );
        }
    }
}
