//! Three-way differential execution testing.
//!
//! Every generated or benchmark x86 binary is executed by **three
//! independent oracles** and all observations must agree:
//!
//! ```text
//!                    ┌────────────────────────┐
//!                    │   x86 machine-code     │
//!                    │        bytes           │
//!                    └───┬───────┬────────┬───┘
//!                        │       │        │
//!            decode+run  │  lift │        │ translate (4 Versions ×
//!            the bytes   │       │        │  cold/warm × jobs 1/4)
//!                        ▼       ▼        ▼
//!                 x86-interp   LIR-interp   ArmMachine
//!                        │       │        │
//!                        └───────┴────────┘
//!                      ret + final memory must agree
//! ```
//!
//! The left leg (`lasagne_x86::interp`) shares no code with the lifter, so
//! unlike the original two-way harness a lifter bug cannot be shared by
//! the reference and the system under test. The corpus is the union of
//! qc-generated random functions (straight-line and with control flow) and
//! the full Phoenix suite; [`run_difftest`] sweeps both and reports counts
//! plus the shrunk counterexample of the first divergence, if any.
//!
//! The generator lives here (not in `tests/`) so the `lasagne difftest`
//! CLI mode, CI, and the integration test share one instruction corpus.

use crate::{translate, Pipeline, Version};
use lasagne_armgen::machine::ArmMachine;
use lasagne_armgen::AModule;
use lasagne_lir::interp::{Machine, Val};
use lasagne_lir::Module;
use lasagne_phoenix::{all_benchmarks, Benchmark};
use lasagne_qc::prelude::*;
use lasagne_qc::runner::{self, Failure, TestInfo};
use lasagne_qc::{collection, prop_oneof, regress};
use lasagne_x86::asm::Asm;
use lasagne_x86::binary::{Binary, BinaryBuilder};
use lasagne_x86::inst::{AluOp, FpPrec, Inst, MemRef, Rm, ShiftOp, SseOp, XmmRm};
use lasagne_x86::interp::{X86Machine, HEAP_BASE};
use lasagne_x86::reg::{Cond, Gpr, Width, Xmm};
use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Shared memory region base passed in RDI (same as the workload base the
/// Phoenix suite uses — the two corpora never run in the same machine).
pub const REGION: u64 = 0x4000_0000;
/// Number of 8-byte slots compared after a run.
pub const REGION_SLOTS: i64 = 8;

/// Scratch registers the generator plays with.
pub const REGS: [Gpr; 5] = [Gpr::Rax, Gpr::Rcx, Gpr::Rdx, Gpr::R8, Gpr::R9];

// ---- generator -----------------------------------------------------------

/// Any register a generated op may read.
pub fn any_reg() -> impl Strategy<Value = Gpr> {
    prop_oneof![
        Just(REGS[0]),
        Just(REGS[1]),
        Just(REGS[2]),
        Just(REGS[3]),
        Just(REGS[4]),
        Just(Gpr::Rdi),
        Just(Gpr::Rsi),
    ]
}

/// Any register a generated op may write (never RDI, the region pointer).
pub fn any_dst() -> impl Strategy<Value = Gpr> {
    prop_oneof![
        Just(REGS[0]),
        Just(REGS[1]),
        Just(REGS[2]),
        Just(REGS[3]),
        Just(REGS[4])
    ]
}

/// Full operand-width coverage: the assembler encodes all four widths for
/// the mov/ALU forms the generator emits, and the lifter's merge-write
/// model for W8/W16 destinations is exactly what the byte-level
/// interpreter implements.
pub fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

/// A region slot byte offset.
pub fn any_slot() -> impl Strategy<Value = i64> {
    (0..REGION_SLOTS).prop_map(|s| s * 8)
}

/// All sixteen x86 condition codes (the historical generator only used
/// seven; P/NP in particular exercise the parity-flag model end to end).
pub fn any_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

/// One random instruction of the differential corpus.
#[allow(clippy::too_many_lines)]
pub fn any_op() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // Constants and moves (any width: W8/W16 exercise merge-writes).
        (any_dst(), -1000i64..1000, any_width()).prop_map(|(r, v, w)| Inst::MovRmI {
            w,
            dst: Rm::Reg(r),
            imm: v as i32
        }),
        (any_dst(), any_reg(), any_width()).prop_map(|(d, s, w)| Inst::MovRRm {
            w,
            dst: d,
            src: Rm::Reg(s)
        }),
        // ALU.
        (
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Cmp)
            ],
            any_dst(),
            any_reg(),
            any_width()
        )
            .prop_map(|(op, d, s, w)| Inst::AluRRm {
                op,
                w,
                dst: d,
                src: Rm::Reg(s)
            }),
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::IMul2 {
            w: Width::W64,
            dst: d,
            src: Rm::Reg(s)
        }),
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            any_dst(),
            0u8..32
        )
            .prop_map(|(op, d, k)| Inst::ShiftI {
                op,
                w: Width::W64,
                dst: Rm::Reg(d),
                imm: k
            }),
        // Shift by CL (RCX is scratch, so its low byte is always live).
        (
            prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::Shr), Just(ShiftOp::Sar)],
            any_dst(),
            prop_oneof![Just(Width::W32), Just(Width::W64)]
        )
            .prop_map(|(op, d, w)| Inst::ShiftCl {
                op,
                w,
                dst: Rm::Reg(d)
            }),
        // Width conversions.
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::MovZx {
            dw: Width::W64,
            sw: Width::W8,
            dst: d,
            src: Rm::Reg(s)
        }),
        (any_dst(), any_reg()).prop_map(|(d, s)| Inst::MovSx {
            dw: Width::W64,
            sw: Width::W32,
            dst: d,
            src: Rm::Reg(s)
        }),
        // Address computation.
        (any_dst(), any_slot()).prop_map(|(d, off)| Inst::Lea {
            w: Width::W64,
            dst: d,
            addr: MemRef::base_disp(Gpr::Rdi, off)
        }),
        // Shared memory traffic through the region.
        (any_dst(), any_slot()).prop_map(|(d, off)| Inst::MovRRm {
            w: Width::W64,
            dst: d,
            src: Rm::Mem(MemRef::base_disp(Gpr::Rdi, off))
        }),
        (any_reg(), any_slot()).prop_map(|(s, off)| Inst::MovRmR {
            w: Width::W64,
            dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, off)),
            src: s
        }),
        // Flag consumers.
        (any_cond(), any_dst()).prop_map(|(cc, d)| Inst::Setcc {
            cc,
            dst: Rm::Reg(d)
        }),
        (any_cond(), any_dst(), any_reg()).prop_map(|(cc, d, s)| Inst::Cmovcc {
            cc,
            w: Width::W64,
            dst: d,
            src: Rm::Reg(s)
        }),
        // Atomics.
        (any_reg(), any_slot()).prop_map(|(s, off)| Inst::LockXadd {
            w: Width::W64,
            mem: MemRef::base_disp(Gpr::Rdi, off),
            src: s
        }),
        Just(Inst::Mfence),
        // Scalar FP round-trip (kept deterministic with small ints).
        (any_dst(), any_reg()).prop_map(|(_d, s)| Inst::CvtSi2F {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: Xmm(0),
            src: Rm::Reg(s)
        }),
        Just(Inst::SseScalar {
            op: SseOp::Add,
            prec: FpPrec::Double,
            dst: Xmm(0),
            src: XmmRm::Reg(Xmm(0))
        }),
        (any_dst(),).prop_map(|(d,)| Inst::CvtF2Si {
            prec: FpPrec::Double,
            iw: Width::W64,
            dst: d,
            src: XmmRm::Reg(Xmm(0))
        }),
    ]
}

/// How a segment of generated instructions is wrapped in control flow.
#[derive(Debug, Clone)]
pub enum Shape {
    /// Straight-line.
    Straight,
    /// `cmp r9, imm; jcc over` — the segment runs conditionally.
    Guarded(Cond, i32),
    /// A counted loop over the segment (r10 is the dedicated counter).
    Loop(u8),
}

/// Any [`Shape`], biased toward straight-line code.
pub fn any_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        3 => Just(Shape::Straight),
        1 => (any_cond(), -2i32..3).prop_map(|(cc, k)| Shape::Guarded(cc, k)),
        1 => (1u8..4).prop_map(Shape::Loop),
    ]
}

fn emit_segment(a: &mut Asm, ops: &[Inst], shape: &Shape) {
    match shape {
        Shape::Straight => {
            for i in ops {
                a.push(*i);
            }
        }
        Shape::Guarded(cc, k) => {
            let skip = a.label();
            a.push(Inst::AluRmI {
                op: AluOp::Cmp,
                w: Width::W64,
                dst: Rm::Reg(Gpr::R9),
                imm: *k,
            });
            a.jcc(*cc, skip);
            for i in ops {
                a.push(*i);
            }
            a.bind(skip);
        }
        Shape::Loop(n) => {
            let top = a.label();
            a.push(Inst::MovRmI {
                w: Width::W64,
                dst: Rm::Reg(Gpr::R10),
                imm: i32::from(*n),
            });
            a.bind(top);
            for i in ops {
                a.push(*i);
            }
            a.push(Inst::AluRmI {
                op: AluOp::Sub,
                w: Width::W64,
                dst: Rm::Reg(Gpr::R10),
                imm: 1,
            });
            a.jcc(Cond::Ne, top);
        }
    }
}

fn emit_prologue(a: &mut Asm) {
    // Deterministic register init (every generated op may read any reg).
    for (i, r) in REGS.iter().enumerate() {
        a.push(Inst::MovRmI {
            w: Width::W64,
            dst: Rm::Reg(*r),
            imm: (i as i32 + 1) * 17,
        });
    }
    // Initialise XMM0 too, so FP ops never read a parameter register the
    // harness does not pass.
    a.push(Inst::CvtSi2F {
        prec: FpPrec::Double,
        iw: Width::W64,
        dst: Xmm(0),
        src: Rm::Reg(Gpr::Rsi),
    });
}

/// Builds a one-function binary (`fuzz`) from a straight-line body.
pub fn build_binary(body: &[Inst]) -> Binary {
    build_cfg_binary(std::slice::from_ref(&(body.to_vec(), Shape::Straight)))
}

/// Builds a one-function binary (`fuzz`) from shaped segments.
pub fn build_cfg_binary(segments: &[(Vec<Inst>, Shape)]) -> Binary {
    let mut bin = BinaryBuilder::new();
    let mut a = Asm::new();
    emit_prologue(&mut a);
    for (ops, shape) in segments {
        emit_segment(&mut a, ops, shape);
    }
    a.push(Inst::Ret);
    let addr = bin.next_function_addr();
    bin.add_function("fuzz", a.finish(addr).unwrap());
    bin.finish()
}

// ---- executors -----------------------------------------------------------

fn init_region<M: FnMut(u64, u64)>(mut write: M) {
    for i in 0..REGION_SLOTS as u64 {
        write(REGION + 8 * i, i.wrapping_mul(0x0101_0101) + 3);
    }
}

/// Executes the original bytes on the x86 interpreter.
///
/// # Errors
///
/// Returns the interpreter fault as a string.
pub fn run_x86(bin: &Binary) -> Result<(u64, Vec<u64>), String> {
    let mut machine = X86Machine::new(bin);
    init_region(|a, v| machine.mem.write_u64(a, v));
    let r = machine
        .run("fuzz", &[REGION, 5], &[])
        .map_err(|e| format!("x86-interp: {e}"))?;
    let finals = (0..REGION_SLOTS as u64)
        .map(|i| machine.mem.read_u64(REGION + 8 * i))
        .collect();
    Ok((r.ret, finals))
}

/// Executes a lifted or optimized LIR module on the LIR interpreter.
///
/// # Errors
///
/// Returns the interpreter fault as a string.
pub fn run_lir(m: &Module) -> Result<(u64, Vec<u64>), String> {
    let id = m
        .func_by_name("fuzz")
        .ok_or_else(|| "no fuzz in module".to_string())?;
    let mut machine = Machine::new(m);
    init_region(|a, v| machine.mem.write_u64(a, v));
    let r = machine
        .run(id, &[Val::B64(REGION), Val::B64(5)])
        .map_err(|e| format!("lir-interp: {e:?}"))?;
    let finals = (0..REGION_SLOTS as u64)
        .map(|i| machine.mem.read_u64(REGION + 8 * i))
        .collect();
    Ok((r.ret.map(Val::bits).unwrap_or(0), finals))
}

/// Executes a lowered Arm module on the simulated Arm core.
///
/// # Errors
///
/// Returns the machine fault as a string.
pub fn run_arm(arm: &AModule) -> Result<(u64, Vec<u64>), String> {
    let idx = arm
        .func_by_name("fuzz")
        .ok_or_else(|| "no fuzz in arm module".to_string())?;
    let mut machine = ArmMachine::new(arm);
    init_region(|a, v| machine.mem.write_u64(a, v));
    let r = machine
        .run(idx, &[REGION, 5], &[])
        .map_err(|e| format!("arm: {e:?}"))?;
    let finals = (0..REGION_SLOTS as u64)
        .map(|i| machine.mem.read_u64(REGION + 8 * i))
        .collect();
    Ok((r.ret, finals))
}

// ---- three-way agreement -------------------------------------------------

/// The translation matrix every function is swept across: all four §9.1
/// versions, cold and warm cache, one and four pipeline worker threads.
pub const MATRIX_JOBS: [usize; 2] = [1, 4];

/// Checks one binary across the full matrix using [`translate`] (serial,
/// uncached) — the form the property tests use.
///
/// # Errors
///
/// Returns a divergence (or executor fault) description.
pub fn check_threeway(bin: &Binary, label: &str) -> Result<u64, String> {
    check_threeway_inner(bin, label, None)
}

/// Checks one binary across the full matrix with a cache directory, so
/// each version runs cold (first encounter of the content hash) and warm.
///
/// # Errors
///
/// Returns a divergence (or executor fault) description.
pub fn check_threeway_cached(bin: &Binary, label: &str, cache: &Path) -> Result<u64, String> {
    check_threeway_inner(bin, label, Some(cache))
}

fn check_threeway_inner(bin: &Binary, label: &str, cache: Option<&Path>) -> Result<u64, String> {
    // Leg 1: the original bytes.
    let reference = run_x86(bin)?;
    let mut executions = 1u64;
    // Leg 2: the lifted (unoptimized) LIR.
    let lifted = lasagne_lifter::lift_binary(bin).map_err(|e| format!("lift: {e}"))?;
    let lir_lifted = run_lir(&lifted)?;
    executions += 1;
    if lir_lifted != reference {
        return Err(divergence(label, "Lifted-LIR", &reference, &lir_lifted));
    }
    // Leg 3: every translated configuration.
    for v in Version::ALL {
        match cache {
            None => {
                let t = translate(bin, v).map_err(|e| format!("{}: {e}", v.name()))?;
                executions += check_translation(&t, v, label, &reference)?;
            }
            Some(root) => {
                for jobs in MATRIX_JOBS {
                    // A per-(version, jobs) cache directory makes the first
                    // run genuinely cold for this content hash and the
                    // second genuinely warm.
                    let dir = root.join(format!("{}-j{jobs}", v.name()));
                    for phase in ["cold", "warm"] {
                        let (t, _report) = Pipeline::new(v)
                            .with_jobs(jobs)
                            .with_cache(&dir)
                            .run(bin)
                            .map_err(|e| format!("{} {phase} j{jobs}: {e}", v.name()))?;
                        let cfg = format!("{} {phase} j{jobs}", v.name());
                        executions += check_translation(&t, v, &cfg, &reference)
                            .map_err(|e| format!("{label}: {e}"))?;
                    }
                }
            }
        }
    }
    Ok(executions)
}

fn check_translation(
    t: &crate::Translation,
    v: Version,
    cfg: &str,
    reference: &(u64, Vec<u64>),
) -> Result<u64, String> {
    let lir_result = run_lir(&t.module)?;
    if &lir_result != reference {
        return Err(divergence(
            cfg,
            &format!("{}-LIR", v.name()),
            reference,
            &lir_result,
        ));
    }
    let arm_result = run_arm(&t.arm)?;
    if &arm_result != reference {
        return Err(divergence(
            cfg,
            &format!("{}-Arm", v.name()),
            reference,
            &arm_result,
        ));
    }
    Ok(2)
}

fn divergence(label: &str, leg: &str, want: &(u64, Vec<u64>), got: &(u64, Vec<u64>)) -> String {
    format!(
        "{label}: {leg} diverges from x86-interp: ret {:#x} vs {:#x}, mem {:x?} vs {:x?}",
        got.0, want.0, got.1, want.1
    )
}

// ---- Phoenix sweep -------------------------------------------------------

/// FNV-1a over 8-byte words of the given address ranges.
fn digest_words(read: &mut dyn FnMut(u64) -> u64, ranges: &[(u64, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(start, end) in ranges {
        let mut a = start;
        while a < end {
            h = (h ^ read(a)).wrapping_mul(0x0100_0000_01b3);
            a += 8;
        }
    }
    h
}

/// Result of sweeping one Phoenix benchmark.
#[derive(Debug, Clone)]
pub struct PhoenixOutcome {
    /// Benchmark abbreviation (Table 1).
    pub abbrev: &'static str,
    /// Functions in the binary (all executed transitively from `main`).
    pub functions: usize,
    /// Executions performed.
    pub executions: u64,
}

/// Runs one Phoenix benchmark through all three oracles and the full
/// translation matrix, comparing the return value (against each executor
/// *and* the Rust-reference checksum) and a digest of final memory (the
/// workload region plus the allocated heap — identical bump allocators
/// make heap addresses comparable across executors).
///
/// # Errors
///
/// Returns a divergence (or executor fault) description.
pub fn check_phoenix(b: &Benchmark, cache: &Path) -> Result<PhoenixOutcome, String> {
    let label = b.abbrev;
    let ranges_of = |heap_hi: u64| -> Vec<(u64, u64)> {
        let mut r: Vec<(u64, u64)> = b
            .workload
            .mem_init
            .iter()
            .map(|(a, bytes)| (*a, a + ((bytes.len() as u64 + 7) & !7)))
            .collect();
        r.push((HEAP_BASE, heap_hi));
        r
    };

    // Leg 1: the original bytes.
    let mut x86 = X86Machine::new(&b.binary);
    for (addr, bytes) in &b.workload.mem_init {
        x86.mem.write(*addr, bytes);
    }
    let r = x86
        .run("main", &b.workload.args, &[])
        .map_err(|e| format!("{label}: x86-interp: {e}"))?;
    if r.ret != b.workload.expected_ret {
        return Err(format!(
            "{label}: x86-interp ret {:#x} != reference checksum {:#x}",
            r.ret, b.workload.expected_ret
        ));
    }
    // The byte-level leg defines the heap high-water mark; all executors
    // share the allocation sequence, so the digest range is common.
    let ranges = ranges_of((x86.heap_next() + 7) & !7);
    let x86_digest = digest_words(&mut |a| x86.mem.read_u64(a), &ranges);
    let mut executions = 1u64;

    // Leg 2: lifted LIR.
    let lifted = lasagne_lifter::lift_binary(&b.binary).map_err(|e| format!("{label}: {e}"))?;
    let (lir_ret, lir_digest) = run_phoenix_lir(&lifted, b, &ranges)?;
    executions += 1;
    if lir_ret != r.ret || lir_digest != x86_digest {
        return Err(format!(
            "{label}: Lifted-LIR diverges: ret {lir_ret:#x}/{:#x} digest {lir_digest:#x}/{x86_digest:#x}",
            r.ret
        ));
    }

    // Leg 3: the full translation matrix.
    for v in Version::ALL {
        for jobs in MATRIX_JOBS {
            let dir = cache.join(format!("{label}-{}-j{jobs}", v.name()));
            for phase in ["cold", "warm"] {
                let (t, _report) = Pipeline::new(v)
                    .with_jobs(jobs)
                    .with_cache(&dir)
                    .run(&b.binary)
                    .map_err(|e| format!("{label} {} {phase} j{jobs}: {e}", v.name()))?;
                let (oret, odigest) = run_phoenix_lir(&t.module, b, &ranges)?;
                if oret != r.ret || odigest != x86_digest {
                    return Err(format!(
                        "{label} {} {phase} j{jobs}: optimized LIR diverges: \
                         ret {oret:#x}/{:#x} digest {odigest:#x}/{x86_digest:#x}",
                        v.name(),
                        r.ret
                    ));
                }
                let (aret, adigest) = run_phoenix_arm(&t.arm, b, &ranges)?;
                if aret != r.ret || adigest != x86_digest {
                    return Err(format!(
                        "{label} {} {phase} j{jobs}: Arm diverges: \
                         ret {aret:#x}/{:#x} digest {adigest:#x}/{x86_digest:#x}",
                        v.name(),
                        r.ret
                    ));
                }
                executions += 2;
            }
        }
    }
    Ok(PhoenixOutcome {
        abbrev: b.abbrev,
        functions: b.binary.functions.len(),
        executions,
    })
}

fn run_phoenix_lir(m: &Module, b: &Benchmark, ranges: &[(u64, u64)]) -> Result<(u64, u64), String> {
    let id = m
        .func_by_name("main")
        .ok_or_else(|| format!("{}: no main in module", b.abbrev))?;
    let mut machine = Machine::new(m);
    for (addr, bytes) in &b.workload.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let args: Vec<Val> = b.workload.args.iter().map(|a| Val::B64(*a)).collect();
    let r = machine
        .run(id, &args)
        .map_err(|e| format!("{}: lir-interp: {e:?}", b.abbrev))?;
    let digest = digest_words(&mut |a| machine.mem.read_u64(a), ranges);
    Ok((r.ret.map(Val::bits).unwrap_or(0), digest))
}

fn run_phoenix_arm(
    arm: &AModule,
    b: &Benchmark,
    ranges: &[(u64, u64)],
) -> Result<(u64, u64), String> {
    let idx = arm
        .func_by_name("main")
        .ok_or_else(|| format!("{}: no main in arm module", b.abbrev))?;
    let mut machine = ArmMachine::new(arm);
    for (addr, bytes) in &b.workload.mem_init {
        machine.mem.write(*addr, bytes);
    }
    let r = machine
        .run(idx, &b.workload.args, &[])
        .map_err(|e| format!("{}: arm: {e:?}", b.abbrev))?;
    let digest = digest_words(&mut |a| machine.mem.read_u64(a), ranges);
    Ok((r.ret, digest))
}

// ---- the sweep -----------------------------------------------------------

/// The deterministic default base seed (re-exported for the CLI, which
/// does not depend on the qc crate directly).
pub fn default_seed() -> u64 {
    lasagne_qc::DEFAULT_SEED
}

/// Options for [`run_difftest`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// qc cases per generator family (straight-line and control-flow).
    pub cases: u32,
    /// Base seed for the qc stream.
    pub seed: u64,
    /// Phoenix workload scale.
    pub scale: usize,
    /// Cache root for the cold/warm legs (wiped per run by the CLI).
    pub cache_dir: PathBuf,
    /// Skip the Phoenix sweep (generator-only run).
    pub skip_phoenix: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            cases: 32,
            seed: lasagne_qc::DEFAULT_SEED,
            scale: 64,
            cache_dir: std::env::temp_dir()
                .join(format!("lasagne-difftest-{}", std::process::id())),
            skip_phoenix: false,
        }
    }
}

/// Summary of one differential sweep (the payload of `BENCH_diff.json`).
#[derive(Debug, Clone)]
pub struct DiffSummary {
    /// qc-generated functions swept (straight-line + control-flow).
    pub qc_functions: u64,
    /// Phoenix benchmarks swept.
    pub phoenix_benchmarks: usize,
    /// Phoenix functions swept (all executed transitively from `main`).
    pub phoenix_functions: usize,
    /// Total executions across all three oracles and the matrix.
    pub executions: u64,
    /// Divergences found (the sweep stops at the first).
    pub divergences: u64,
    /// Shrunk counterexample of the first divergence, if any.
    pub counterexample: Option<String>,
    /// Wall-clock milliseconds for the whole sweep.
    pub wall_ms: u128,
}

impl DiffSummary {
    /// True when every execution agreed.
    pub fn clean(&self) -> bool {
        self.divergences == 0
    }
}

/// Runs the full differential sweep: qc-generated straight-line bodies,
/// qc-generated control-flow bodies, then the Phoenix suite — each function
/// across x86-interp / LIR-interp / ArmMachine × 4 Versions × cold/warm ×
/// jobs 1/4. Persisted regression seeds (`tests/difftest.qc-regressions`
/// in this crate) replay before any novel generation, and new failures are
/// persisted there.
pub fn run_difftest(opts: &DiffOptions) -> DiffSummary {
    let t0 = Instant::now();
    let mut summary = DiffSummary {
        qc_functions: 0,
        phoenix_benchmarks: 0,
        phoenix_functions: 0,
        executions: 0,
        divergences: 0,
        counterexample: None,
        wall_ms: 0,
    };
    let cfg = Config {
        cases: opts.cases,
        seed: opts.seed,
        ..Config::default()
    };
    let info = TestInfo {
        name: "lasagne::difftest::threeway",
        manifest_dir: env!("CARGO_MANIFEST_DIR"),
        source_file: file!(),
    };

    // Family 1: straight-line bodies.
    let execs = Cell::new(0u64);
    let funcs = Cell::new(0u64);
    let straight = collection::vec(any_op(), 1..24);
    let outcome = runner::check(info, &cfg, &straight, |body| {
        let bin = build_binary(&body);
        match check_threeway_cached(&bin, "qc-straight", &opts.cache_dir) {
            Ok(n) => {
                execs.set(execs.get() + n);
                funcs.set(funcs.get() + 1);
                Ok(())
            }
            Err(e) => Err(TestCaseError::Fail(e)),
        }
    });
    summary.qc_functions += funcs.get();
    summary.executions += execs.get();
    if let Err(f) = outcome {
        summary.divergences += 1;
        summary.counterexample = Some(record_failure(&info, &f));
        summary.wall_ms = t0.elapsed().as_millis();
        return summary;
    }

    // Family 2: control-flow bodies.
    let info_cfg = TestInfo {
        name: "lasagne::difftest::threeway_cfg",
        manifest_dir: env!("CARGO_MANIFEST_DIR"),
        source_file: file!(),
    };
    let execs = Cell::new(0u64);
    let funcs = Cell::new(0u64);
    let shaped = collection::vec((collection::vec(any_op(), 1..8), any_shape()), 1..5);
    let outcome = runner::check(info_cfg, &cfg, &shaped, |segments| {
        let bin = build_cfg_binary(&segments);
        match check_threeway_cached(&bin, "qc-cfg", &opts.cache_dir) {
            Ok(n) => {
                execs.set(execs.get() + n);
                funcs.set(funcs.get() + 1);
                Ok(())
            }
            Err(e) => Err(TestCaseError::Fail(e)),
        }
    });
    summary.qc_functions += funcs.get();
    summary.executions += execs.get();
    if let Err(f) = outcome {
        summary.divergences += 1;
        summary.counterexample = Some(record_failure(&info_cfg, &f));
        summary.wall_ms = t0.elapsed().as_millis();
        return summary;
    }

    // Family 3: the Phoenix suite.
    if !opts.skip_phoenix {
        for b in all_benchmarks(opts.scale) {
            match check_phoenix(&b, &opts.cache_dir) {
                Ok(o) => {
                    summary.phoenix_benchmarks += 1;
                    summary.phoenix_functions += o.functions;
                    summary.executions += o.executions;
                }
                Err(e) => {
                    summary.divergences += 1;
                    summary.counterexample = Some(e);
                    break;
                }
            }
        }
    }
    summary.wall_ms = t0.elapsed().as_millis();
    summary
}

/// Persists a fresh failing seed to this crate's qc regression file
/// (`tests/difftest.qc-regressions`) and renders the shrunk
/// counterexample. Seeds already in the file are replayed by
/// [`runner::check`] before any novel generation, so a once-found
/// divergence stays in the corpus forever.
fn record_failure<T: std::fmt::Debug>(info: &TestInfo, f: &Failure<T>) -> String {
    let line = format!("{:?}", f.minimal);
    if !f.from_regression && std::env::var_os("LASAGNE_QC_NO_PERSIST").is_none() {
        let path = regress::load(info.manifest_dir, info.source_file).persist_path;
        let _ = regress::append(&path, f.seed, &line);
    }
    format!("seed {:016x}: {line} — {}", f.seed, f.message)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The byte-level leg agrees with lift+LIR on a fixed body covering
    /// flags, memory, atomics, and scalar FP.
    #[test]
    fn threeway_on_fixed_body() {
        let body = [
            Inst::AluRRm {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rcx),
            },
            Inst::MovRmR {
                w: Width::W64,
                dst: Rm::Mem(MemRef::base_disp(Gpr::Rdi, 16)),
                src: Gpr::Rax,
            },
            Inst::LockXadd {
                w: Width::W64,
                mem: MemRef::base_disp(Gpr::Rdi, 0),
                src: Gpr::Rdx,
            },
            Inst::Mfence,
            Inst::Setcc {
                cc: Cond::P,
                dst: Rm::Reg(Gpr::R8),
            },
            Inst::SseScalar {
                op: SseOp::Add,
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(0)),
            },
            Inst::CvtF2Si {
                prec: FpPrec::Double,
                iw: Width::W64,
                dst: Gpr::R9,
                src: XmmRm::Reg(Xmm(0)),
            },
            Inst::AluRRm {
                op: AluOp::Add,
                w: Width::W64,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::R9),
            },
        ];
        let bin = build_binary(&body);
        check_threeway(&bin, "fixed").unwrap();
    }

    /// The historical persisted counterexample, checked against all three
    /// oracles (the original harness only had two).
    #[test]
    fn threeway_on_persisted_regression() {
        let body = [
            Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rdi),
            },
            Inst::SseScalar {
                op: SseOp::Add,
                prec: FpPrec::Double,
                dst: Xmm(0),
                src: XmmRm::Reg(Xmm(0)),
            },
            Inst::MovRRm {
                w: Width::W32,
                dst: Gpr::Rax,
                src: Rm::Reg(Gpr::Rsi),
            },
        ];
        let bin = build_binary(&body);
        check_threeway(&bin, "persisted regression").unwrap();
    }

    /// Phoenix histogram sweeps clean through the whole matrix at a small
    /// scale (the full-suite sweep is the CLI's job; this pins the
    /// mechanism in tier-1 tests).
    #[test]
    fn phoenix_histogram_threeway() {
        let b = &all_benchmarks(24)[0];
        let dir = std::env::temp_dir().join(format!("lasagne-difftest-ut-{}", std::process::id()));
        let out = check_phoenix(b, &dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(out.abbrev, "HT");
        assert!(out.executions >= 34);
    }
}
