#!/bin/sh
# Offline CI for the whole workspace. The zero-external-dependency policy
# (see DESIGN.md) means every step must pass with an empty cargo registry.
set -eux

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Warm-cache equivalence, end to end through the CLI: translating the
# whole demo suite twice against one cache directory must hit 100% the
# second time and produce byte-identical assembly.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
for demo in HT KM LR MM PCA SM WC; do
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.cold.json" >"$CACHE_DIR/$demo.cold.s"
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.warm.json" >"$CACHE_DIR/$demo.warm.s"
    cmp "$CACHE_DIR/$demo.cold.s" "$CACHE_DIR/$demo.warm.s"
    grep -q '"warm":true' "$CACHE_DIR/$demo.warm.json"
    grep -q '"misses":0' "$CACHE_DIR/$demo.warm.json"
done

# Parallel-schedule equivalence, end to end through the CLI: the fused
# per-function opt schedule at --jobs 4 must emit assembly byte-identical
# to --jobs 1, and its --timings must show the opt stage actually fanning
# out (zero opt parallel sections at jobs=4 means the fusion regressed to
# a serial schedule).
for demo in HT KM LR MM PCA SM WC; do
    ./target/release/lasagne translate "$demo" --jobs 1 --no-cache \
        >"$CACHE_DIR/$demo.j1.s"
    ./target/release/lasagne translate "$demo" --jobs 4 --no-cache \
        --timings "$CACHE_DIR/$demo.j4.json" >"$CACHE_DIR/$demo.j4.s"
    cmp "$CACHE_DIR/$demo.j1.s" "$CACHE_DIR/$demo.j4.s"
    if grep -q '{"stage":"opt","parallel_sections":0' "$CACHE_DIR/$demo.j4.json"; then
        echo "$demo: opt stage ran zero parallel sections at --jobs 4" >&2
        exit 1
    fi
done

# Tracing: a traced translation must emit a valid Chrome trace file with
# one named track per worker thread, and it must not change the output.
# Pinned at jobs=4 so the trace tracks cover the fused opt schedule's
# per-function spans and the ipsccp superstep spans.
./target/release/lasagne translate HT --jobs 4 --no-cache \
    --trace-out "$CACHE_DIR/HT.trace.json" >"$CACHE_DIR/HT.traced.s"
cmp "$CACHE_DIR/HT.cold.s" "$CACHE_DIR/HT.traced.s"
test -s "$CACHE_DIR/HT.trace.json"
./target/release/lasagne trace-check "$CACHE_DIR/HT.trace.json" --jobs 4

# Fence-provenance explain output must be schedule-invariant: the same
# decisions whether the opt stage runs serially or fused at jobs=4.
./target/release/lasagne explain-fences HT --jobs 1 >"$CACHE_DIR/HT.exp1.txt"
./target/release/lasagne explain-fences HT --jobs 4 >"$CACHE_DIR/HT.exp4.txt"
cmp "$CACHE_DIR/HT.exp1.txt" "$CACHE_DIR/HT.exp4.txt"

# Capped three-way differential sweep (see ARCHITECTURE.md "Differential
# testing"): qc-generated functions + every Phoenix function on the
# byte-level x86 interpreter vs the lifted LIR vs the simulated Arm core.
# Fixed seed and bounded cases keep it deterministic and fast; the
# persisted seeds in crates/lasagne/tests/difftest.qc-regressions replay
# before any novel generation, so known-fixed lifter bugs stay pinned. A
# nonzero exit means a divergence (the shrunk counterexample is printed).
./target/release/lasagne difftest --cases 8 --scale 48 \
    --cache-dir "$CACHE_DIR/difftest-cache"

# Parallel-schedule regression gate: re-run the bench sweep at scale 192
# (the scale the committed BENCH_pipeline.json trajectory is pinned at)
# and require jobs=4 not to lose to jobs=1 end-to-end. On a multi-core
# host the persistent pool must at least break even (the >= 2x target is
# recorded in the artifact); a single-core host cannot improve wall clock
# at any jobs value, so the gate there is parity within 20% scheduling
# noise (observed run-to-run spread on a loaded 1-cpu container is
# ~0.82-0.99x) — still above the 0.71x scoped-thread pathology this
# guards against. The artifact is written into the scratch dir so CI
# never clobbers the committed trajectory.
(cd "$CACHE_DIR" && LASAGNE_BENCH_SCALE=192 \
    "$OLDPWD"/target/release/report bench)
# (tail -1: the first match is the historical prepool entry's recorded
# ratio; the last is the top-level ratio for this run.)
SPEEDUP=$(sed -n 's/.*"speedup_jobs4_vs_jobs1":\([0-9.]*\).*/\1/p' \
    "$CACHE_DIR/BENCH_pipeline.json" | tail -1)
HOST_CPUS=$(sed -n 's/.*"host_cpus":\([0-9]*\).*/\1/p' \
    "$CACHE_DIR/BENCH_pipeline.json")
if [ "$HOST_CPUS" -gt 1 ]; then FLOOR=1.0; else FLOOR=0.8; fi
if ! awk -v s="$SPEEDUP" -v f="$FLOOR" 'BEGIN { exit !(s >= f) }'; then
    echo "bench gate: jobs=4 vs jobs=1 speedup $SPEEDUP is below $FLOOR" >&2
    exit 1
fi

# Change-driven opt-scheduling gate: the jobs=1 opt stage wall must beat
# the recorded pre-scheduler baseline (15.58 ms blind fixpoint, measured
# on this container class — see "presched" in BENCH_pipeline.json; the
# current measurement is ~1.9x). On the single-core container class the
# baseline was recorded on, the floor is 1.4x (the 1.5x target minus
# run-to-run scheduling noise); on other hardware the baseline's absolute
# nanoseconds are not comparable, so the gate only requires parity with
# the blind driver (ratio >= 1.0) there, mirroring the bench gate's
# hardware-aware pattern above. The scheduler must also have skipped a
# nonzero number of provably-clean pass slots across the suite — a
# zero-skip run means change tracking regressed to the blind schedule.
OPT_SPEEDUP=$(sed -n 's/.*"opt_speedup_jobs1_vs_presched":\([0-9.]*\).*/\1/p' \
    "$CACHE_DIR/BENCH_pipeline.json")
if [ "$HOST_CPUS" -gt 1 ]; then OPT_FLOOR=1.0; else OPT_FLOOR=1.4; fi
if ! awk -v s="$OPT_SPEEDUP" -v f="$OPT_FLOOR" 'BEGIN { exit !(s >= f) }'; then
    echo "opt sched gate: jobs=1 opt wall speedup $OPT_SPEEDUP vs the" \
        "pre-scheduler baseline is below $OPT_FLOOR" >&2
    exit 1
fi
if grep -q '"opt_sched":{"ran":[0-9]*,"skipped":0,' \
    "$CACHE_DIR/BENCH_pipeline.json"; then
    echo "opt sched gate: scheduler skipped zero pass slots at scale 192" >&2
    exit 1
fi
# Skip-ratio sanity on the demo suite, end to end through the CLI: every
# cold --timings document from the warm-cache loop above is schema 6 and
# shows the scheduler skipping work on that binary too.
for demo in HT KM LR MM PCA SM WC; do
    grep -q '^{"schema":6,' "$CACHE_DIR/$demo.cold.json"
    grep -q '"opt_sched":{"ran":[1-9]' "$CACHE_DIR/$demo.cold.json"
    if grep -q '"opt_sched":{"ran":[0-9]*,"skipped":0,' \
        "$CACHE_DIR/$demo.cold.json"; then
        echo "$demo: change-driven scheduler skipped nothing" >&2
        exit 1
    fi
done

# Translation-as-a-service smoke: a daemon on a Unix socket must serve
# assembly byte-identical to the CLI's translate output, answer a repeat
# replay of the suite entirely from the hot tier with identical response
# bytes, drain cleanly on serve-stop (no stray process, socket removed),
# and shed nothing when unloaded. The daemon runs fully observed
# (--trace-out + a sample-everything request log) to pin that the
# observability layer is output-neutral: the byte-identity and checksum
# gates below run against a traced daemon.
SOCK="$CACHE_DIR/serve.sock"
./target/release/lasagne serve --socket "$SOCK" --jobs 2 \
    --cache-dir "$CACHE_DIR/serve-cache" \
    --trace-out "$CACHE_DIR/serve.trace.json" \
    --log "$CACHE_DIR/serve.log" --log-sample 1 &
SERVE_PID=$!
./target/release/lasagne serve-client HT --socket "$SOCK" \
    >"$CACHE_DIR/HT.serve.s"
cmp "$CACHE_DIR/HT.cold.s" "$CACHE_DIR/HT.serve.s"
R1=$(./target/release/lasagne serve-bench --socket "$SOCK" --concurrency 4)
R2=$(./target/release/lasagne serve-bench --socket "$SOCK" --concurrency 4)
echo "$R1" | grep -q '"shed":0'
echo "$R2" | grep -q '"hot":7'
echo "$R2" | grep -q '"shed":0'
C1=$(echo "$R1" | sed -n 's/.*"checksum":"\([0-9a-f]*\)".*/\1/p')
C2=$(echo "$R2" | sed -n 's/.*"checksum":"\([0-9a-f]*\)".*/\1/p')
test -n "$C1" && test "$C1" = "$C2"
# The Metrics frame must parse, reconcile exactly against the Stats frame
# (per-rung histogram totals vs counters, payload histograms vs requests,
# evictions), and expose a scrapeable Prometheus body whose request total
# matches the stats counter.
./target/release/lasagne serve-metrics --socket "$SOCK" --check
METRICS=$(./target/release/lasagne serve-metrics --socket "$SOCK")
echo "$METRICS" | grep -q '^{"schema":2,'
REQS=$(echo "$METRICS" | sed -n 's/.*"stats":{"schema":2,"requests":\([0-9]*\).*/\1/p')
test -n "$REQS"
./target/release/lasagne serve-metrics --socket "$SOCK" --prom \
    >"$CACHE_DIR/serve.prom"
grep -q '^# TYPE lasagne_serve_requests counter$' "$CACHE_DIR/serve.prom"
grep -q "^lasagne_serve_requests $REQS\$" "$CACHE_DIR/serve.prom"
grep -q '^lasagne_serve_latency_hot_bucket{le="+Inf"}' "$CACHE_DIR/serve.prom"
./target/release/lasagne serve-stop --socket "$SOCK"
wait "$SERVE_PID"
test ! -e "$SOCK"
# The drained daemon flushed a valid per-request trace (named conn tracks
# pass the same validator as pipeline traces) and a request log whose
# every line is schema-1 JSON covering exactly the requests served.
./target/release/lasagne trace-check "$CACHE_DIR/serve.trace.json"
test -s "$CACHE_DIR/serve.log"
if grep -v '^{"schema":1,"id":' "$CACHE_DIR/serve.log"; then
    echo "serve request log contains a malformed line" >&2
    exit 1
fi

# Forced overload: a queue of one with both cache tiers disabled under an
# over-wide client must degrade into explicit Shed responses — nonzero
# sheds, zero hard errors. This is the only serve configuration allowed
# to shed at all.
./target/release/lasagne serve --socket "$SOCK" --jobs 2 \
    --queue 1 --hot-bytes 0 &
SERVE_PID=$!
OVERLOAD=$(./target/release/lasagne serve-bench --socket "$SOCK" \
    --concurrency 8 --reps 3)
echo "$OVERLOAD" | grep -q '"errors":0'
if echo "$OVERLOAD" | grep -q '"shed":0,'; then
    echo "serve overload gate: queue=1 at concurrency 8 never shed" >&2
    exit 1
fi
./target/release/lasagne serve-stop --socket "$SOCK"
wait "$SERVE_PID"
test ! -e "$SOCK"

# Neither the trace collector, the pipeline, the serve daemon, nor the
# bench harness may unwrap a possibly-poisoned lock (a panicking worker
# would then take the whole trace — or the shared work-stealing pool, or
# the hot tier — down with it); all acquisitions go through the trace
# crate's poison-recovering helper.
if grep -rn 'lock()\.unwrap()' crates/trace/src/ crates/lasagne/src/ \
    crates/bench/src/ src/ | grep -v '//'; then
    echo 'trace, lasagne, bench, and the CLI must use lock_clean(), not lock().unwrap()' >&2
    exit 1
fi
