#!/bin/sh
# Offline CI for the whole workspace. The zero-external-dependency policy
# (see DESIGN.md) means every step must pass with an empty cargo registry.
set -eux

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Warm-cache equivalence, end to end through the CLI: translating the
# whole demo suite twice against one cache directory must hit 100% the
# second time and produce byte-identical assembly.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
for demo in HT KM LR MM SM; do
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.cold.json" >"$CACHE_DIR/$demo.cold.s"
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.warm.json" >"$CACHE_DIR/$demo.warm.s"
    cmp "$CACHE_DIR/$demo.cold.s" "$CACHE_DIR/$demo.warm.s"
    grep -q '"warm":true' "$CACHE_DIR/$demo.warm.json"
    grep -q '"misses":0' "$CACHE_DIR/$demo.warm.json"
done

# Tracing: a traced translation must emit a valid Chrome trace file with
# one named track per worker thread, and it must not change the output.
./target/release/lasagne translate HT --jobs 4 --no-cache \
    --trace-out "$CACHE_DIR/HT.trace.json" >"$CACHE_DIR/HT.traced.s"
cmp "$CACHE_DIR/HT.cold.s" "$CACHE_DIR/HT.traced.s"
test -s "$CACHE_DIR/HT.trace.json"
./target/release/lasagne trace-check "$CACHE_DIR/HT.trace.json" --jobs 4

# The trace collector must never unwrap a possibly-poisoned lock (a
# panicking worker would then take the whole trace down with it); all
# acquisitions go through the crate's poison-recovering helper.
if grep -rn 'lock()\.unwrap()' crates/trace/src/ | grep -v '//'; then
    echo 'crates/trace must use lock_clean(), not lock().unwrap()' >&2
    exit 1
fi
