#!/bin/sh
# Offline CI for the whole workspace. The zero-external-dependency policy
# (see DESIGN.md) means every step must pass with an empty cargo registry.
set -eux

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Warm-cache equivalence, end to end through the CLI: translating the
# whole demo suite twice against one cache directory must hit 100% the
# second time and produce byte-identical assembly.
CACHE_DIR=$(mktemp -d)
trap 'rm -rf "$CACHE_DIR"' EXIT
for demo in HT KM LR MM SM; do
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.cold.json" >"$CACHE_DIR/$demo.cold.s"
    ./target/release/lasagne translate "$demo" --cache-dir "$CACHE_DIR" \
        --timings "$CACHE_DIR/$demo.warm.json" >"$CACHE_DIR/$demo.warm.s"
    cmp "$CACHE_DIR/$demo.cold.s" "$CACHE_DIR/$demo.warm.s"
    grep -q '"warm":true' "$CACHE_DIR/$demo.warm.json"
    grep -q '"misses":0' "$CACHE_DIR/$demo.warm.json"
done
