#!/bin/sh
# Offline CI for the whole workspace. The zero-external-dependency policy
# (see DESIGN.md) means every step must pass with an empty cargo registry.
set -eux

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
